"""Engine-level shedding: honest partials, identity, and composition.

Three invariants from ``docs/overload.md``:

* **Honesty** — a shed branch degrades the answer exactly like a lost
  branch: ``complete=False``, the abandoned windows in
  ``unresolved_ranges``, matches a subset of the exact set, and
  ``stats.shed_branches`` reconciled by the trace.
* **Inertness** — an attached-but-idle guard plane changes nothing:
  match sets, stats, metrics snapshots, and the fault plane's RNG stream
  are byte-identical to an unguarded run.
* **Composition** — shedding stacks with the hop budget and priority
  classes without double counting or dishonest ``complete`` flags.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.core.engine import NaiveEngine, OptimizedEngine
from repro.core.plancache import PlanCache
from repro.core.system import SquidSystem
from repro.errors import GuardError
from repro.faults import FaultConfig, FaultPlane, RetryPolicy
from repro.guard import GuardConfig, GuardPlane
from repro.keywords.dimensions import NumericDimension, WordDimension
from repro.keywords.space import KeywordSpace
from repro.obs import collecting

ENGINES = {"optimized": OptimizedEngine, "naive": NaiveEngine}
WORDS = ["computer", "network", "database", "storage", "compute", "grid"]
SHED_QUERY = "(*, 256-1024)"

#: Aggressive guard: watermark trips at backlog 2, bucket never refills.
AGGRESSIVE = dict(queue_high=1, queue_low=0, bucket_capacity=1,
                  bucket_refill=0.0)


def _build_system(seed: int = 11, n_nodes: int = 24, n_docs: int = 150):
    space = KeywordSpace(
        [WordDimension("keyword"), NumericDimension("size", 1, 1024)], bits=8
    )
    system = SquidSystem.create(space, n_nodes=n_nodes, seed=seed)
    rng = random.Random(seed)
    keys = [
        (rng.choice(WORDS), float(rng.choice([128, 256, 300, 512, 1024])))
        for _ in range(n_docs)
    ]
    system.publish_many(keys, payloads=range(n_docs))
    return system


def _shed_result(system, engine_cls, *, priority="batch", trace=False,
                 **engine_kwargs):
    engine = engine_cls(
        guard=GuardPlane(GuardConfig(**AGGRESSIVE)), **engine_kwargs
    )
    system.plan_cache = PlanCache()
    if trace:
        system.attach_tracer()
    try:
        return engine.execute(
            system,
            SHED_QUERY,
            origin=system.overlay.node_ids()[0],
            rng=np.random.default_rng(3),
            priority=priority,
        )
    finally:
        if trace:
            system.detach_tracer()


@pytest.mark.parametrize("engine_cls", ENGINES.values(), ids=ENGINES)
class TestHonestShedding:
    def test_shed_run_reports_honest_partial(self, engine_cls):
        system = _build_system()
        result = _shed_result(system, engine_cls)
        assert result.stats.shed_branches > 0
        assert result.complete is False
        assert result.unresolved_ranges
        assert result.unresolved_span > 0

    def test_shed_matches_are_subset_of_exact(self, engine_cls):
        system = _build_system()
        exact = {e.payload for e in system.brute_force_matches(SHED_QUERY)}
        result = _shed_result(system, engine_cls)
        got = {e.payload for e in result.matches}
        assert got <= exact
        assert len(got) < len(exact)  # something really was shed

    def test_trace_reconciles_shed_branches(self, engine_cls):
        system = _build_system()
        result = _shed_result(system, engine_cls, trace=True)
        assert result.trace is not None
        totals = result.trace.totals()
        assert totals["shed_branches"] == result.stats.shed_branches > 0
        assert totals["messages"] == result.stats.messages
        # Shed spans are deliberate, not crashes or in-flight aborts.
        assert totals["lost_branches"] == 0
        assert totals["aborted_in_flight"] == result.stats.aborted_in_flight

    def test_shed_emits_metrics(self, engine_cls):
        system = _build_system()
        with collecting() as registry:
            result = _shed_result(system, engine_cls)
        counters = registry.snapshot()["counters"]
        assert counters["guard.sheds.total"] > 0
        assert (
            counters["query.shed_branches.total"] == result.stats.shed_branches
        )

    def test_interactive_priority_is_never_watermark_shed(self, engine_cls):
        """Rank 0 bypasses watermark and bucket: the answer stays exact."""
        system = _build_system()
        exact = {e.payload for e in system.brute_force_matches(SHED_QUERY)}
        result = _shed_result(system, engine_cls, priority="interactive")
        assert {e.payload for e in result.matches} == exact
        assert result.complete is True
        assert result.stats.shed_branches == 0


def _run_batch(system, engine, seed=5):
    """Cold-cache batch of queries; returns comparable payload tuples."""
    from repro.overlay.chord import RouteCache

    rng = np.random.default_rng(seed)
    ids = system.overlay.node_ids()
    out = []
    queries = ["(comp*, *)", "(*, 256-512)", "(network, *)", "(*, *)"]
    with collecting() as registry:
        for i, query in enumerate(queries):
            system.plan_cache = PlanCache()
            system.overlay.route_cache = RouteCache()
            res = engine.execute(
                system, query, origin=ids[i % len(ids)], rng=rng,
                priority="batch",
            )
            out.append(
                (
                    sorted(e.payload for e in res.matches),
                    res.stats.as_dict(),
                    res.complete,
                )
            )
    return out, json.dumps(registry.snapshot(), sort_keys=True, default=sorted)


@pytest.mark.parametrize("engine_cls", ENGINES.values(), ids=ENGINES)
class TestZeroOverloadIdentity:
    def test_idle_guard_is_bit_identical(self, engine_cls):
        """Huge thresholds never trip: everything matches unguarded runs."""
        system = _build_system()
        idle = GuardPlane(
            GuardConfig(queue_high=10**6, queue_limit=10**6,
                        bucket_capacity=10**6)
        )
        ref_out, ref_metrics = _run_batch(system, engine_cls())
        idle_out, idle_metrics = _run_batch(system, engine_cls(guard=idle))
        assert idle_out == ref_out
        assert idle_metrics == ref_metrics
        assert idle.stats.shed == 0
        assert idle.stats.admitted > 0  # the plane really was consulted

    def test_inactive_plane_is_detached(self, engine_cls):
        """A default-config plane is bypassed entirely (run.guard is None)."""
        system = _build_system()
        plane = GuardPlane()
        engine = engine_cls(guard=plane)
        engine.execute(
            system, "(comp*, *)", origin=system.overlay.node_ids()[0],
            rng=np.random.default_rng(1),
        )
        assert plane.stats.admitted == 0  # never consulted


class TestPriorityThreading:
    """The ``priority`` kwarg reaches the engine through every entry point."""

    def test_system_query_threads_priority_to_a_guarded_engine(self):
        system = _build_system()
        engine = OptimizedEngine(guard=GuardPlane(GuardConfig(**AGGRESSIVE)))
        shed = system.query(
            SHED_QUERY, engine=engine, origin=system.overlay.node_ids()[0],
            rng=0, priority="batch",
        )
        assert shed.stats.shed_branches > 0
        system.plan_cache = PlanCache()
        exact = system.query(
            SHED_QUERY, engine=engine, origin=system.overlay.node_ids()[0],
            rng=0, priority="interactive",
        )
        assert exact.complete is True

    def test_invalid_priority_raises(self):
        system = _build_system()
        with pytest.raises(GuardError):
            system.query(SHED_QUERY, rng=0, priority="urgent")

    def test_query_many_accepts_priority_and_stays_identical(self):
        """Unguarded batches are priority-inert: any class, same results."""
        system = _build_system()
        queries = [SHED_QUERY, "(comp*, *)"]
        ref = system.query_many(queries, workers=1, seed=3)
        batch = system.query_many(queries, workers=1, seed=3,
                                  priority="background")
        for a, b in zip(ref.results, batch.results):
            assert sorted(e.payload for e in a.matches) == sorted(
                e.payload for e in b.matches
            )
            assert a.stats.as_dict() == b.stats.as_dict()

    def test_query_many_merges_shed_branches(self):
        """A guarded batch engine's sheds survive the stats merge."""
        system = _build_system()
        engine = OptimizedEngine(guard=GuardPlane(GuardConfig(**AGGRESSIVE)))
        batch = system.query_many(
            [SHED_QUERY], workers=1, seed=3, engine=engine, priority="batch",
        )
        assert batch.stats.shed_branches > 0
        assert batch.stats.as_dict()["shed_branches"] > 0


def test_idle_guard_preserves_fault_rng_stream():
    """The guard consumes no RNG: fault decisions are unchanged.

    Only :class:`OptimizedEngine` carries a fault plane, so the twin runs
    use it directly.
    """
    system = _build_system()

    def faulty(guard):
        return OptimizedEngine(
            fault_plane=FaultPlane(FaultConfig(drop_rate=0.3, seed=17)),
            retry=RetryPolicy(),
            guard=guard,
        )

    ref_out, _ = _run_batch(system, faulty(None))
    idle_out, _ = _run_batch(
        system,
        faulty(GuardPlane(GuardConfig(queue_high=10**6))),
    )
    assert idle_out == ref_out


class TestHopBudgetComposition:
    """Satellite: hop budgets and shedding stack without lying.

    Both degradation mechanisms are armed together; depending on the
    budget, one or the other bites first (shedding starves the hop count
    and an exhausted budget stops the fan-out before backlog builds), but
    whichever fires must land in *its own* counter, and the combined run
    must still be an honest partial with reconciling trace totals.
    """

    @pytest.mark.parametrize("engine_cls", ENGINES.values(), ids=ENGINES)
    @pytest.mark.parametrize(
        "hop_budget,guard_kwargs,channel",
        [
            # Armed-but-generous guard: every entry passes admit(), then
            # the tiny budget exhausts -> the *lost* channel.
            (3, dict(queue_high=64, bucket_capacity=10**6), "lost_branches"),
            # Generous (default) budget, aggressive guard -> *shed*.
            (None, AGGRESSIVE, "shed_branches"),
        ],
        ids=["budget-bites", "guard-bites"],
    )
    def test_budget_and_shed_compose_honestly(
        self, engine_cls, hop_budget, guard_kwargs, channel
    ):
        system = _build_system()
        kwargs = {} if hop_budget is None else {"hop_budget": hop_budget}
        engine = engine_cls(
            guard=GuardPlane(GuardConfig(**guard_kwargs)), **kwargs
        )
        system.plan_cache = PlanCache()
        system.attach_tracer()
        try:
            result = engine.execute(
                system, "(*, *)", origin=system.overlay.node_ids()[0],
                rng=np.random.default_rng(9), priority="background",
            )
        finally:
            system.detach_tracer()
        exact = {e.payload for e in system.brute_force_matches("(*, *)")}
        assert {e.payload for e in result.matches} <= exact
        assert result.complete is False
        assert result.unresolved_ranges
        stats = result.stats
        # The expected channel fired; neither leaked into the other's
        # counter beyond what actually happened.
        assert getattr(stats, channel) > 0
        totals = result.trace.totals()
        assert totals["shed_branches"] == stats.shed_branches
        assert totals["lost_branches"] == stats.lost_branches
        assert totals["messages"] == stats.messages
        assert totals["hops"] == stats.hops

    def test_unresolved_ranges_cover_the_shed_windows(self):
        """Re-querying only the unresolved windows recovers the gap."""
        system = _build_system()
        result = _shed_result(system, OptimizedEngine)
        exact = {e.payload for e in system.brute_force_matches(SHED_QUERY)}
        got = {e.payload for e in result.matches}
        missing = exact - got
        assert missing
        covered = set()
        for lo, hi in result.unresolved_ranges:
            covered.update(range(lo, hi + 1))
        for entry in system.brute_force_matches(SHED_QUERY):
            if entry.payload in missing:
                index = int(system.curve.encode(
                    system.space.coordinates(entry.key)
                ))
                assert index in covered
