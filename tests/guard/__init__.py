"""Tests for the overload guard plane (``repro.guard``)."""
