"""Unit tests for the guard plane: priorities, buckets, watermarks.

Everything here is pure in-process state — no system, no engine — so the
tests pin the exact semantics the engines and transports rely on: the
hysteresis latch, the logical-clock token bucket, protected ranks, the
hard ``queue_limit`` backstop, and the conservative pending-gauge
accounting (every ``note_posted`` matched by one ``admit`` or
``note_abandoned``).
"""

from __future__ import annotations

import pytest

from repro.errors import GuardError
from repro.guard import (
    PRIORITIES,
    GuardConfig,
    GuardPlane,
    TokenBucket,
    priority_name,
    priority_rank,
)
from repro.obs import collecting


class TestPriorities:
    def test_rank_order(self):
        assert PRIORITIES == ("interactive", "batch", "background")

    def test_none_means_interactive(self):
        assert priority_rank(None) == 0

    @pytest.mark.parametrize("name,rank", [("interactive", 0), ("batch", 1),
                                           ("background", 2)])
    def test_names_and_ints_round_trip(self, name, rank):
        assert priority_rank(name) == rank
        assert priority_rank(rank) == rank
        assert priority_name(rank) == name
        assert priority_name(name) == name

    @pytest.mark.parametrize("bad", [True, False, -1, 3, "urgent", 1.5, []])
    def test_invalid_priorities_raise(self, bad):
        with pytest.raises(GuardError):
            priority_rank(bad)


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(GuardError):
            TokenBucket(0, 1.0)
        with pytest.raises(GuardError):
            TokenBucket(4, -0.5)

    def test_starts_full_and_drains(self):
        bucket = TokenBucket(2, refill=0.0)
        assert bucket.take(0) and bucket.take(0)
        assert not bucket.take(0)

    def test_zero_refill_never_credits(self):
        bucket = TokenBucket(1, refill=0.0)
        assert bucket.take(0)
        assert not bucket.take(10_000)

    def test_refill_proportional_to_elapsed_ticks(self):
        bucket = TokenBucket(4, refill=0.5)
        for _ in range(4):
            assert bucket.take(0)
        assert not bucket.take(1)  # 0.5 tokens credited: still dry
        assert bucket.take(3)  # +1.0 more: one whole token available
        assert not bucket.take(3)

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(2, refill=1.0)
        assert bucket.take(0) and bucket.take(0)
        # A long idle period credits at most ``capacity`` tokens.
        assert bucket.take(1_000) and bucket.take(1_000)
        assert not bucket.take(1_000)


class TestGuardConfig:
    def test_defaults_are_inert(self):
        cfg = GuardConfig()
        assert not cfg.active
        assert not GuardPlane(cfg).active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_high": 0},
            {"queue_low": 2},  # queue_low requires queue_high
            {"queue_high": 4, "queue_low": 5},
            {"queue_limit": 0},
            {"queue_high": 8, "queue_limit": 4},  # limit below high
            {"bucket_capacity": 0},
            {"bucket_refill": -1.0},
            {"protected_rank": -2},
            {"protected_rank": 3},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(GuardError):
            GuardConfig(**kwargs)

    def test_any_single_limit_arms_the_plane(self):
        assert GuardConfig(queue_high=4).active
        assert GuardConfig(queue_limit=4).active
        assert GuardConfig(bucket_capacity=4).active

    def test_low_watermark_defaults_to_half_of_high(self):
        assert GuardConfig(queue_high=9).low_watermark == 4
        assert GuardConfig(queue_high=9, queue_low=1).low_watermark == 1


def _post(plane: GuardPlane, node: int, count: int) -> None:
    for _ in range(count):
        plane.note_posted(node)


class TestGuardPlane:
    def test_pending_gauge_accounting(self):
        plane = GuardPlane(GuardConfig(queue_high=100))
        _post(plane, 5, 3)
        assert plane.pending(5) == 3
        assert plane.pending(6) == 0
        assert plane.admit(5, 0)
        assert plane.pending(5) == 2
        plane.note_abandoned(5)
        assert plane.pending(5) == 1
        assert plane.stats.abandoned == 1
        assert plane.stats.max_pending == 3

    def test_hysteresis_latch_sheds_until_low_watermark(self):
        plane = GuardPlane(GuardConfig(queue_high=3, queue_low=1))
        _post(plane, 1, 6)
        # First admit sees backlog 5 > high: latch trips, entry shed.
        assert not plane.admit(1, rank=1)
        assert plane.stats.overload_events == 1
        # Backlogs 4..2 are above the low watermark: still shedding.
        assert not plane.admit(1, rank=1)
        assert not plane.admit(1, rank=1)
        assert not plane.admit(1, rank=1)
        # Backlog 1 <= queue_low: latch releases, entry admitted.
        assert plane.admit(1, rank=1)
        assert plane.admit(1, rank=1)
        assert plane.stats.shed_queue == 4
        assert plane.stats.admitted == 2
        assert plane.stats.overload_events == 1  # one episode, not four

    def test_protected_rank_bypasses_watermark_and_bucket(self):
        plane = GuardPlane(
            GuardConfig(queue_high=1, queue_low=0, bucket_capacity=1,
                        bucket_refill=0.0)
        )
        _post(plane, 1, 8)
        for _ in range(8):
            assert plane.admit(1, rank=0)
        assert plane.stats.shed == 0

    def test_queue_limit_sheds_protected_rank_too(self):
        plane = GuardPlane(GuardConfig(queue_limit=2))
        _post(plane, 1, 5)
        assert not plane.admit(1, rank=0)  # backlog 4 >= limit
        assert not plane.admit(1, rank=0)  # backlog 3
        assert not plane.admit(1, rank=0)  # backlog 2
        assert plane.admit(1, rank=0)  # backlog 1 < limit
        assert plane.admit(1, rank=0)
        assert plane.stats.shed_queue == 3
        assert plane.stats.shed_by_class == {"interactive": 3}

    def test_throttle_sheds_count_separately_by_class(self):
        plane = GuardPlane(GuardConfig(bucket_capacity=1, bucket_refill=0.0))
        _post(plane, 1, 3)
        assert plane.admit(1, rank=1)  # the single token
        assert not plane.admit(1, rank=1)
        assert not plane.admit(1, rank=2)
        assert plane.stats.shed_throttle == 2
        assert plane.stats.shed_queue == 0
        assert plane.stats.shed_by_class == {"background": 1, "batch": 1}
        assert plane.stats.as_dict()["shed"] == 2

    def test_bucket_refills_with_plane_wide_progress(self):
        # Refill is driven by the plane's logical clock: admits on *other*
        # nodes advance it, so a throttled node recovers as the system
        # makes progress.
        plane = GuardPlane(GuardConfig(bucket_capacity=1, bucket_refill=0.5))
        _post(plane, 1, 2)
        _post(plane, 2, 4)
        assert plane.admit(1, rank=1)
        assert not plane.admit(1, rank=1)  # dry, 0.5 credited
        for _ in range(2):
            assert plane.admit(2, rank=0)  # protected: ticks the clock
        _post(plane, 1, 1)
        assert plane.admit(1, rank=1)  # 2 more ticks -> a whole token

    def test_per_node_isolation(self):
        plane = GuardPlane(GuardConfig(queue_high=2, queue_low=0))
        _post(plane, 1, 5)
        _post(plane, 2, 1)
        assert not plane.admit(1, rank=1)
        assert plane.admit(2, rank=1)  # node 2's backlog is empty

    def test_metrics_emitted_only_on_trips(self):
        plane = GuardPlane(GuardConfig(queue_high=2, queue_low=0))
        with collecting() as registry:
            _post(plane, 1, 2)
            assert plane.admit(1, rank=1)
            assert plane.admit(1, rank=1)
        assert not registry.snapshot()["counters"]  # no trips, no counters
        with collecting() as registry:
            _post(plane, 1, 5)
            assert not plane.admit(1, rank=1)
            assert not plane.admit(1, rank=1)
        counters = registry.snapshot()["counters"]
        assert counters["guard.sheds.total"] == 2
        assert counters["guard.sheds.queue"] == 2
        assert counters["guard.overload_events.total"] == 1

    def test_admit_without_registry_keeps_stats(self):
        plane = GuardPlane(GuardConfig(queue_limit=1))
        _post(plane, 1, 3)
        assert not plane.admit(1)
        assert plane.stats.shed == 1  # stats accrue without a registry
