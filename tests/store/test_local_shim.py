"""Regression tests for the deprecated ``repro.store.local`` import path.

The shim must keep old code working (same classes as the package root)
while warning once per import.  The warning fires at module import time,
so the tests reload the module to observe it deterministically regardless
of import order across the suite.
"""

import importlib
import warnings

import pytest


def _reload_shim():
    import repro.store.local as shim

    return importlib.reload(shim)


def test_import_fires_deprecation_warning():
    with pytest.warns(DeprecationWarning, match="repro.store.local is deprecated"):
        _reload_shim()


def test_reexported_symbols_stay_importable():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = _reload_shim()
    from repro.store import LocalStore, StoredElement

    assert shim.LocalStore is LocalStore
    assert shim.StoredElement is StoredElement
    assert shim.__all__ == ["LocalStore", "StoredElement"]
    # The shim's class is the real one: instances interoperate.
    store = shim.LocalStore()
    store.add(shim.StoredElement(index=3, key=("a",), payload=None))
    assert store.element_count == 1
