"""The store registry: by-name selection, specs, defaults, deprecation."""

from __future__ import annotations

import importlib
import pickle
import sys
import warnings

import pytest

from repro.errors import ConfigError
from repro.store import (
    REGISTRY,
    ColumnarStore,
    LocalStore,
    SQLiteStore,
    StoreSpec,
    as_spec,
    get_default_store,
    get_store,
    set_default_store,
)


@pytest.fixture(autouse=True)
def _reset_default():
    yield
    set_default_store(None)


class TestGetStore:
    def test_registry_names(self):
        assert set(REGISTRY) == {"local", "columnar", "sqlite"}

    @pytest.mark.parametrize(
        "name,cls",
        [("local", LocalStore), ("columnar", ColumnarStore), ("sqlite", SQLiteStore)],
    )
    def test_by_name(self, name, cls):
        store = get_store(name)
        assert type(store) is cls
        assert store.backend_name == name
        store.close()

    def test_options_forwarded(self, tmp_path):
        store = get_store("sqlite", path=str(tmp_path), batch_size=7)
        assert store._batch_size == 7
        store.close()

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigError) as exc:
            get_store("redis")
        message = str(exc.value)
        assert "redis" in message
        for name in ("local", "columnar", "sqlite"):
            assert name in message


class TestDefaults:
    def test_builtin_default_is_local(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert get_default_store() == "local"

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "sqlite")
        assert get_default_store() == "sqlite"
        assert as_spec(None).name == "sqlite"

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "sqlite")
        set_default_store("columnar")
        assert get_default_store() == "columnar"
        set_default_store(None)  # reset: env visible again
        assert get_default_store() == "sqlite"

    def test_set_default_validates(self):
        with pytest.raises(ConfigError):
            set_default_store("bogus")

    def test_system_create_uses_default(self, monkeypatch):
        from repro.core.system import SquidSystem
        from repro.keywords import KeywordSpace, WordDimension

        set_default_store("columnar")
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=4)
        system = SquidSystem.create(space, n_nodes=4, seed=1)
        assert system.store_spec.name == "columnar"
        assert all(
            isinstance(s, ColumnarStore) for s in system.stores.values()
        )


class TestStoreSpec:
    def test_as_spec_coercions(self):
        assert as_spec("columnar") == StoreSpec("columnar")
        spec = StoreSpec("sqlite", {"batch_size": 9})
        assert as_spec(spec) is spec

    def test_as_spec_rejects_bad_input(self):
        with pytest.raises(ConfigError):
            as_spec("bogus")
        with pytest.raises(ConfigError):
            as_spec(42)
        with pytest.raises(ConfigError):
            as_spec(StoreSpec("bogus"))

    def test_create_builds_backend_with_options(self, tmp_path):
        spec = StoreSpec("sqlite", {"path": str(tmp_path), "batch_size": 5})
        store = spec.create(node_id=3)
        assert isinstance(store, SQLiteStore)
        assert store._batch_size == 5
        store.close()

    def test_pickle_round_trip(self):
        spec = StoreSpec("columnar", {"merge_every": 128})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        store = clone.create()
        assert isinstance(store, ColumnarStore)


class TestDeprecatedImportPath:
    def test_legacy_module_warns_and_aliases(self):
        sys.modules.pop("repro.store.local", None)
        with pytest.warns(DeprecationWarning, match="repro.store.local"):
            legacy = importlib.import_module("repro.store.local")
        assert legacy.LocalStore is LocalStore

    def test_new_paths_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            importlib.reload(importlib.import_module("repro.store.memory"))
            store = get_store("local")
            assert isinstance(store, LocalStore)
