"""Tests for the per-node LocalStore."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.store import LocalStore, StoredElement
from repro.store.base import normalize_ranges


def element(index, key=("a",), payload=None):
    return StoredElement(index=index, key=key, payload=payload)


class TestAdd:
    def test_counts(self):
        store = LocalStore()
        store.add(element(5, key=("a", "b")))
        store.add(element(5, key=("a", "b")))  # same key, second element
        store.add(element(5, key=("a", "c")))  # same index, new key
        store.add(element(9, key=("d", "e")))
        assert store.key_count == 3
        assert store.element_count == 4
        assert len(store) == 4

    def test_bulk_matches_incremental(self):
        elements = [element(i % 7, key=(str(i % 5),)) for i in range(40)]
        a, b = LocalStore(), LocalStore()
        for e in elements:
            a.add(e)
        b.add_sorted_bulk(list(elements))
        assert a.key_count == b.key_count
        assert a.element_count == b.element_count
        assert a.indices() == b.indices()
        assert list(a.all_elements()) == list(b.all_elements())


class TestScan:
    def setup_method(self):
        self.store = LocalStore()
        for i in [3, 7, 7, 10, 20]:
            self.store.add(element(i, key=(f"k{i}", str(i))))

    def test_scan_range_inclusive(self):
        got = [e.index for e in self.store.scan_range(7, 10)]
        assert got == [7, 7, 10]

    def test_scan_empty_range(self):
        assert list(self.store.scan_range(11, 19)) == []

    def test_scan_inverted_range(self):
        assert list(self.store.scan_range(10, 7)) == []

    def test_scan_order(self):
        got = [e.index for e in self.store.scan_range(0, 100)]
        assert got == sorted(got)

    def test_has_any_in_range(self):
        assert self.store.has_any_in_range(5, 8)
        assert not self.store.has_any_in_range(11, 19)
        assert self.store.has_any_in_range(20, 20)

    def test_key_count_at(self):
        assert self.store.key_count_at(7) == 1
        assert self.store.key_count_at(99) == 0


class TestScanRanges:
    """Batched multi-range scan ≡ repeated single-range scans."""

    def _store(self, indices):
        store = LocalStore()
        for n, i in enumerate(indices):
            store.add(element(i, key=(f"k{n}",)))
        return store

    def test_disjoint_sorted_ranges(self):
        store = self._store([3, 7, 7, 10, 20, 31])
        ranges = [(0, 5), (9, 12), (20, 40)]
        batched = [e.index for e in store.scan_ranges(ranges)]
        sequential = [e.index for lo, hi in ranges for e in store.scan_range(lo, hi)]
        assert batched == sequential == [3, 10, 20, 31]

    def test_empty_and_inverted_ranges_skipped(self):
        store = self._store([5, 6])
        assert list(store.scan_ranges([])) == []
        assert list(store.scan_ranges([(9, 2)])) == []
        assert [e.index for e in store.scan_ranges([(9, 2), (5, 5)])] == [5]

    def test_overlapping_ranges_select_exactly_once(self):
        store = self._store([1, 4, 4, 8, 15])
        ranges = [(0, 10), (3, 20)]  # sorted by low, overlapping
        batched = [e.index for e in store.scan_ranges(ranges)]
        # Overlapping ranges are coalesced before scanning: each element is
        # selected exactly once, as if the covered span were scanned directly.
        union = [e.index for e in store.scan_range(0, 20)]
        assert batched == union == [1, 4, 4, 8, 15]

    def test_single_metric_per_batch(self):
        from repro.obs import collecting

        store = self._store([2, 9, 14])
        with collecting() as registry:
            list(store.scan_ranges([(0, 3), (8, 10), (13, 20)]))
            list(store.scan_ranges([]))  # nothing scanned: no metric
        assert registry.counter("store.range_scans").value == 1

    @given(
        st.lists(st.integers(0, 63), min_size=0, max_size=40),
        st.lists(
            st.tuples(st.integers(0, 63), st.integers(0, 63)).map(
                lambda t: (min(t), max(t))
            ),
            min_size=0,
            max_size=8,
        ),
    )
    @settings(max_examples=100)
    def test_equivalent_to_scanning_normalized_ranges(self, indices, ranges):
        ranges = sorted(ranges)  # cluster piece lists arrive sorted by low
        store = self._store(indices)
        batched = [(e.index, e.key) for e in store.scan_ranges(ranges)]
        # The contract: scan_ranges ≡ repeated scan_range over the
        # *normalized* (sorted, coalesced) ranges — exactly-once selection.
        sequential = [
            (e.index, e.key)
            for lo, hi in normalize_ranges(ranges)
            for e in store.scan_range(lo, hi)
        ]
        assert batched == sequential


class TestPopRange:
    def test_pop_moves_everything_in_range(self):
        store = LocalStore()
        for i in range(10):
            store.add(element(i, key=(str(i),)))
        moved = store.pop_range(3, 6)
        assert sorted(e.index for e in moved) == [3, 4, 5, 6]
        assert store.key_count == 6
        assert list(store.scan_range(3, 6)) == []

    def test_pop_empty(self):
        store = LocalStore()
        assert store.pop_range(0, 100) == []

    def test_pop_invalid(self):
        with pytest.raises(StoreError):
            LocalStore().pop_range(5, 1)

    @given(st.lists(st.integers(0, 63), min_size=0, max_size=50), st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=100)
    def test_pop_then_disjoint(self, indices, a, b):
        low, high = sorted((a, b))
        store = LocalStore()
        for n, i in enumerate(indices):
            store.add(element(i, key=(str(n),)))
        total = store.element_count
        moved = store.pop_range(low, high)
        assert all(low <= e.index <= high for e in moved)
        assert store.element_count + len(moved) == total
        assert not store.has_any_in_range(low, high)


class TestSplitPoint:
    def test_none_for_small_stores(self):
        store = LocalStore()
        assert store.split_point_by_load() is None
        store.add(element(4))
        assert store.split_point_by_load() is None

    def test_split_balances_keys(self):
        store = LocalStore()
        for i in range(10):
            store.add(element(i, key=(str(i),)))
        split = store.split_point_by_load()
        below = sum(1 for e in store.all_elements() if e.index <= split)
        assert 4 <= below <= 6

    def test_split_is_strictly_internal(self):
        store = LocalStore()
        store.add(element(2))
        store.add(element(9, key=("z",)))
        split = store.split_point_by_load()
        assert split < 9  # handing [min, split] away must not empty the store

    def test_skewed_load(self):
        store = LocalStore()
        for n in range(50):
            store.add(element(1, key=(str(n),)))
        store.add(element(30, key=("tail",)))
        assert store.split_point_by_load() == 1
