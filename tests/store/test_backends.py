"""Cross-backend equivalence: every backend is scan-identical to LocalStore.

The NodeStore contract (``repro/store/base.py`` module docstring) promises
that the same publish sequence produces byte-identical scan output — same
elements, same order — through every backend.  ``LocalStore`` is the
contract-defining reference; these tests drive randomized publish/scan/pop
sequences through all backends in lockstep and compare against it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.store import ColumnarStore, LocalStore, SQLiteStore, StoredElement

BACKENDS = ["local", "columnar", "columnar-small-merge", "sqlite", "sqlite-file"]


def make_store(backend: str, tmp_path=None):
    if backend == "local":
        return LocalStore()
    if backend == "columnar":
        return ColumnarStore()
    if backend == "columnar-small-merge":
        # merge_every=2 forces pending-buffer merges constantly, exercising
        # the sorted-merge path that the default rarely hits in small tests.
        return ColumnarStore(merge_every=2)
    if backend == "sqlite":
        return SQLiteStore(batch_size=3)  # tiny batches: flush paths covered
    if backend == "sqlite-file":
        assert tmp_path is not None
        return SQLiteStore(path=str(tmp_path), node_id=7)
    raise AssertionError(backend)


def element(index, kid=0, payload=None):
    return StoredElement(index=index, key=(f"k{kid}",), payload=payload)


# Publish sequences as (index, key-id) pairs; payloads are sequence numbers
# so every element is distinguishable and ordering divergence is visible.
adds_strategy = st.lists(
    st.tuples(st.integers(0, 63), st.integers(0, 4)), min_size=0, max_size=60
)
ranges_strategy = st.lists(
    st.tuples(st.integers(0, 63), st.integers(0, 63)), min_size=0, max_size=6
)


def fill(store, adds):
    for n, (index, kid) in enumerate(adds):
        store.add(element(index, kid, payload=n))


def fingerprint(elements):
    return [(e.index, e.key, e.payload) for e in elements]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestScanEquivalence:
    @given(adds=adds_strategy, ranges=ranges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_scan_ranges_identical_to_local(self, tmp_path_factory, adds, ranges):
        reference = LocalStore()
        fill(reference, adds)
        want = fingerprint(reference.scan_ranges(ranges))
        want_all = fingerprint(reference.all_elements())
        for name in BACKENDS:
            if name == "local":
                continue
            store = make_store(name, tmp_path_factory.mktemp("db"))
            try:
                fill(store, adds)
                assert fingerprint(store.scan_ranges(ranges)) == want, name
                assert fingerprint(store.all_elements()) == want_all, name
                assert store.element_count == reference.element_count, name
                assert store.key_count == reference.key_count, name
                assert store.indices() == reference.indices(), name
            finally:
                store.close()

    @given(adds=adds_strategy)
    @settings(max_examples=40, deadline=None)
    def test_bulk_equals_incremental(self, tmp_path_factory, adds):
        elements = [element(i, k, payload=n) for n, (i, k) in enumerate(adds)]
        for name in BACKENDS:
            one = make_store(name, tmp_path_factory.mktemp("a"))
            two = make_store(name, tmp_path_factory.mktemp("b"))
            try:
                for e in elements:
                    one.add(e)
                two.add_sorted_bulk(list(elements))
                assert fingerprint(one.all_elements()) == fingerprint(
                    two.all_elements()
                ), name
                assert one.key_count == two.key_count, name
                assert one.element_count == two.element_count, name
            finally:
                one.close()
                two.close()

    def test_same_index_multimap_order(self, tmp_path, backend):
        """Key groups in first-publish order, publish order within a group."""
        store = make_store(backend, tmp_path)
        try:
            store.add(element(5, kid=0, payload="a0"))
            store.add(element(5, kid=1, payload="b0"))
            store.add(element(5, kid=0, payload="a1"))
            store.add(element(2, kid=9, payload="z"))
            got = [(e.key[0], e.payload) for e in store.scan_range(0, 63)]
            assert got == [("k9", "z"), ("k0", "a0"), ("k0", "a1"), ("k1", "b0")]
        finally:
            store.close()

    def test_overlapping_ranges_yield_each_element_once(self, tmp_path, backend):
        """Regression: overlapping input ranges must not duplicate output."""
        store = make_store(backend, tmp_path)
        try:
            fill(store, [(1, 0), (4, 0), (4, 1), (8, 0), (15, 0)])
            got = [e.index for e in store.scan_ranges([(0, 10), (3, 20), (4, 4)])]
            assert got == [1, 4, 4, 8, 15]
        finally:
            store.close()

    def test_scan_identity_is_stable(self, tmp_path, backend):
        """Re-scanning yields the *same objects* (contract point 3)."""
        store = make_store(backend, tmp_path)
        try:
            fill(store, [(3, 0), (7, 1), (7, 2), (40, 0)])
            first = list(store.scan_ranges([(0, 63)]))
            second = list(store.scan_ranges([(0, 63)]))
            assert all(a is b for a, b in zip(first, second))
        finally:
            store.close()


class TestPopRange:
    @given(
        adds=adds_strategy,
        bounds=st.tuples(st.integers(0, 63), st.integers(0, 63)).map(sorted),
    )
    @settings(max_examples=40, deadline=None)
    def test_pop_matches_local(self, tmp_path_factory, adds, bounds):
        low, high = bounds
        reference = LocalStore()
        fill(reference, adds)
        want_moved = fingerprint(reference.pop_range(low, high))
        want_left = fingerprint(reference.all_elements())
        for name in BACKENDS:
            if name == "local":
                continue
            store = make_store(name, tmp_path_factory.mktemp("db"))
            try:
                fill(store, adds)
                assert fingerprint(store.pop_range(low, high)) == want_moved, name
                assert fingerprint(store.all_elements()) == want_left, name
                assert store.key_count == reference.key_count, name
                assert not store.has_any_in_range(low, high), name
            finally:
                store.close()

    def test_pop_invalid_range_raises(self, tmp_path, backend):
        store = make_store(backend, tmp_path)
        try:
            with pytest.raises(StoreError):
                store.pop_range(5, 1)
        finally:
            store.close()


class TestSnapshotRestore:
    @given(adds=adds_strategy)
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, tmp_path_factory, adds):
        for name in BACKENDS:
            store = make_store(name, tmp_path_factory.mktemp("db"))
            try:
                fill(store, adds)
                snap = store.snapshot()
                store.restore(snap)
                assert fingerprint(store.all_elements()) == fingerprint(snap), name
                assert store.element_count == len(snap), name
            finally:
                store.close()

    def test_snapshots_are_backend_portable(self, tmp_path, backend):
        source = LocalStore()
        fill(source, [(9, 0), (2, 1), (9, 1), (9, 0), (55, 3)])
        target = make_store(backend, tmp_path)
        try:
            target.restore(source.snapshot())
            assert fingerprint(target.all_elements()) == fingerprint(
                source.all_elements()
            )
            assert target.key_count == source.key_count
        finally:
            target.close()


class TestAccounting:
    def test_stats_shape(self, tmp_path, backend):
        store = make_store(backend, tmp_path)
        try:
            fill(store, [(3, 0), (3, 0), (8, 1)])
            stats = store.stats()
            assert stats.backend == store.backend_name
            assert stats.elements == 3
            assert stats.keys == 2
            assert stats.memory_bytes > 0
            assert isinstance(stats.detail, dict)
        finally:
            store.close()

    def test_metric_parity(self, tmp_path_factory):
        """The same op sequence produces identical counters on every backend."""
        from repro.obs import collecting

        def run(store):
            with collecting() as registry:
                fill(store, [(3, 0), (9, 1), (9, 2)])
                store.add_sorted_bulk([element(20, 0, payload="x")])
                list(store.scan_ranges([(0, 10), (5, 30)]))
                list(store.scan_ranges([]))
                store.pop_range(0, 5)
                return registry.snapshot()

        reference = run(LocalStore())
        assert reference["counters"]["store.range_scans"] == 1
        for name in BACKENDS:
            if name == "local":
                continue
            store = make_store(name, tmp_path_factory.mktemp("db"))
            try:
                assert run(store) == reference, name
            finally:
                store.close()

    def test_clear_resets_counts(self, tmp_path, backend):
        store = make_store(backend, tmp_path)
        try:
            fill(store, [(1, 0), (2, 1)])
            store.clear()
            assert store.element_count == 0
            assert store.key_count == 0
            assert store.indices() == []
            assert list(store.all_elements()) == []
        finally:
            store.close()


class TestSQLitePersistence:
    def test_shared_file_isolates_nodes(self, tmp_path):
        """Two stores on one database file see only their own rows."""
        path = str(tmp_path / "ring.sqlite")
        a = SQLiteStore(path=path, node_id=1)
        b = SQLiteStore(path=path, node_id=2)
        try:
            a.add(element(5, 0, payload="a"))
            b.add(element(5, 0, payload="b"))
            assert [e.payload for e in a.scan_range(0, 63)] == ["a"]
            assert [e.payload for e in b.scan_range(0, 63)] == ["b"]
        finally:
            a.close()
            b.close()

    def test_reopen_recovers_rows(self, tmp_path):
        path = str(tmp_path / "ring.sqlite")
        store = SQLiteStore(path=path, node_id=3)
        fill(store, [(4, 0), (4, 1), (30, 2)])
        store.close()
        reopened = SQLiteStore(path=path, node_id=3)
        try:
            assert fingerprint(reopened.all_elements()) == [
                (4, ("k0",), 0), (4, ("k1",), 1), (30, ("k2",), 2),
            ]
            assert reopened.key_count == 3
        finally:
            reopened.close()

    def test_memory_budget_bounds_row_cache(self, tmp_path):
        store = SQLiteStore(path=str(tmp_path), memory_budget_bytes=1, batch_size=2)
        try:
            fill(store, [(i, i % 3) for i in range(20)])
            # The budget evicts cached rows; scans still return correct data
            # (identity stability is only promised while rows stay cached).
            got = fingerprint(store.scan_ranges([(0, 63)]))
            assert got == [(i, (f"k{i % 3}",), i) for i in range(20)]
        finally:
            store.close()
