"""Backend-swap integration: the system behaves identically on any store.

The data plane is below every observable surface — query results, stats,
replication recovery, spawn rebuilds.  These tests run the same seeded
workload per backend and require the outputs to be *identical*, not merely
equivalent: matching payload lists in matching order, equal stats dicts.
"""

from __future__ import annotations

import random

import pytest

from repro import KeywordSpace, NumericDimension, SquidSystem, WordDimension
from repro.store import StoreSpec

BACKENDS = ["local", "columnar", "sqlite"]

WORDS = ["computer", "compiler", "network", "storage", "memory", "monitor"]
QUERIES = [
    "(computer, 512)",
    "(comp*, 512)",
    "(*, 256)",
    "(*, 100-600)",
]


def build_system(store, seed=11, n_nodes=12, n_docs=120):
    space = KeywordSpace(
        [WordDimension("keyword"), NumericDimension("size", 1, 1024)], bits=6
    )
    system = SquidSystem.create(space, n_nodes=n_nodes, seed=seed, store=store)
    rng = random.Random(seed)
    keys = [
        (rng.choice(WORDS), float(rng.choice([128, 256, 300, 512, 640])))
        for _ in range(n_docs)
    ]
    system.publish_many(keys, payloads=range(n_docs))
    return system


def run_workload(system, engine):
    origin = system.overlay.node_ids()[0]
    payloads, stats = [], []
    for text in QUERIES:
        result = system.query(text, origin=origin, rng=0, engine=engine)
        payloads.append([e.payload for e in result.matches])
        stats.append(result.stats.as_dict())
    return payloads, stats


class TestQueryEquivalence:
    @pytest.mark.parametrize("engine", ["optimized", "naive"])
    def test_identical_results_and_stats_across_backends(self, tmp_path, engine):
        reference = None
        for backend in BACKENDS:
            store = (
                StoreSpec("sqlite", {"path": str(tmp_path / "ring")})
                if backend == "sqlite"
                else backend
            )
            system = build_system(store)
            assert system.store_spec.name == backend
            got = run_workload(system, engine)
            assert got[0][0], "seeded workload must produce matches"
            if reference is None:
                reference = got
            else:
                assert got == reference, backend

    def test_query_results_preserve_identity(self):
        """Matches are the published element objects, on every backend."""
        for backend in BACKENDS:
            system = build_system(backend, n_docs=40)
            published = {id(e) for s in system.stores.values() for e in s.all_elements()}
            result = system.query("(*, 100-600)", origin=system.overlay.node_ids()[0])
            assert result.matches, backend
            assert all(id(e) in published for e in result.matches), backend


class TestSpawnRebuild:
    def test_system_spec_carries_store_and_rebuilds_it(self):
        from repro.exec.spec import SystemSpec

        for backend in BACKENDS:
            system = build_system(backend, n_docs=60)
            spec = SystemSpec.from_system(system)
            assert spec.store == system.store_spec
            rebuilt = spec.build()
            assert rebuilt.store_spec.name == backend
            a = run_workload(system, "optimized")
            b = run_workload(rebuilt, "optimized")
            assert a[0] == b[0], backend  # same payloads, same order


class TestReplicationAcrossBackends:
    def test_crash_recovery_is_backend_agnostic(self):
        from repro import ReplicationManager

        losses = {}
        for backend in BACKENDS:
            system = build_system(backend, n_docs=80)
            manager = ReplicationManager(system, degree=2)
            assert manager.verify_degree(), backend
            victim = system.overlay.node_ids()[2]
            manager.crash(victim)
            manager.repair()
            assert manager.verify_degree(), backend
            losses[backend] = manager.stats.elements_lost
            total = sum(s.element_count for s in system.stores.values())
            assert total == 80 - losses[backend], backend
        assert len(set(losses.values())) == 1  # identical loss accounting


class TestMembershipChurn:
    def test_join_and_leave_move_data_identically(self):
        snapshots = {}
        for backend in BACKENDS:
            system = build_system(backend, n_docs=60, n_nodes=8)
            new_id = max(system.overlay.node_ids()) // 2 + 1
            if new_id not in system.overlay.node_ids():
                system.add_node(new_id)
            victim = system.overlay.node_ids()[1]
            system.remove_node(victim)
            snapshots[backend] = {
                nid: [(e.index, e.key, e.payload) for e in store.all_elements()]
                for nid, store in system.stores.items()
            }
        assert snapshots["columnar"] == snapshots["local"]
        assert snapshots["sqlite"] == snapshots["local"]
