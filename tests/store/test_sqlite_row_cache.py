"""Pinning tests for the SQLiteStore LRU row cache.

The previous behaviour dropped the whole identity cache the moment the
byte budget was crossed, so *any* cold scan destroyed the hot set.  These
tests pin the LRU contract: a skewed scan sequence keeps its hot rows
resident (and identical — the very objects published), cold sweeps evict
only least-recently-scanned entries, and the byte accounting survives
evictions and ``pop_range``.
"""

from __future__ import annotations

from repro.store.base import StoredElement
from repro.store.sqlite import SQLiteStore


def _element(i):
    return StoredElement(index=i, key=(f"key-{i}",), payload=f"payload-{i}")


def _fill(store, n=100):
    store.add_sorted_bulk([_element(i) for i in range(n)])


def _blob_budget(rows):
    """A budget that holds about ``rows`` of this test's elements."""
    probe = SQLiteStore()
    _fill(probe, 4)
    list(probe.scan_range(0, 3))
    per_row = probe._cache_bytes // 4
    probe.close()
    return per_row * rows


def test_hot_rows_survive_cold_sweeps():
    budget = _blob_budget(20)
    store = SQLiteStore(memory_budget_bytes=budget)
    _fill(store)
    hot = [list(store.scan_range(0, 9))]  # prime the hot window
    # Skewed sequence: 10 rounds of (hot scan, disjoint cold scan).  The
    # cold windows are each smaller than the budget, so LRU keeps the
    # freshly-rescanned hot rows while shedding the previous cold window.
    for round_no in range(10):
        low = 10 + round_no * 9
        list(store.scan_range(low, low + 8))
        hot.append(list(store.scan_range(0, 9)))
    # Every hot re-scan after priming returned the *same objects*: all hits.
    for scan in hot[1:]:
        assert [id(e) for e in scan] == [id(e) for e in hot[0]]
    stats = store.stats().detail
    assert stats["row_cache_evictions"] > 0  # the budget did bite
    # 11 hot scans x 10 rows: only the priming scan may miss.
    assert stats["row_cache_hits"] >= 100
    hit_rate = stats["row_cache_hits"] / (
        stats["row_cache_hits"] + stats["row_cache_misses"]
    )
    assert hit_rate >= 0.5, f"skewed sequence should mostly hit, got {hit_rate:.2f}"
    store.close()


def test_wholesale_drop_would_have_lost_the_hot_set():
    """The regression the LRU rewrite fixes: crossing the budget mid-scan
    no longer empties the cache — part of the hot window keeps hitting."""
    budget = _blob_budget(20)
    store = SQLiteStore(memory_budget_bytes=budget)
    _fill(store)
    first = list(store.scan_range(0, 9))
    # The cache sits at its budget after the fill, so even this small cold
    # scan crosses it — the old wholesale drop fired at the crossing and
    # lost every hot row; LRU sheds only stale fill-time leftovers.
    list(store.scan_range(10, 14))
    second = list(store.scan_range(0, 9))
    hits = store.stats().detail["row_cache_hits"]
    assert [e.key for e in second] == [e.key for e in first]
    assert [id(e) for e in second] == [id(e) for e in first]  # identity kept
    assert store._cache_bytes <= budget
    assert hits == 10  # the whole hot window survived the cold scan
    store.close()


def test_eviction_keeps_byte_accounting_exact():
    budget = _blob_budget(10)
    store = SQLiteStore(memory_budget_bytes=budget)
    _fill(store, 50)
    list(store.scan_range(0, 49))
    assert store._cache_bytes == sum(b for _, b in store._row_cache.values())
    assert store._cache_bytes <= budget
    store.close()


def test_pop_range_releases_cached_bytes():
    store = SQLiteStore()  # unbounded: everything stays cached
    _fill(store, 30)
    list(store.scan_range(0, 29))
    before = store._cache_bytes
    assert before > 0
    moved = store.pop_range(10, 19)
    assert len(moved) == 10
    assert store._cache_bytes < before
    assert store._cache_bytes == sum(b for _, b in store._row_cache.values())
    store.clear()
    assert store._cache_bytes == 0
    store.close()


def test_rebuffered_row_replaces_stale_cache_entry():
    """Same seq re-cached (re-scan after eviction) must not double-count."""
    budget = _blob_budget(5)
    store = SQLiteStore(memory_budget_bytes=budget)
    _fill(store, 20)
    for _ in range(3):
        list(store.scan_range(0, 19))  # each sweep cycles the small cache
    assert store._cache_bytes == sum(b for _, b in store._row_cache.values())
    assert store._cache_bytes <= budget
    store.close()
