"""Tests for multi-seed experiment replication."""

import pytest

from repro.experiments.replicate import replicate_figure
from repro.experiments.runner import SCALES, ScalePreset

SCALES.setdefault(
    "tiny",
    ScalePreset(
        name="tiny",
        node_counts=(30, 45, 60, 75, 90),
        key_counts=(400, 600, 800, 1000, 1200),
        vocabulary_size=500,
    ),
)


class TestReplicateFigure:
    def test_aggregates_present(self):
        result = replicate_figure("fig18", seeds=[1, 2], scale="tiny")
        assert "keys" in result.aggregates
        agg = result.aggregates["keys"]
        assert agg["min"] <= agg["mean"] <= agg["max"]
        assert agg["std"] >= 0

    def test_per_seed_totals(self):
        result = replicate_figure("fig18", seeds=[1, 2, 3], scale="tiny")
        # Every seed publishes the same number of keys, so totals are stable.
        assert result.per_seed_totals["keys"] == [1200.0, 1200.0, 1200.0]
        assert result.relative_spread("keys") == 0.0

    def test_query_costs_have_bounded_spread(self):
        """The headline metrics are stable across seeds (no cherry-picking)."""
        result = replicate_figure(
            "fig09", seeds=[1, 2, 3], scale="tiny",
            columns=["processing_nodes", "data_nodes", "messages"],
        )
        for column in ("processing_nodes", "messages"):
            assert result.relative_spread(column) < 0.6

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate_figure("fig18", seeds=[])

    def test_to_text(self):
        result = replicate_figure("fig18", seeds=[4], scale="tiny")
        text = result.to_text()
        assert "fig18" in text
        assert "keys" in text
