"""Tests for the CLI and the report generator."""

import pytest

from repro.cli import main
from repro.experiments.report import SHAPE_CHECKS, generate_report


class TestCli:
    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for fig in ("fig09", "fig19"):
            assert fig in out

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "doc-net" in out
        assert "peers" in out

    def test_run_command(self, capsys):
        assert main(["run", "fig18", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out
        assert "interval" in out

    def test_run_with_seed(self, capsys):
        assert main(["run", "fig18", "--scale", "small", "--seed", "3"]) == 0

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--scale", "small", "--figures", "fig18", "--output", str(target)]) == 0
        text = target.read_text()
        assert "fig18" in text
        assert "PASS" in text

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReportGenerator:
    def test_every_figure_has_checks_and_claims(self):
        from repro.experiments import EXTENSIONS, FIGURES
        from repro.experiments.report import _PAPER_CLAIMS

        everything = set(FIGURES) | set(EXTENSIONS)
        assert set(SHAPE_CHECKS) == everything
        assert set(_PAPER_CLAIMS) == everything

    def test_extension_report(self):
        text = generate_report(scale="small", figures=["extB"])
        assert "extB" in text
        assert "FAIL" not in text

    def test_subset_report(self):
        text = generate_report(scale="small", figures=["fig18", "fig19"])
        assert "fig18" in text and "fig19" in text
        assert "fig09" not in text

    def test_report_checks_pass_at_small_scale(self):
        text = generate_report(scale="small", figures=["fig18", "fig19"])
        assert "FAIL" not in text


class TestCurveFlag:
    @pytest.fixture(autouse=True)
    def _reset_default_curve(self):
        from repro.sfc import set_default_curve

        yield
        set_default_curve(None)

    def test_run_with_curve_flag(self, capsys):
        assert main(["run", "fig18", "--scale", "small", "--curve", "onion"]) == 0
        from repro.sfc import get_default_curve

        assert get_default_curve() == "onion"

    def test_rejects_unknown_curve(self):
        with pytest.raises(SystemExit):  # argparse choices
            main(["run", "fig18", "--curve", "peano"])

    def test_curve_ablation_runs(self, capsys):
        assert main(["run", "extH", "--scale", "small", "--csv"]) == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0].split(",")
        assert "curve" in header and "mean_clusters" in header
        body = out.splitlines()[1:]
        families = {line.split(",")[0] for line in body if line}
        assert families == {"hilbert", "zorder", "gray", "onion"}


class TestNewCliCommands:
    def test_run_csv(self, capsys):
        from repro.cli import main

        assert main(["run", "fig18", "--scale", "small", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "interval,keys"

    def test_replicate_command(self, capsys):
        from repro.cli import main

        assert main(["replicate", "fig18", "--scale", "small", "--seeds", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "seed-spread" in out
        assert "keys" in out
