"""Tests for the experiment framework (results, tables, scales)."""

import pytest

from repro.experiments.runner import SCALES, FigureResult, format_table


class TestScales:
    def test_presets_exist(self):
        # Tests may register extra presets (e.g. "tiny"); the three shipped
        # ones must always be there.
        assert {"full", "medium", "small"} <= set(SCALES)

    def test_full_matches_paper(self):
        full = SCALES["full"]
        assert full.node_counts[0] == 1000
        assert full.node_counts[-1] == 5400
        assert full.key_counts[0] == 20_000
        assert full.key_counts[-1] == 100_000

    def test_paired(self):
        pairs = SCALES["small"].paired()
        assert len(pairs) == 5
        assert pairs[0] == (100, 2000)

    def test_scales_are_proportional(self):
        full, small = SCALES["full"], SCALES["small"]
        for f, s in zip(full.node_counts, small.node_counts):
            assert f == s * 10


class TestFigureResult:
    def make(self):
        result = FigureResult("figX", "test figure", ["a", "b"])
        result.add_row(a=1, b="x")
        result.add_row(a=2, b="y")
        result.add_row(a=2, b="z")
        return result

    def test_series(self):
        assert self.make().series("a") == [1, 2, 2]

    def test_series_missing_column(self):
        assert self.make().series("zzz") == [None, None, None]

    def test_filtered(self):
        filtered = self.make().filtered(a=2)
        assert len(filtered.rows) == 2
        assert filtered.series("b") == ["y", "z"]

    def test_to_text_contains_data(self):
        text = self.make().to_text()
        assert "figX" in text
        assert "test figure" in text
        assert "x" in text and "z" in text

    def test_notes_rendered(self):
        result = self.make()
        result.notes.append("hello note")
        assert "hello note" in result.to_text()

    def test_to_csv(self):
        csv_text = self.make().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"
        assert len(lines) == 4

    def test_to_csv_missing_values_blank(self):
        result = FigureResult("f", "t", ["a", "b"])
        result.add_row(a=1)  # b missing
        lines = result.to_csv().strip().splitlines()
        assert lines[1] == "1,"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["col"], [{"col": 1}, {"col": 22}])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # all rows equal width

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_none_rendered_as_dash(self):
        text = format_table(["a"], [{"a": None}])
        assert "-" in text

    def test_float_formatting(self):
        text = format_table(["a"], [{"a": 1.23456}, {"a": 12345.6}])
        assert "1.235" in text
        assert "12345.6" in text
