"""Integration tests for the figure runners (tiny/small scales).

The benchmark suite asserts the paper's shape claims at full sweeps; here
we check that each runner produces well-formed results and that the
registry is complete.
"""

import pytest

from repro.experiments import FIGURES, run_figure
from repro.experiments.runner import SCALES, ScalePreset


# An extra-tiny preset so the integration tests stay fast.
SCALES.setdefault(
    "tiny",
    ScalePreset(
        name="tiny",
        node_counts=(30, 45, 60, 75, 90),
        key_counts=(400, 600, 800, 1000, 1200),
        vocabulary_size=500,
    ),
)


class TestRegistry:
    def test_all_eleven_figures_present(self):
        assert sorted(FIGURES) == [f"fig{i:02d}" for i in range(9, 20)]

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            run_figure("fig99")


class TestSweepFigures:
    @pytest.mark.parametrize("figure,n_queries", [("fig09", 6), ("fig11", 5)])
    def test_document_sweeps(self, figure, n_queries):
        result = run_figure(figure, scale="tiny")
        sizes = sorted({row["nodes"] for row in result.rows})
        assert sizes == [30, 45, 60, 75, 90]
        assert len(result.rows) == 5 * n_queries
        for row in result.rows:
            assert row["data_nodes"] <= row["processing_nodes"] <= row["routing_nodes"]
            assert row["matches"] >= 0

    def test_resource_sweep(self):
        result = run_figure("fig15", scale="tiny")
        assert len(result.rows) == 5 * 4
        assert all(row["matches"] >= 1 for row in result.rows)

    def test_fig17(self):
        result = run_figure("fig17", scale="tiny")
        assert len(result.rows) == 5 * 5


class TestSnapshotFigures:
    def test_fig10_extracts_two_snapshots(self):
        result = run_figure("fig10", scale="tiny")
        assert sorted({row["nodes"] for row in result.rows}) == [60, 90]
        assert len(result.rows) == 2 * 6

    def test_fig16(self):
        result = run_figure("fig16", scale="tiny")
        assert len({row["nodes"] for row in result.rows}) == 2


class TestDistributionFigures:
    def test_fig18_histogram(self):
        result = run_figure("fig18", scale="tiny")
        counts = result.series("keys")
        assert len(counts) == 500
        assert sum(counts) == 1200  # every key lands in one interval

    def test_fig19_variants(self):
        result = run_figure("fig19", scale="tiny")
        variants = {row["variant"] for row in result.rows}
        assert variants == {"none", "join", "join+runtime"}
        for variant in variants:
            loads = [r["load"] for r in result.rows if r["variant"] == variant]
            assert sum(loads) == 1200

    def test_fig19_improvement_direction(self):
        from repro.util.stats import coefficient_of_variation

        result = run_figure("fig19", scale="tiny")

        def cov(variant):
            return coefficient_of_variation(
                [r["load"] for r in result.rows if r["variant"] == variant]
            )

        assert cov("join") < cov("none")


class TestDeterminism:
    def test_same_seed_same_rows(self):
        a = run_figure("fig09", scale="tiny", seed=5)
        b = run_figure("fig09", scale="tiny", seed=5)
        assert a.rows == b.rows

    def test_different_seed_different_queries(self):
        a = run_figure("fig09", scale="tiny", seed=5)
        b = run_figure("fig09", scale="tiny", seed=6)
        assert a.series("query") != b.series("query")
