"""Unit tests for the sweep helpers behind the figure modules."""

import pytest

from repro.experiments.runner import SCALES, FigureResult, ScalePreset
from repro.experiments.sweeps import (
    document_growth_sweep,
    resource_growth_sweep,
    snapshot_runs,
)
from repro.keywords.query import Exact, Query, Wildcard
from repro.workloads.queries import q1_queries, q3_full_range_queries

TINY = ScalePreset(
    name="unit-tiny",
    node_counts=(20, 30, 40, 50, 60),
    key_counts=(200, 300, 400, 500, 600),
    vocabulary_size=300,
)


class TestDocumentGrowthSweep:
    def test_rows_per_size_and_query(self):
        result = document_growth_sweep(
            "figX",
            "unit test sweep",
            dims=2,
            scale=TINY,
            make_queries=lambda wl: q1_queries(wl, count=3, rng=0),
            seed=1,
        )
        assert len(result.rows) == 5 * 3
        assert result.figure == "figX"
        sizes = sorted({r["nodes"] for r in result.rows})
        assert sizes == list(TINY.node_counts)

    def test_queries_fixed_across_sizes(self):
        result = document_growth_sweep(
            "figX",
            "t",
            dims=2,
            scale=TINY,
            make_queries=lambda wl: q1_queries(wl, count=2, rng=0),
            seed=2,
        )
        per_size = {}
        for row in result.rows:
            per_size.setdefault(row["nodes"], []).append(row["query"])
        query_sets = {tuple(sorted(v)) for v in per_size.values()}
        assert len(query_sets) == 1  # the same queries at every size

    def test_notes_mention_sweep(self):
        result = document_growth_sweep(
            "figX",
            "t",
            dims=2,
            scale=TINY,
            make_queries=lambda wl: [Query((Exact(wl.keys[0][0]), Wildcard()))],
            seed=3,
        )
        assert any("swept" in note for note in result.notes)


class TestResourceGrowthSweep:
    def test_rows(self):
        result = resource_growth_sweep(
            "figY",
            "unit resource sweep",
            scale=TINY,
            make_queries=lambda wl: q3_full_range_queries(wl, count=2, rng=0),
            seed=4,
        )
        assert len(result.rows) == 5 * 2
        assert all(r["matches"] >= 1 for r in result.rows)


class TestSnapshotRuns:
    def test_extracts_requested_sizes(self):
        sweep = document_growth_sweep(
            "figX",
            "t",
            dims=2,
            scale=TINY,
            make_queries=lambda wl: q1_queries(wl, count=2, rng=0),
            seed=5,
        )
        snap = snapshot_runs("figZ", "snapshot", sweep, [(30, 300), (60, 600)])
        assert sorted({r["nodes"] for r in snap.rows}) == [30, 60]
        assert len(snap.rows) == 2 * 2
        assert snap.figure == "figZ"

    def test_missing_snapshot_size_yields_no_rows(self):
        sweep = document_growth_sweep(
            "figX",
            "t",
            dims=2,
            scale=TINY,
            make_queries=lambda wl: q1_queries(wl, count=1, rng=0),
            seed=6,
        )
        snap = snapshot_runs("figZ", "s", sweep, [(999, 999)])
        assert snap.rows == []
