"""Tests for the extension experiments (extA/extB/extC)."""

import pytest

from repro.experiments import EXTENSIONS, run_figure
from repro.experiments.runner import SCALES, ScalePreset

SCALES.setdefault(
    "tiny",
    ScalePreset(
        name="tiny",
        node_counts=(30, 45, 60, 75, 90),
        key_counts=(400, 600, 800, 1000, 1200),
        vocabulary_size=500,
    ),
)


class TestRegistry:
    def test_extensions_registered(self):
        assert set(EXTENSIONS) == {
            "extA", "extB", "extC", "extD", "extE", "extF", "extG", "extH",
        }

    def test_run_figure_dispatches_extensions(self):
        result = run_figure("extB", scale="tiny")
        assert result.figure == "extB"


class TestReplicationExperiment:
    def test_degree_zero_loses_higher_degrees_do_not(self):
        result = run_figure("extA", scale="tiny")
        by_degree = {row["degree"]: row for row in result.rows}
        assert set(by_degree) == {0, 1, 2, 3}
        assert by_degree[0]["lost"] > 0
        for degree in (1, 2, 3):
            assert by_degree[degree]["lost"] == 0

    def test_overhead_proportional_to_degree(self):
        result = run_figure("extA", scale="tiny")
        by_degree = {row["degree"]: row for row in result.rows}
        elements = by_degree[1]["elements"]
        for degree in (1, 2, 3):
            assert by_degree[degree]["replica_overhead"] == degree * elements


class TestHotspotExperiment:
    def test_caching_reduces_messages_and_peak_load(self):
        result = run_figure("extB", scale="tiny")
        plain = next(r for r in result.rows if r["variant"] == "plain")
        cached = next(r for r in result.rows if r["variant"] == "cached")
        assert cached["messages"] < plain["messages"]
        assert cached["hottest_node_load"] <= plain["hottest_node_load"]
        assert cached["hit_rate"] > 0.7


class TestResponseTimeExperiment:
    def test_rows_and_ordering(self):
        result = run_figure("extC", scale="tiny")
        assert len(result.rows) == 6  # 3 sizes x 2 variants
        for row in result.rows:
            assert row["mean_completion"] > 0
            if row["mean_first_match"] is not None:
                assert row["mean_first_match"] <= row["mean_completion"]

    def test_pns_wins_at_larger_sizes(self):
        result = run_figure("extC", scale="tiny")
        largest = max(r["nodes"] for r in result.rows)
        classic = next(
            r for r in result.rows if r["nodes"] == largest and r["variant"] == "classic"
        )
        pns = next(
            r for r in result.rows if r["nodes"] == largest and r["variant"] == "pns"
        )
        assert pns["mean_completion"] < classic["mean_completion"] * 1.2


class TestAttackExperiment:
    def test_mitigation_ladder(self):
        result = run_figure("extE", scale="tiny")
        # At every attacked fraction: none <= retry <= retry+replication.
        for fraction in {r["dropper_fraction"] for r in result.rows}:
            rows = {
                r["mitigation"]: r
                for r in result.rows
                if r["dropper_fraction"] == fraction
            }
            assert rows["none"]["recall"] <= rows["retry"]["recall"] + 1e-9
            assert rows["retry"]["recall"] <= rows["retry+replication"]["recall"] + 1e-9

    def test_no_attack_full_recall(self):
        result = run_figure("extE", scale="tiny")
        clean = [r for r in result.rows if r["dropper_fraction"] == 0.0]
        assert all(r["recall"] == 1.0 for r in clean)

    def test_attack_hurts_unmitigated(self):
        result = run_figure("extE", scale="tiny")
        worst = [
            r
            for r in result.rows
            if r["dropper_fraction"] >= 0.2 and r["mitigation"] == "none"
        ]
        assert any(r["recall"] < 0.9 for r in worst)


class TestFaultExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure("extF", scale="tiny")

    def test_zero_rate_is_exact_and_complete(self, result):
        clean = [r for r in result.rows if r["fault_rate"] == 0.0]
        assert clean and all(
            r["recall"] == 1.0 and r["complete_fraction"] == 1.0 for r in clean
        )

    def test_full_mitigation_stays_exact(self, result):
        rows = [r for r in result.rows if r["mitigation"] == "retry+replication"]
        assert rows and all(
            r["recall"] == 1.0 and r["complete_fraction"] == 1.0 for r in rows
        )

    def test_unmitigated_faults_are_reported_honestly(self, result):
        hurt = [
            r
            for r in result.rows
            if r["fault_rate"] >= 0.2 and r["mitigation"] == "none"
        ]
        assert any(r["recall"] < 1.0 for r in hurt)
        # Lost recall must never be silent: incompleteness is surfaced.
        assert all(
            r["complete_fraction"] < 1.0 or r["recall"] == 1.0 for r in hurt
        )
        assert any(r["lost_branches"] > 0 for r in hurt)

    def test_mitigation_ladder(self, result):
        for rate in {r["fault_rate"] for r in result.rows}:
            rows = {
                r["mitigation"]: r for r in result.rows if r["fault_rate"] == rate
            }
            assert rows["none"]["recall"] <= rows["retry"]["recall"] + 1e-9
            assert rows["retry"]["recall"] <= rows["retry+replication"]["recall"] + 1e-9


class TestChurnExperiment:
    def test_rows_and_exactness(self):
        result = run_figure("extD", scale="tiny")
        assert len(result.rows) == 6  # 3 rates x stabilization on/off
        # Queries over surviving data stay exact through churn.
        assert all(row["query_exact"] for row in result.rows)

    def test_stabilization_reduces_staleness(self):
        result = run_figure("extD", scale="tiny")
        for rate in {row["churn_rate"] for row in result.rows}:
            off = next(
                r for r in result.rows
                if r["churn_rate"] == rate and not r["stabilized"]
            )
            on = next(
                r for r in result.rows
                if r["churn_rate"] == rate and r["stabilized"]
            )
            assert on["stale_fingers"] <= off["stale_fingers"]


class TestResultCacheExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure("extG", scale="tiny")

    def test_grid_shape(self, result):
        assert result.figure == "extG"
        assert len(result.rows) == 12  # 3 skews x 2 mixes x 2 TTLs
        assert {row["ttl"] for row in result.rows} == {None, 40}

    def test_every_hit_was_verified_exact(self, result):
        # extG re-checks each cache hit against brute force as it runs;
        # a nonzero count here means a stale answer was actually served.
        assert all(row["stale"] == 0 for row in result.rows)

    def test_skew_raises_hit_rate(self, result):
        base = [
            row["hit_rate"]
            for row in sorted(
                (
                    r for r in result.rows
                    if r["publish_mix"] == 0.0 and r["ttl"] is None
                ),
                key=lambda r: r["skew"],
            )
        ]
        assert base == sorted(base)
