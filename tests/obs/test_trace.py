"""Trace-tree invariants and the trace <-> QueryStats correspondence.

The acceptance bar for the tracing layer: a traced query yields a
reconstructable refinement tree whose per-node message/prune/aggregate
counts sum *exactly* to the ``QueryStats`` totals of the same run.
"""

import json

import pytest

from repro import NaiveEngine, OptimizedEngine, SquidSystem
from repro.obs import (
    Aggregated,
    ClusterRefined,
    KeyMoved,
    LocalScan,
    MessageSent,
    NodeJoined,
    NodeLeft,
    Pruned,
    Tracer,
)

from tests.obs.conftest import build_system

QUERY = "(comp*, *)"


def traced_query(system, **kwargs):
    system.attach_tracer()
    result = system.query(QUERY, origin=system.overlay.node_ids()[0], rng=0, **kwargs)
    assert result.trace is not None
    return result


def assert_totals_match(result):
    totals = result.trace.totals()
    stats = result.stats
    assert totals["messages"] == stats.messages
    assert totals["hops"] == stats.hops
    assert totals["routing_nodes"] == stats.routing_nodes
    assert totals["processing_nodes"] == stats.processing_nodes
    assert totals["data_nodes"] == stats.data_nodes
    assert totals["pruned_branches"] == stats.pruned_branches
    assert totals["aggregated_batches"] == stats.aggregated_batches
    assert totals["aborted_in_flight"] == stats.aborted_in_flight


class TestTraceStatsCorrespondence:
    @pytest.mark.parametrize("engine", ["optimized", "naive"])
    def test_totals_equal_stats(self, engine):
        system = build_system(engine=engine)
        result = traced_query(system)
        assert result.match_count > 0
        assert_totals_match(result)

    @pytest.mark.parametrize("engine", ["optimized", "naive"])
    def test_totals_equal_stats_under_limit(self, engine):
        system = build_system(engine=engine)
        result = traced_query(system, limit=1)
        assert result.match_count >= 1
        assert_totals_match(result)

    def test_limit_reports_aborted_in_flight(self):
        system = build_system()
        result = traced_query(system, limit=1)
        # Dispatched-but-unprocessed sub-queries are reported, and their
        # messages stay included in the totals (they were really sent).
        assert result.stats.aborted_in_flight >= 0
        assert (
            result.trace.totals()["aborted_in_flight"]
            == result.stats.aborted_in_flight
        )

    def test_traced_and_untraced_stats_identical(self):
        system = build_system()
        plain = system.query(QUERY, origin=system.overlay.node_ids()[0], rng=0)
        assert plain.trace is None
        traced = traced_query(system)
        plain_dict = plain.stats.as_dict()
        traced_dict = traced.stats.as_dict()
        # The repeated query plans from cache — orthogonal to tracing, and
        # by design it changes nothing else in the stats.
        assert plain_dict.pop("plan_cache_hit") is False
        assert traced_dict.pop("plan_cache_hit") is True
        assert traced_dict == plain_dict
        assert {e.payload for e in traced.matches} == {
            e.payload for e in plain.matches
        }


class TestTreeInvariants:
    def test_every_span_links_to_a_parent(self, system):
        trace = traced_query(system).trace
        ids = {span.span_id for span in trace.spans}
        assert trace.root.parent_id is None
        for span in trace.spans[1:]:
            assert span.parent_id in ids

    def test_every_message_has_an_owning_span(self, system):
        trace = traced_query(system).trace
        owned = [e for _, e in trace.iter_events() if isinstance(e, MessageSent)]
        assert owned == trace.events_of(MessageSent)
        assert len(owned) == trace.totals()["messages"]

    def test_pruned_spans_have_no_children(self, system):
        trace = traced_query(system).trace
        pruned_spans = [s for s in trace.spans if s.events_of(Pruned)]
        assert pruned_spans, "expected at least one pruned branch"
        for span in pruned_spans:
            assert trace.children(span.span_id) == []

    def test_refinement_levels_increase_along_edges(self, system):
        trace = traced_query(system).trace
        for span in trace.spans:
            for child in trace.children(span.span_id):
                assert child.level >= span.level

    def test_data_nodes_scanned_locally(self, system):
        result = traced_query(system)
        scans = result.trace.events_of(LocalScan)
        assert sum(e.found for e in scans) >= result.match_count
        assert {e.node_id for e in scans if e.found} == result.stats.data_nodes


class TestEngineContrast:
    def test_optimized_aggregates_where_naive_does_not(self):
        opt = traced_query(build_system(engine="optimized"))
        naive = traced_query(build_system(engine="naive"))
        batches = opt.trace.events_of(Aggregated)
        assert batches, "optimized engine should batch sibling sub-clusters"
        assert all(b.batch_size >= 2 for b in batches)
        assert naive.trace.events_of(Aggregated) == []

    def test_naive_sends_more_messages(self):
        opt = traced_query(build_system(engine="optimized"))
        naive = traced_query(build_system(engine="naive"))
        assert opt.stats.messages < naive.stats.messages
        assert {e.payload for e in opt.matches} == {e.payload for e in naive.matches}

    def test_optimized_refines_recursively(self, system):
        trace = traced_query(system).trace
        refined = trace.events_of(ClusterRefined)
        assert any(e.level > 0 for e in refined), "expected remote refinement"


class TestRendering:
    def test_to_tree_round_trips_through_json(self, system):
        trace = traced_query(system).trace
        payload = json.loads(trace.to_json())
        assert payload == trace.to_tree()
        assert payload["query"] == QUERY

        def count(node):
            return 1 + sum(count(c) for c in node["children"])

        assert count(payload["tree"]) == len(trace.spans)

    def test_render_mentions_prunes_and_matches(self, system):
        text = traced_query(system).trace.render()
        assert f"query '{QUERY}'" in text
        assert "pruned:" in text
        assert "found=" in text


class TestEngineSelectionApi:
    def test_create_accepts_engine_names(self):
        assert isinstance(build_system(engine="naive").default_engine, NaiveEngine)
        assert isinstance(
            build_system(engine="optimized").default_engine, OptimizedEngine
        )

    def test_query_accepts_names_and_instances(self, system):
        by_name = system.query(QUERY, engine="naive", rng=0)
        by_instance = system.query(QUERY, engine=NaiveEngine(), rng=0)
        assert {e.payload for e in by_name.matches} == {
            e.payload for e in by_instance.matches
        }

    def test_unknown_engine_name_rejected(self, system):
        with pytest.raises(Exception):
            system.query(QUERY, engine="quantum")


class TestTracerLifecycle:
    def test_membership_events_recorded(self, system):
        tracer = system.attach_tracer()
        new_id = next(
            i for i in range(1, system.overlay.space) if i not in system.overlay.nodes
        )
        system.add_node(new_id)
        system.remove_node(new_id)
        joins = [e for e in tracer.system_events if isinstance(e, NodeJoined)]
        leaves = [e for e in tracer.system_events if isinstance(e, NodeLeft)]
        moves = [e for e in tracer.system_events if isinstance(e, KeyMoved)]
        assert [e.node_id for e in joins] == [new_id]
        assert [e.node_id for e in leaves] == [new_id]
        assert all(m.count >= 0 for m in moves)

    def test_keep_bound_drops_oldest(self, system):
        tracer = system.attach_tracer(Tracer(keep=2))
        for _ in range(4):
            system.query(QUERY, rng=0)
        assert len(tracer.traces) == 2
        assert tracer.last is tracer.traces[-1]

    def test_detach_stops_tracing(self, system):
        tracer = system.attach_tracer()
        system.query(QUERY, rng=0)
        assert system.detach_tracer() is tracer
        assert system.tracer is None
        assert system.query(QUERY, rng=0).trace is None

    def test_clear(self, system):
        tracer = system.attach_tracer()
        system.query(QUERY, rng=0)
        tracer.clear()
        assert tracer.traces == [] and tracer.system_events == []
