"""Shared fixtures for observability tests: a small traced-friendly system."""

import pytest

from repro import KeywordSpace, SquidSystem, WordDimension

DOCS = [
    (("computer", "network"), "doc-0"),
    (("computer", "netbook"), "doc-1"),
    (("computation", "theory"), "doc-2"),
    (("database", "network"), "doc-3"),
    (("compiler", "design"), "doc-4"),
    (("company", "storage"), "doc-5"),
    (("compute", "cluster"), "doc-6"),
]


def build_system(n_nodes=16, seed=7, engine=None, bits=8):
    """A small populated 2-D word system (fresh per call: tests mutate it)."""
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=bits)
    system = SquidSystem.create(space, n_nodes=n_nodes, seed=seed, engine=engine)
    for key, payload in DOCS:
        system.publish(key, payload=payload)
    return system


@pytest.fixture
def system():
    return build_system()
