"""Metrics registry: instrument semantics and deterministic snapshots."""

import pytest

from repro.obs import (
    MetricsRegistry,
    collecting,
    get_registry,
    set_registry,
)

from tests.obs.conftest import build_system

QUERY = "(comp*, *)"


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.snapshot()["counters"] == {"c": 5}

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(10)
        reg.gauge("g").add(-3)
        assert reg.snapshot()["gauges"] == {"g": 7}

    def test_histogram_buckets_and_summary(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        for value in (1, 2, 3, 100, 50_000):
            hist.observe(value)
        snap = reg.snapshot()["histograms"]["h"]
        assert snap["count"] == 5
        assert snap["sum"] == 50_106
        assert snap["min"] == 1
        assert snap["max"] == 50_000
        assert sum(snap["buckets"].values()) == 5
        assert snap["buckets"]["inf"] == 1  # the overflow observation

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestRegistryActivation:
    def test_collecting_installs_and_restores(self):
        before = get_registry()
        with collecting() as reg:
            assert get_registry() is reg
        assert get_registry() is before

    def test_set_registry_returns_previous(self):
        reg = MetricsRegistry()
        previous = set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            set_registry(previous)

    def test_no_registry_means_no_collection(self):
        system = build_system()
        assert get_registry() is None
        result = system.query(QUERY, rng=0)  # must not raise anywhere
        assert result.match_count > 0


class TestSystemReporting:
    def test_query_metrics_reported(self):
        system = build_system()
        with collecting() as reg:
            system.query(QUERY, rng=0)
            system.query(QUERY, engine="naive", rng=0)
        counters = reg.snapshot()["counters"]
        assert counters["engine.optimized.queries"] == 1
        assert counters["engine.naive.queries"] == 1
        assert counters["query.messages.total"] > 0
        assert counters["overlay.routes"] > 0
        histograms = reg.snapshot()["histograms"]
        assert histograms["query.messages"]["count"] == 2

    def test_membership_metrics_reported(self):
        system = build_system()
        with collecting() as reg:
            new_id = next(
                i
                for i in range(1, system.overlay.space)
                if i not in system.overlay.nodes
            )
            system.add_node(new_id)
            system.remove_node(new_id)
        counters = reg.snapshot()["counters"]
        assert counters["system.nodes_joined"] == 1
        assert counters["system.nodes_left"] == 1
        assert reg.snapshot()["gauges"]["system.nodes"] == len(system.overlay)

    def test_publish_and_store_metrics(self):
        system = build_system()
        with collecting() as reg:
            system.publish(("memory", "disk"), payload="extra")
        counters = reg.snapshot()["counters"]
        assert counters["system.publishes"] == 1
        assert counters["store.elements_added"] == 1

    def test_plan_cache_counters(self):
        system = build_system()
        with collecting() as reg:
            system.query(QUERY, rng=0)  # cold: one miss per engine plan
            system.query(QUERY, rng=1)  # warm: planned from cache
            system.query(QUERY, rng=2)
        counters = reg.snapshot()["counters"]
        assert counters["plan_cache.misses"] == 1
        assert counters["plan_cache.hits"] == 2
        assert "plan_cache.evictions" not in counters

    def test_refine_kernel_counters(self):
        from repro.sfc.clusters import vectorized_refinement

        system = build_system()
        with collecting() as reg:
            with vectorized_refinement(True):
                system.query("(*, net*)", engine="naive", rng=0)
            counters = reg.snapshot()["counters"]
            # The naive engine resolves the region through the NumPy kernel.
            assert counters["sfc.refine.vec_calls"] >= 1
            assert counters["sfc.refine.vec_cells"] >= 1
            reg.reset()
            system.plan_cache = None  # force re-planning, scalar this time
            with vectorized_refinement(False):
                system.query("(*, net*)", engine="naive", rng=0)
            counters = reg.snapshot()["counters"]
            assert counters["sfc.refine.scalar_cells"] >= 1
            assert "sfc.refine.vec_calls" not in counters

    def test_kernel_counters_deterministic(self):
        from repro.sfc.clusters import resolve_clusters
        from repro.sfc.hilbert import HilbertCurve
        from repro.sfc.regions import Region

        curve = HilbertCurve(2, 8)
        region = Region.from_bounds([(10, 120), (40, 200)])

        def run():
            with collecting() as reg:
                resolve_clusters(curve, region)
            return reg.snapshot()

        assert run() == run()

    def test_snapshot_deterministic_under_fixed_seed(self):
        def run():
            with collecting() as reg:
                system = build_system(seed=11)
                system.query(QUERY, rng=3)
                system.query("(*, net*)", engine="naive", rng=4)
            return reg.snapshot()

        assert run() == run()

    def test_to_text_lists_sorted_names(self):
        with collecting() as reg:
            system = build_system()
            system.query(QUERY, rng=0)
        lines = reg.to_text().splitlines()
        names = [line.split()[0] for line in lines]
        counter_names = [n for n in names if n in reg.snapshot()["counters"]]
        assert counter_names == sorted(counter_names)
        assert "engine.optimized.queries" in names
