"""Phase profiling of the hot SFC encode/refine and engine scan paths."""

from repro.obs import (
    PhaseProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    profiling,
)

from tests.obs.conftest import build_system

QUERY = "(comp*, *)"


class TestProfiler:
    def test_record_accumulates(self):
        prof = PhaseProfiler()
        prof.record("a", 0.5)
        prof.record("a", 0.25)
        prof.record("b", 1.0)
        snap = prof.snapshot()
        assert snap["a"] == {"calls": 2, "seconds": 0.75}
        assert snap["b"]["calls"] == 1
        assert list(snap) == sorted(snap)

    def test_phase_context_times_block(self):
        prof = PhaseProfiler()
        with prof.phase("x"):
            pass
        assert prof.snapshot()["x"]["calls"] == 1
        assert prof.snapshot()["x"]["seconds"] >= 0

    def test_to_text(self):
        prof = PhaseProfiler()
        assert prof.to_text() == "(no profiled phases)"
        prof.record("sfc.refine", 0.1)
        assert "sfc.refine" in prof.to_text()

    def test_reset(self):
        prof = PhaseProfiler()
        prof.record("a", 1.0)
        prof.reset()
        assert prof.snapshot() == {}


class TestActivation:
    def test_enable_disable_round_trip(self):
        assert active_profiler() is None
        prof = enable_profiling()
        try:
            assert active_profiler() is prof
        finally:
            assert disable_profiling() is prof
        assert active_profiler() is None

    def test_profiling_scope_restores_previous(self):
        with profiling() as outer:
            with profiling() as inner:
                assert active_profiler() is inner
            assert active_profiler() is outer
        assert active_profiler() is None


class TestHotPathHooks:
    def test_query_populates_hot_phases(self):
        system = build_system()
        with profiling() as prof:
            system.publish(("memory", "disk"))
            system.query(QUERY, rng=0)
            system.query(QUERY, engine="naive", rng=0)  # exercises sfc.resolve
        snap = prof.snapshot()
        for phase in ("sfc.encode", "sfc.refine", "sfc.resolve", "engine.scan"):
            assert snap[phase]["calls"] >= 1, f"missing phase {phase}"
            assert snap[phase]["seconds"] >= 0

    def test_disabled_profiler_collects_nothing(self):
        system = build_system()
        prof = PhaseProfiler()
        system.query(QUERY, rng=0)  # no active profiler
        assert prof.snapshot() == {}
        assert active_profiler() is None
