"""The parallel pool's determinism contract: ISSUE acceptance criterion is
byte-identical ``query_many`` outputs (results, merged stats, merged
metrics) for any worker count."""

from __future__ import annotations

import json

import pytest

from repro.errors import EngineError
from repro.exec import (
    DEFAULT_CHUNK_SIZE,
    QueryPool,
    get_default_workers,
    set_default_workers,
)
from repro.experiments.common import build_document_system
from repro.obs import collecting
from repro.workloads.queries import q1_queries, q2_queries


@pytest.fixture(scope="module")
def built():
    return build_document_system(
        dims=2, n_nodes=20, n_keys=250, vocabulary_size=50, bits=10, seed=11
    )


@pytest.fixture(scope="module")
def queries(built):
    return q1_queries(built.workload, count=40, rng=5) + q2_queries(
        built.workload, count=24, rng=6
    )


def _match_sequences(batch):
    """Exact per-query match sequences (order included — byte-identical)."""
    return [[(e.index, str(e.payload)) for e in r.matches] for r in batch.results]


def test_worker_count_does_not_change_results(built, queries):
    system = built.system
    serial = system.query_many(queries, workers=1, seed=42)
    pooled = system.query_many(queries, workers=4, seed=42)

    assert serial.start_method == "in-process"
    assert pooled.start_method in ("fork", "spawn")
    assert _match_sequences(serial) == _match_sequences(pooled)
    assert [r.stats.as_dict() for r in serial.results] == [
        r.stats.as_dict() for r in pooled.results
    ]
    assert serial.stats.as_dict() == pooled.stats.as_dict()
    assert json.dumps(serial.metrics, sort_keys=True) == json.dumps(
        pooled.metrics, sort_keys=True
    )


def test_results_preserve_input_order(built, queries):
    batch = built.system.query_many(queries, workers=1, seed=1)
    assert len(batch.results) == len(queries)
    for query, result in zip(queries, batch.results):
        assert str(result.query) == str(query)


def test_same_seed_same_results_across_runs(built, queries):
    system = built.system
    a = system.query_many(queries[:8], workers=1, seed=7)
    b = system.query_many(queries[:8], workers=1, seed=7)
    assert _match_sequences(a) == _match_sequences(b)
    assert a.stats.as_dict() == b.stats.as_dict()


def test_merged_stats_reduce_per_query_stats(built, queries):
    batch = built.system.query_many(queries[:8], workers=1, seed=3)
    assert batch.stats.messages == sum(r.stats.messages for r in batch.results)
    assert batch.stats.clusters_processed == sum(
        r.stats.clusters_processed for r in batch.results
    )
    expected_data_nodes = set()
    for r in batch.results:
        expected_data_nodes |= r.stats.data_nodes
    assert batch.stats.data_nodes == expected_data_nodes


def test_batch_folds_metrics_into_active_registry(built, queries):
    system = built.system
    with collecting() as registry:
        batch = system.query_many(queries[:6], workers=1, seed=5)
    snap = registry.snapshot()
    assert snap["counters"] == batch.metrics["counters"]


def test_route_cache_metrics_surface_in_batch(built, queries):
    batch = built.system.query_many(queries, workers=1, seed=9)
    counters = batch.metrics["counters"]
    assert counters.get("overlay.route_cache.hits", 0) > 0
    assert counters.get("overlay.route_cache.misses", 0) > 0


def test_empty_batch(built):
    batch = built.system.query_many([], workers=4, seed=0)
    assert batch.results == []
    assert batch.chunk_count == 0
    assert batch.total_matches() == 0


def test_batch_result_helpers(built, queries):
    batch = built.system.query_many(queries[:5], workers=1, seed=2)
    assert batch.query_count == 5
    assert batch.match_counts() == [r.match_count for r in batch.results]
    assert batch.total_matches() == sum(batch.match_counts())
    assert batch.chunk_size == DEFAULT_CHUNK_SIZE


def test_chunking_is_independent_of_workers(built, queries):
    system = built.system
    small = QueryPool(system, workers=1, chunk_size=8).run(queries, seed=4)
    big = QueryPool(system, workers=1, chunk_size=8).run(queries, seed=4)
    assert small.chunk_count == big.chunk_count == (len(queries) + 7) // 8


def test_invalid_parameters_raise(built):
    with pytest.raises(EngineError):
        QueryPool(built.system, workers=0)
    with pytest.raises(EngineError):
        QueryPool(built.system, chunk_size=0)
    with pytest.raises(EngineError):
        QueryPool(built.system, start_method="not-a-method")
    with pytest.raises(ValueError):
        set_default_workers(0)


def test_default_workers_global(built):
    previous = set_default_workers(3)
    try:
        assert get_default_workers() == 3
        assert QueryPool(built.system).workers == 3
        assert QueryPool(built.system, workers=2).workers == 2
    finally:
        set_default_workers(previous)


def test_pool_leaves_system_state_intact(built, queries):
    system = built.system
    plan_cache = system.plan_cache
    route_cache = system.overlay.route_cache
    tracer = system.attach_tracer()
    try:
        batch = system.query_many(queries[:4], workers=1, seed=8)
    finally:
        system.detach_tracer()
    assert system.plan_cache is plan_cache
    assert system.overlay.route_cache is route_cache
    assert tracer is not None
    # Traces cannot be merged across processes; batch results carry none.
    assert all(r.trace is None for r in batch.results)
