"""SystemSpec: the spawn-mode rebuild must reproduce a converged system."""

from __future__ import annotations

from repro.exec import SystemSpec
from repro.experiments.common import build_document_system
from repro.workloads.queries import q1_queries


def test_spec_rebuild_preserves_membership_and_data():
    built = build_document_system(
        dims=2, n_nodes=12, n_keys=120, vocabulary_size=30, bits=10, seed=4
    )
    system = built.system
    rebuilt = SystemSpec.from_system(system).build()

    assert rebuilt.overlay.node_ids() == system.overlay.node_ids()
    assert set(rebuilt.stores) == set(system.stores)
    for node_id, store in system.stores.items():
        original = [(e.index, e.key, str(e.payload)) for e in store.all_elements()]
        copied = [
            (e.index, e.key, str(e.payload))
            for e in rebuilt.stores[node_id].all_elements()
        ]
        assert copied == original, f"store {node_id} diverged after rebuild"


def test_spec_rebuild_answers_queries_identically():
    built = build_document_system(
        dims=2, n_nodes=12, n_keys=120, vocabulary_size=30, bits=10, seed=4
    )
    system = built.system
    rebuilt = SystemSpec.from_system(system).build()
    queries = q1_queries(built.workload, count=12, rng=2)

    original = system.query_many(queries, workers=1, seed=6)
    copied = rebuilt.query_many(queries, workers=1, seed=6)
    assert [
        [(e.index, str(e.payload)) for e in r.matches] for r in original.results
    ] == [[(e.index, str(e.payload)) for e in r.matches] for r in copied.results]
    assert original.stats.as_dict() == copied.stats.as_dict()


def test_spec_is_picklable():
    import pickle

    built = build_document_system(
        dims=2, n_nodes=8, n_keys=40, vocabulary_size=20, bits=8, seed=1
    )
    spec = SystemSpec.from_system(built.system)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.node_ids == spec.node_ids
    assert len(clone.elements) == len(spec.elements)
    assert clone.build().overlay.node_ids() == built.system.overlay.node_ids()
