"""HTTP front-end: routes, error handling, keep-alive, concurrency."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ServingError
from repro.net import (
    QueryClient,
    QueryServer,
    build_demo_system,
    demo_requests,
    encode_result,
)
from repro.net.loadgen import run_pool
from repro.util.rng import as_generator

BUILD = dict(seed=7, n_nodes=16, n_docs=200, bits=8)


def _roundtrip(obj):
    """What a payload looks like after the server's JSON encoding."""
    return json.loads(json.dumps(obj, sort_keys=True, default=str))


def _serve(coro_fn, **server_kwargs):
    """Run ``coro_fn(server)`` against a fresh ephemeral-port server."""

    async def main():
        system = server_kwargs.pop("system", None) or build_demo_system(**BUILD)
        async with QueryServer(system, **server_kwargs) as server:
            return await coro_fn(server)

    return asyncio.run(main())


def test_healthz_stats_metrics_routes():
    async def scenario(server):
        async with QueryClient(server.host, server.port) as client:
            health = await client.get("/healthz")
            stats = await client.get("/stats")
            metrics = await client.get("/metrics")
        return health, stats, metrics

    health, stats, metrics = _serve(scenario)
    assert health["status"] == "ok"
    assert health["nodes"] == BUILD["n_nodes"]
    assert stats["requests"] == 0 and stats["errors"] == 0
    assert stats["inflight"] == 0
    assert metrics == {}  # no registry active


def test_query_roundtrip_and_keep_alive():
    system = build_demo_system(**BUILD)
    twin = build_demo_system(**BUILD)
    requests = demo_requests(system, 7, 6)

    async def scenario(server):
        async with QueryClient(server.host, server.port) as client:
            # All six requests ride one keep-alive connection.
            return [
                await client.query(r["query"], origin=r["origin"])
                for r in requests
            ]

    responses = _serve(scenario, system=system)
    for response, req in zip(responses, requests):
        local = twin.query(req["query"], origin=req["origin"])
        assert response["result"] == _roundtrip(encode_result(local))
        assert response["stats"]["messages"] == local.stats.messages


def test_query_seed_matches_in_process_rng():
    """A request ``seed`` derives the same RNG the in-process API would:
    the served origin choice (and hence the full stats) matches a twin
    system queried with ``rng=as_generator(seed)`` in the same sequence."""
    twin = build_demo_system(**BUILD)
    seeds = (999, 123)

    async def scenario(server):
        async with QueryClient(server.host, server.port) as client:
            return [await client.query("(comp*, *)", seed=s) for s in seeds]

    responses = _serve(scenario)
    for seed, response in zip(seeds, responses):
        local = twin.query("(comp*, *)", rng=as_generator(seed))
        assert response["result"] == _roundtrip(encode_result(local))
        assert response["stats"] == _roundtrip(local.stats.as_dict())


def test_bad_requests_are_400_not_500():
    async def scenario(server):
        async with QueryClient(server.host, server.port) as client:
            missing = await client.request("POST", "/query", {"q": "oops"})
            invalid_query = await client.request(
                "POST", "/query", {"query": "((("}
            )
            bad_origin = await client.request(
                "POST", "/query", {"query": "(*, *)", "origin": -1}
            )
            not_found = await client.request("GET", "/nope")
            server_stats = await client.get("/stats")
        return missing, invalid_query, bad_origin, not_found, server_stats

    missing, invalid_query, bad_origin, not_found, stats = _serve(scenario)
    assert missing[0] == 400 and "query" in missing[1]["error"]
    assert invalid_query[0] == 400
    assert bad_origin[0] == 400
    assert not_found[0] == 404
    assert stats["errors"] == 3
    # The server survived every malformed request on a live connection.
    assert stats["requests"] == 3


def test_client_query_raises_serving_error_on_400():
    def scenario_sync():
        async def scenario(server):
            async with QueryClient(server.host, server.port) as client:
                await client.query("(((")

        return _serve(scenario)

    with pytest.raises(ServingError):
        scenario_sync()


def test_discovery_limit_over_http():
    async def scenario(server):
        async with QueryClient(server.host, server.port) as client:
            full = await client.query("(*, 128-1024)", seed=3)
            limited = await client.query("(*, 128-1024)", seed=3, limit=2)
        return full, limited

    full, limited = _serve(scenario)
    assert len(limited["result"]["matches"]) >= 2
    assert len(limited["result"]["matches"]) < len(full["result"]["matches"])


def test_concurrent_http_clients_match_serial_answers():
    """The satellite concurrency test at the HTTP layer: 8 interleaved
    keep-alive clients replay a request list and must produce exactly the
    serial in-process answers, in request order."""
    system = build_demo_system(**BUILD)
    twin = build_demo_system(**BUILD)
    requests = demo_requests(system, 7, 40)
    expected = [
        json.dumps(
            encode_result(twin.query(r["query"], origin=r["origin"])),
            sort_keys=True,
        )
        for r in requests
    ]

    async def scenario(server):
        return await run_pool(
            server.host,
            server.port,
            requests,
            mode="closed",
            concurrency=8,
            collect=True,
        )

    report = _serve(scenario, system=system, per_message_delay=0.0002)
    assert report.errors == 0
    got = [json.dumps(r["result"], sort_keys=True) for r in report.responses]
    assert got == expected


def test_max_inflight_admission_bound():
    """Requests beyond the bound queue and complete rather than fail."""
    system = build_demo_system(**BUILD)
    requests = demo_requests(system, 7, 20)

    async def scenario(server):
        return await run_pool(
            server.host, server.port, requests,
            mode="closed", concurrency=10, collect=False,
        )

    report = _serve(scenario, system=system, max_inflight=2)
    assert report.errors == 0
    assert report.completed == len(requests)
