"""Served results are bit-identical to in-process results — everywhere.

The property backing the serving layer: resolving a query over the
:class:`AsyncioTransport` (the path behind ``python -m repro serve``)
returns exactly what :meth:`SquidSystem.query` returns in process — across
every registered curve family, both engines, all four query classes, under
fault-plane drops and crashes, and under adversarial query-droppers.
Serial comparisons check full stats equality; the concurrent comparison
checks answers (shared-cache hit flags legitimately depend on arrival
order across runs).
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adversary import AdversarialEngine
from repro.core.engine import OptimizedEngine
from repro.faults import FaultConfig, FaultPlane, RetryPolicy
from repro.net import AsyncioTransport, build_demo_system, demo_queries, encode_result
from repro.sfc import CURVES as CURVE_REGISTRY

CURVES = tuple(sorted(CURVE_REGISTRY))
ENGINES = ("optimized", "naive")
BUILD = dict(seed=11, n_nodes=8, n_docs=80, bits=8)
#: 16 queries, four of each class (exact / prefix / wildcard / range).
QUERIES = demo_queries(11, 16)


def _canon(result) -> str:
    return json.dumps(encode_result(result), sort_keys=True)


def _submit(system, query, origin, engine=None, limit=None):
    async def main():
        async with AsyncioTransport(system, engine) as transport:
            return await transport.submit(query, origin=origin, limit=limit)

    return asyncio.run(main())


# One lazily built (served, in-process twin) system pair per configuration.
# Both sides see the same query sequence, so their plan/route caches stay
# in lockstep and full stats comparison remains exact across examples.
_pairs: dict = {}


def _pair(curve: str, engine: str):
    key = (curve, engine)
    if key not in _pairs:
        _pairs[key] = (
            build_demo_system(curve=curve, engine=engine, **BUILD),
            build_demo_system(curve=curve, engine=engine, **BUILD),
        )
    return _pairs[key]


@settings(max_examples=40, deadline=None)
@given(
    curve=st.sampled_from(CURVES),
    engine=st.sampled_from(ENGINES),
    query_index=st.integers(0, len(QUERIES) - 1),
    origin_index=st.integers(0, BUILD["n_nodes"] - 1),
)
def test_served_identity_property(curve, engine, query_index, origin_index):
    """All curves x both engines x all query classes x any origin."""
    system, twin = _pair(curve, engine)
    origin = system.overlay.node_ids()[origin_index]
    query = QUERIES[query_index]
    served = _submit(system, query, origin)
    local = twin.query(query, origin=origin)
    assert _canon(served) == _canon(local)
    assert served.stats.as_dict() == local.stats.as_dict()


@settings(max_examples=10, deadline=None)
@given(
    query_index=st.integers(0, len(QUERIES) - 1),
    limit=st.integers(1, 5),
)
def test_served_identity_discovery_mode(query_index, limit):
    """Discovery-mode (limit=) early stops are order-sensitive; the
    transport must reproduce the sync stop point exactly."""
    system, twin = _pair("hilbert", "optimized")
    origin = system.overlay.node_ids()[0]
    query = QUERIES[query_index]
    served = _submit(system, query, origin, limit=limit)
    local = twin.query(query, origin=origin, limit=limit)
    assert _canon(served) == _canon(local)
    assert served.stats.as_dict() == local.stats.as_dict()


@pytest.mark.parametrize(
    "rates",
    [dict(drop_rate=0.3), dict(drop_rate=0.15, duplicate_rate=0.1),
     dict(crash_rate=0.04)],
    ids=["drops", "drops+dupes", "crashes"],
)
def test_served_identity_under_fault_plane(rates):
    """Twin systems with twin fault planes: the serial served run consumes
    the plane's RNG in exactly the in-process order, fault for fault —
    including crash-during-query, which permanently mutates both rings in
    lockstep."""

    def build():
        system = build_demo_system(**BUILD)
        plane = FaultPlane(FaultConfig(seed=5, **rates))
        plane.attach_system(system)
        engine = OptimizedEngine(fault_plane=plane, retry=RetryPolicy())
        return system, engine

    system, engine = build()
    twin, twin_engine = build()
    incomplete = 0
    for query in QUERIES:
        # Choose the origin from the *current* ring (crashes shrink it);
        # both rings evolve identically so the choice matches.
        origin = system.overlay.node_ids()[0]
        assert origin == twin.overlay.node_ids()[0]
        served = _submit(system, query, origin, engine=engine)
        local = twin.query(query, engine=twin_engine, origin=origin)
        assert _canon(served) == _canon(local)
        assert served.stats.as_dict() == local.stats.as_dict()
        incomplete += not served.complete


def test_served_identity_under_adversarial_droppers():
    """Query-dropping peers, with retry+failover routing around them."""
    system = build_demo_system(**BUILD)
    twin = build_demo_system(**BUILD)
    ids = system.overlay.node_ids()
    droppers = set(ids[::3])
    engine = AdversarialEngine(droppers, retry=True)
    twin_engine = AdversarialEngine(droppers, retry=True)
    honest = [nid for nid in ids if nid not in droppers]
    for i, query in enumerate(QUERIES):
        origin = honest[i % len(honest)]
        served = _submit(system, query, origin, engine=engine)
        local = twin.query(query, engine=twin_engine, origin=origin)
        assert _canon(served) == _canon(local)
        assert served.stats.as_dict() == local.stats.as_dict()


def test_served_identity_dropper_origin():
    """A malicious origin short-circuits identically over the transport
    (the begin_run early-result path)."""
    system = build_demo_system(**BUILD)
    twin = build_demo_system(**BUILD)
    dropper = system.overlay.node_ids()[0]
    engine = AdversarialEngine({dropper})
    twin_engine = AdversarialEngine({dropper})
    served = _submit(system, QUERIES[0], dropper, engine=engine)
    local = twin.query(QUERIES[0], engine=twin_engine, origin=dropper)
    assert served.complete is False and local.complete is False
    assert _canon(served) == _canon(local)


def test_concurrent_clients_match_serial_answers():
    """N interleaved submissions == serial execution, answer for answer."""
    system = build_demo_system(**BUILD)
    twin = build_demo_system(**BUILD)
    ids = system.overlay.node_ids()
    jobs = [
        (query, ids[i % len(ids)]) for i, query in enumerate(QUERIES * 2)
    ]

    async def main():
        async with AsyncioTransport(system, per_message_delay=0.0002) as t:
            return await asyncio.gather(
                *(t.submit(q, origin=o) for q, o in jobs)
            )

    served = asyncio.run(main())
    serial = [twin.query(q, origin=o) for q, o in jobs]
    assert [_canon(r) for r in served] == [_canon(r) for r in serial]
