"""Server front-door overload behaviour: 429s, quotas, guarded engines.

The admission contract (``docs/overload.md``): a request that cannot get
a slot *and* finds the bounded waiting room full is refused immediately
with ``429 Too Many Requests`` and a ``Retry-After`` header — never
queued unboundedly, never a 5xx — and refusals are counted in
``rejected``, separately from ``errors``, in ``/stats``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.engine import OptimizedEngine
from repro.guard import GuardConfig, GuardPlane
from repro.net import QueryClient, QueryServer, build_demo_system, encode_result
from repro.net.server import read_http_response

BUILD = dict(seed=7, n_nodes=16, n_docs=200, bits=8)


def _serve(coro_fn, **server_kwargs):
    async def main():
        system = server_kwargs.pop("system", None) or build_demo_system(**BUILD)
        async with QueryServer(system, **server_kwargs) as server:
            return await coro_fn(server)

    return asyncio.run(main())


async def _raw_request(server, payload):
    """One request via a raw socket; returns (status, headers, body dict)."""
    reader, writer = await asyncio.open_connection(server.host, server.port)
    try:
        body = json.dumps(payload).encode()
        head = (
            f"POST /query HTTP/1.1\r\nHost: {server.host}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        status, headers, raw = await read_http_response(reader)
        return status, headers, json.loads(raw.decode()) if raw else {}
    finally:
        writer.close()
        await writer.wait_closed()


class TestPriorityField:
    def test_priority_round_trips_and_does_not_change_the_answer(self):
        system = build_demo_system(**BUILD)
        twin = build_demo_system(**BUILD)
        origin = system.overlay.node_ids()[0]

        async def scenario(server):
            out = []
            async with QueryClient(server.host, server.port) as client:
                for priority in (None, "interactive", "batch", "background"):
                    payload = {"query": "(comp*, *)", "origin": origin}
                    if priority is not None:
                        payload["priority"] = priority
                    out.append(await client.request("POST", "/query", payload))
            return out

        responses = _serve(scenario, system=system)
        expected = json.loads(
            json.dumps(
                encode_result(twin.query("(comp*, *)", origin=origin)),
                sort_keys=True,
                default=str,
            )
        )
        for status, body in responses:
            assert status == 200
            assert body["result"] == expected

    def test_invalid_priority_is_a_400_not_a_reject(self):
        async def scenario(server):
            async with QueryClient(server.host, server.port) as client:
                status, body = await client.request(
                    "POST", "/query",
                    {"query": "(comp*, *)", "priority": "urgent"},
                )
                stats = await client.get("/stats")
            return status, body, stats

        status, body, stats = _serve(scenario)
        assert status == 400
        assert "priority" in body["error"]
        assert stats["errors"] == 1
        assert stats["rejected"] == 0

    @pytest.mark.parametrize("bad", [True, 3, ["batch"]])
    def test_non_string_priorities_rejected(self, bad):
        async def scenario(server):
            async with QueryClient(server.host, server.port) as client:
                status, _ = await client.request(
                    "POST", "/query", {"query": "(comp*, *)", "priority": bad}
                )
            return status

        assert _serve(scenario) == 400


class TestBacklogCap:
    def test_full_backlog_rejects_with_retry_after(self):
        async def scenario(server):
            async with QueryClient(server.host, server.port) as client:
                slow = asyncio.ensure_future(
                    client.request("POST", "/query", {"query": "(*, *)"})
                )
                await asyncio.sleep(0.05)  # the slow query holds the slot
                status, headers, body = await _raw_request(
                    server, {"query": "(comp*, *)"}
                )
                slow_status, _ = await slow
                stats_ = await client.get("/stats")
            return slow_status, status, headers, body, stats_

        slow_status, status, headers, body, stats = _serve(
            scenario,
            max_inflight=1,
            max_backlog=0,
            retry_after=3,
            per_message_delay=0.01,
        )
        assert slow_status == 200
        assert status == 429
        assert headers["retry-after"] == "3"
        assert body["retry_after"] == 3
        assert "backlog" in body["error"]
        # Refusals are rejections, not errors.
        assert stats["rejected"] == 1
        assert stats["errors"] == 0
        assert stats["max_backlog"] == 0

    def test_default_backlog_is_unbounded_waiting(self):
        """Without ``max_backlog`` the legacy contract holds: requests
        wait for a slot and every one completes (no 429s)."""

        async def scenario(server):
            async with QueryClient(server.host, server.port) as client:
                statuses = []
                for _ in range(6):
                    status, _ = await client.request(
                        "POST", "/query", {"query": "(comp*, *)"}
                    )
                    statuses.append(status)
                stats_ = await client.get("/stats")
            return statuses, stats_

        statuses, stats = _serve(scenario, max_inflight=1)
        assert statuses == [200] * 6
        assert stats["rejected"] == 0

    def test_validation(self):
        system = build_demo_system(**BUILD)
        with pytest.raises(Exception):
            QueryServer(system, max_backlog=-1)
        with pytest.raises(Exception):
            QueryServer(system, retry_after=0)
        with pytest.raises(Exception):
            QueryServer(system, class_quotas={"urgent": 2})
        with pytest.raises(Exception):
            QueryServer(system, class_quotas={"batch": -1})


class TestClassQuotas:
    def test_over_quota_class_is_rejected_others_admitted(self):
        async def scenario(server):
            async with QueryClient(server.host, server.port) as client:
                bg_status, _, bg_body = await _raw_request(
                    server, {"query": "(comp*, *)", "priority": "background"}
                )
                ok_status, _ = await client.request(
                    "POST", "/query",
                    {"query": "(comp*, *)", "priority": "interactive"},
                )
                stats_ = await client.get("/stats")
            return bg_status, bg_body, ok_status, stats_

        bg_status, bg_body, ok_status, stats = _serve(
            scenario, class_quotas={"background": 0}
        )
        assert bg_status == 429
        assert "quota" in bg_body["error"]
        assert ok_status == 200
        assert stats["rejected"] == 1
        assert stats["errors"] == 0


class TestGuardedEngineServed:
    def test_served_shed_result_is_an_honest_partial(self):
        """An aggressive engine guard sheds through the full serving
        stack: the HTTP answer itself carries ``complete=False`` and the
        shed branches, so remote clients are never lied to."""
        engine = OptimizedEngine(
            guard=GuardPlane(
                GuardConfig(queue_high=1, queue_low=0, bucket_capacity=1,
                            bucket_refill=0.0)
            )
        )
        system = build_demo_system(engine=engine, **BUILD)
        origin = system.overlay.node_ids()[0]

        async def scenario(server):
            async with QueryClient(server.host, server.port) as client:
                return await client.request(
                    "POST", "/query",
                    {"query": "(*, *)", "origin": origin, "priority": "batch"},
                )

        status, body = _serve(scenario, system=system)
        assert status == 200
        assert body["result"]["complete"] is False
        assert body["result"]["unresolved_ranges"]
        assert body["stats"]["shed_branches"] > 0
