"""Transport-level identity: async delivery == the synchronous simulation.

The contract under test (docs/serving.md): a query run over
:class:`AsyncioTransport` processes its work entries in exactly the FIFO
post order :func:`drive_sync` uses, so matches, stats, and completeness are
bit-identical to in-process execution — serially, concurrently, under
discovery-mode limits, and with tiny inbox bounds.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.net import (
    AsyncioTransport,
    SyncTransport,
    build_demo_system,
    demo_requests,
    encode_result,
)

SEED = 7
BUILD = dict(seed=SEED, n_nodes=16, n_docs=200, bits=8)


def _canon(result) -> str:
    return json.dumps(encode_result(result), sort_keys=True)


def _reference(requests):
    system = build_demo_system(**BUILD)
    out = []
    for req in requests:
        res = system.query(req["query"], origin=req["origin"])
        out.append((_canon(res), res.stats.as_dict()))
    return out


@pytest.fixture(scope="module")
def requests():
    return demo_requests(build_demo_system(**BUILD), SEED, 24)


@pytest.fixture(scope="module")
def reference(requests):
    return _reference(requests)


def test_sync_transport_matches_system_query(requests, reference):
    system = build_demo_system(**BUILD)

    async def main():
        async with SyncTransport(system) as transport:
            return [
                await transport.submit(r["query"], origin=r["origin"])
                for r in requests
            ]

    results = asyncio.run(main())
    got = [(_canon(res), res.stats.as_dict()) for res in results]
    assert got == reference


@pytest.mark.parametrize("inbox_capacity", [1, 2, 128])
def test_asyncio_transport_serial_identity(requests, reference, inbox_capacity):
    """Answers AND stats identical for any inbox bound (backpressure only
    changes scheduling, never the processed entry order)."""
    system = build_demo_system(**BUILD)

    async def main():
        async with AsyncioTransport(
            system, inbox_capacity=inbox_capacity
        ) as transport:
            return [
                await transport.submit(r["query"], origin=r["origin"])
                for r in requests
            ]

    results = asyncio.run(main())
    got = [(_canon(res), res.stats.as_dict()) for res in results]
    assert got == reference


def test_asyncio_transport_concurrent_identity(requests, reference):
    """N interleaved submissions return the same *answers* as serial
    in-process execution (stats may differ only in shared-cache hit flags)."""
    system = build_demo_system(**BUILD)

    async def main():
        async with AsyncioTransport(
            system, per_message_delay=0.0002
        ) as transport:
            return await asyncio.gather(
                *(
                    transport.submit(r["query"], origin=r["origin"])
                    for r in requests
                )
            )

    results = asyncio.run(main())
    assert [_canon(res) for res in results] == [canon for canon, _ in reference]


def test_asyncio_transport_limit_mode(requests):
    """Discovery-mode early stop: same matches and same abandoned-branch
    accounting as the synchronous pump."""
    system = build_demo_system(**BUILD)
    twin = build_demo_system(**BUILD)
    origin = requests[0]["origin"]

    async def main():
        async with AsyncioTransport(system) as transport:
            return await transport.submit(
                "(*, 128-1024)", origin=origin, limit=3
            )

    served = asyncio.run(main())
    local = twin.query("(*, 128-1024)", origin=origin, limit=3)
    assert len(served.matches) >= 3
    assert [e.payload for e in served.matches] == [
        e.payload for e in local.matches
    ]
    assert served.stats.as_dict() == local.stats.as_dict()


def test_asyncio_transport_result_cache_mirror():
    """The transport serves and fills the system's result cache exactly as
    SquidSystem.query does."""
    system = build_demo_system(result_cache=32, **BUILD)
    req = demo_requests(system, SEED, 1)[0]

    async def main():
        async with AsyncioTransport(system) as transport:
            first = await transport.submit(req["query"], origin=req["origin"])
            second = await transport.submit(req["query"], origin=req["origin"])
            return first, second

    first, second = asyncio.run(main())
    assert first.stats.result_cache_hit is False
    assert second.stats.result_cache_hit is True
    assert _canon(first) == _canon(second)


def test_asyncio_transport_naive_engine(requests):
    """The naive engine's single-chain walk serves over the transport too."""
    system = build_demo_system(engine="naive", **BUILD)
    twin = build_demo_system(engine="naive", **BUILD)

    async def main():
        async with AsyncioTransport(system) as transport:
            return [
                await transport.submit(r["query"], origin=r["origin"])
                for r in requests[:8]
            ]

    results = asyncio.run(main())
    for res, req in zip(results, requests[:8]):
        local = twin.query(req["query"], origin=req["origin"])
        assert _canon(res) == _canon(local)
        assert res.stats.as_dict() == local.stats.as_dict()


def test_transport_accounting(requests):
    system = build_demo_system(**BUILD)

    async def main():
        async with AsyncioTransport(system) as transport:
            for r in requests[:5]:
                await transport.submit(r["query"], origin=r["origin"])
            return (
                transport.queries_served,
                transport.messages_delivered,
                transport.inflight,
            )

    served, delivered, inflight = asyncio.run(main())
    assert served == 5
    assert delivered > 0
    assert inflight == 0
