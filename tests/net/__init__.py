"""Serving-layer (repro.net) tests."""
