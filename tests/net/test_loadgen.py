"""Load generator: report fields, clean-run checks, demo request traces."""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.errors import ServingError
from repro.net import (
    LoadReport,
    QueryServer,
    build_demo_system,
    demo_requests,
    run_loadgen,
    run_pool,
)

BUILD = dict(seed=7, n_nodes=16, n_docs=200, bits=8)


class TestLoadReport:
    def _report(self, **overrides):
        base = dict(
            mode="closed",
            concurrency=4,
            rate=None,
            sent=10,
            completed=10,
            errors=0,
            duration_s=0.5,
            latency_s={"p50": 0.002, "p95": 0.004, "p99": 0.005},
        )
        base.update(overrides)
        return LoadReport(**base)

    def test_qps_and_error_rate(self):
        report = self._report(completed=8, errors=2)
        assert report.qps == pytest.approx(16.0)
        assert report.error_rate == pytest.approx(0.2)

    def test_as_dict_converts_latency_to_ms(self):
        out = self._report().as_dict()
        assert out["latency_ms"]["p50"] == pytest.approx(2.0)
        assert set(out) >= {
            "mode", "concurrency", "rate", "sent", "completed",
            "errors", "error_rate", "duration_s", "qps", "latency_ms",
        }

    def test_check_passes_clean_run(self):
        self._report().check()

    def test_check_raises_on_errors(self):
        with pytest.raises(ServingError, match="errors"):
            self._report(completed=9, errors=1).check()

    def test_check_raises_on_nan_latency(self):
        """An all-error run reports NaN percentiles; check() must not let
        that read as a pass."""
        nan = {"p50": math.nan, "p95": math.nan, "p99": math.nan}
        with pytest.raises(ServingError, match="finite"):
            self._report(latency_s=nan).check()

    def test_check_raises_on_empty_latency(self):
        with pytest.raises(ServingError):
            self._report(latency_s={}).check()

    def test_render_mentions_mode_and_qps(self):
        text = self._report(mode="open", rate=250.0).render()
        assert "open-loop" in text and "qps" in text and "rate=250" in text

    def test_check_raises_on_rejects(self):
        """A spotless-run check treats 429s as failures too."""
        with pytest.raises(ServingError, match="reject"):
            self._report(
                completed=8, rejected=2, statuses={"200": 8, "429": 2}
            ).check()

    def test_goodput_and_shed_fraction(self):
        report = self._report(
            sent=10, completed=8, rejected=2, good=6, late_answers=1,
            shed_answers=1, statuses={"200": 8, "429": 2}, duration_s=2.0,
        )
        assert report.goodput == pytest.approx(3.0)  # 6 good / 2 s
        assert report.shed_fraction == pytest.approx(0.3)  # (2+1)/10
        out = report.as_dict()
        assert out["goodput"] == pytest.approx(3.0)
        assert out["statuses"] == {"200": 8, "429": 2}
        assert out["shed_fraction"] == pytest.approx(0.3)

    def test_check_overload_accepts_graceful_degradation(self):
        """429s and honest sheds within the bound are a PASS under
        overload — that is the whole point of the mitigation."""
        self._report(
            sent=10, completed=6, rejected=4, statuses={"200": 6, "429": 4},
        ).check_overload(max_shed_fraction=0.5)

    def test_check_overload_rejects_5xx(self):
        with pytest.raises(ServingError, match="5xx"):
            self._report(
                completed=9, statuses={"200": 9, "500": 1}
            ).check_overload()

    def test_check_overload_rejects_excessive_shedding(self):
        with pytest.raises(ServingError, match="shed"):
            self._report(
                sent=10, completed=2, rejected=8,
                statuses={"200": 2, "429": 8},
            ).check_overload(max_shed_fraction=0.5)

    def test_check_overload_rejects_hard_errors(self):
        with pytest.raises(ServingError, match="errors"):
            self._report(
                completed=9, errors=1, statuses={"200": 9},
            ).check_overload()


class TestRunPoolValidation:
    def _run(self, **kwargs):
        return asyncio.run(run_pool("127.0.0.1", 1, [], **kwargs))

    def test_rejects_unknown_mode(self):
        with pytest.raises(ServingError, match="mode"):
            self._run(mode="sideways")

    def test_rejects_nonpositive_open_rate(self):
        with pytest.raises(ServingError, match="rate"):
            self._run(mode="open", rate=0)

    def test_rejects_zero_concurrency(self):
        with pytest.raises(ServingError, match="concurrency"):
            self._run(mode="closed", concurrency=0)


class TestDemoRequests:
    def test_with_system_pins_origins(self):
        system = build_demo_system(**BUILD)
        requests = demo_requests(system, 7, 12)
        ids = set(system.overlay.node_ids())
        assert len(requests) == 12
        assert all(r["origin"] in ids for r in requests)
        assert all("seed" not in r for r in requests)

    def test_without_system_carries_seeds(self):
        requests = demo_requests(None, 7, 12)
        assert all("origin" not in r for r in requests)
        seeds = [r["seed"] for r in requests]
        assert len(set(seeds)) == len(seeds)

    def test_deterministic_per_seed(self):
        system = build_demo_system(**BUILD)
        twin = build_demo_system(**BUILD)
        assert demo_requests(system, 7, 20) == demo_requests(twin, 7, 20)
        assert demo_requests(system, 7, 20) != demo_requests(system, 8, 20)


class TestRunPoolModes:
    def _serve_and_run(self, **pool_kwargs):
        system = build_demo_system(**BUILD)
        requests = demo_requests(system, 7, pool_kwargs.pop("n", 24))

        async def main():
            async with QueryServer(system) as server:
                return await run_pool(
                    server.host, server.port, requests, **pool_kwargs
                )

        return asyncio.run(main())

    def test_closed_loop_clean(self):
        report = self._serve_and_run(mode="closed", concurrency=4)
        assert report.mode == "closed" and report.rate is None
        assert report.errors == 0 and report.completed == 24
        assert report.concurrency == 4
        report.check()

    def test_open_loop_clean(self):
        report = self._serve_and_run(mode="open", rate=500.0, concurrency=4)
        assert report.mode == "open" and report.rate == 500.0
        assert report.errors == 0 and report.completed == 24
        # Open loop paces arrivals: 24 requests at 500/s take >= 46 ms.
        assert report.duration_s >= 23 / 500.0
        report.check()

    def test_pool_never_larger_than_request_count(self):
        report = self._serve_and_run(n=3, mode="closed", concurrency=16)
        assert report.concurrency == 3
        assert report.errors == 0

    def test_errors_counted_not_raised(self):
        """Bad requests surface as report.errors, and check() flags them."""
        system = build_demo_system(**BUILD)
        requests = demo_requests(system, 7, 6)
        requests[3] = {"query": "((("}

        async def main():
            async with QueryServer(system) as server:
                return await run_pool(
                    server.host, server.port, requests,
                    mode="closed", concurrency=2, collect=True,
                )

        report = asyncio.run(main())
        assert report.errors == 1 and report.completed == 5
        assert report.responses[3] is None
        assert all(r is not None for i, r in enumerate(report.responses) if i != 3)
        with pytest.raises(ServingError):
            report.check()


class TestRunLoadgen:
    def test_requires_port_or_self_serve(self):
        with pytest.raises(ServingError, match="port"):
            run_loadgen()

    def test_self_serve_smoke(self):
        """The CI smoke contract in miniature: self-served open-loop replay
        with zero errors and finite percentiles."""
        report = run_loadgen(
            self_serve=True,
            queries=30,
            mode="open",
            rate=400.0,
            concurrency=8,
            nodes=BUILD["n_nodes"],
            docs=BUILD["n_docs"],
            seed=BUILD["seed"],
            check=True,
        )
        assert report.errors == 0
        assert report.completed == 30
        assert report.statuses == {"200": 30}
        assert all(math.isfinite(v) for v in report.latency_s.values())

    def test_self_serve_overload_smoke(self):
        """The CI overload smoke in miniature: a guarded server at a rate
        far above capacity degrades gracefully — refusals and honest
        sheds, never 5xx — and still gets real answers through."""
        report = run_loadgen(
            self_serve=True,
            queries=60,
            mode="open",
            rate=2_000.0,
            concurrency=64,
            nodes=BUILD["n_nodes"],
            docs=BUILD["n_docs"],
            seed=BUILD["seed"],
            per_message_delay=0.002,
            priority="batch",
            deadline=2.0,
            guard=True,
            max_inflight=4,
            max_backlog=4,
            check_overload=True,
            max_shed_fraction=0.95,
        )
        assert report.errors == 0
        assert report.rejected > 0  # the front door really pushed back
        assert report.statuses.get("200", 0) > 0
        assert report.statuses.get("429", 0) == report.rejected
        assert not any(s.startswith("5") for s in report.statuses)
        assert report.goodput > 0
        assert all(math.isfinite(v) for v in report.latency_s.values())
