"""Run the doctest examples embedded in module/function docstrings."""

import doctest

import pytest

import repro.core.system
import repro.keywords.query
import repro.util.bits


@pytest.mark.parametrize(
    "module",
    [repro.util.bits, repro.keywords.query, repro.core.system],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
