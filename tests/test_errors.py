"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)
            assert issubclass(cls, Exception)

    def test_domain_parents(self):
        assert issubclass(errors.DimensionMismatchError, errors.SFCError)
        assert issubclass(errors.CoordinateRangeError, errors.SFCError)
        assert issubclass(errors.IndexRangeError, errors.SFCError)
        assert issubclass(errors.QueryParseError, errors.KeywordError)
        assert issubclass(errors.EmptyOverlayError, errors.OverlayError)
        assert issubclass(errors.NodeNotFoundError, errors.OverlayError)
        assert issubclass(errors.DuplicateNodeError, errors.OverlayError)

    def test_dimension_mismatch_message(self):
        err = errors.DimensionMismatchError(3, 2)
        assert err.expected == 3
        assert err.got == 2
        assert "3" in str(err) and "2" in str(err)

    def test_catchall_usage(self):
        """A caller can catch everything the library raises in one clause."""
        from repro import KeywordSpace, WordDimension

        with pytest.raises(errors.ReproError):
            KeywordSpace([], bits=4)
        with pytest.raises(errors.ReproError):
            WordDimension("x").validate("nope!")
