"""Regression tests pinning the ``fits_int64`` gate at the 63-bit boundary.

Every vectorized fast path (bulk encode/decode, the refinement kernel) is
gated on ``index_bits <= 63``: the largest index of such a curve is
``2**63 - 1`` — exactly ``numpy.int64``'s maximum — so 63 bits is the widest
geometry the NumPy kernels can carry without silent overflow, and 64 bits
must fall back to the exact scalar path on Python ints.  These tests pin the
gate and exercise both sides of it for all registered curve families.
"""

import numpy as np
import pytest

from repro.errors import IndexRangeError
from repro.sfc import CURVES
from repro.sfc.refine_vec import supports_vectorized

CURVE_ITEMS = sorted(CURVES.items())
CURVE_IDS = [name for name, _ in CURVE_ITEMS]
CURVE_CLASSES = [cls for _, cls in CURVE_ITEMS]

# dims * order straddling the boundary: 62 and 63 take the fast path,
# 64 and 65 must fall back.
BOUNDARY_GEOMETRIES = [
    (2, 31),  # 62 bits
    (1, 63),  # 63 bits, max 1-D fast-path order
    (3, 21),  # 63 bits
    (7, 9),   # 63 bits
    (2, 32),  # 64 bits: one past the gate
    (5, 13),  # 65 bits
]


@pytest.mark.parametrize("cls", CURVE_CLASSES, ids=CURVE_IDS)
@pytest.mark.parametrize("dims,order", BOUNDARY_GEOMETRIES)
class TestGate:
    def test_gate_matches_bit_width(self, cls, dims, order):
        c = cls(dims, order)
        assert c.fits_int64 == (dims * order <= 63)
        assert supports_vectorized(c) == (dims * order <= 63)


def _corner_points(curve, n_random=16, seed=5):
    """Extreme + random points: origin, max corner, and near-corner draws."""
    rng = np.random.default_rng(seed)
    top = curve.side - 1
    points = [
        tuple([0] * curve.dims),
        tuple([top] * curve.dims),
        tuple([top] + [0] * (curve.dims - 1)),
    ]
    for _ in range(n_random):
        points.append(
            tuple(
                int(rng.integers(0, curve.side, dtype=np.uint64) % curve.side)
                for _ in range(curve.dims)
            )
        )
    return points


@pytest.mark.parametrize("cls", CURVE_CLASSES, ids=CURVE_IDS)
@pytest.mark.parametrize("dims,order", BOUNDARY_GEOMETRIES)
class TestBoundaryRoundTrip:
    def test_scalar_roundtrip_at_extremes(self, cls, dims, order):
        c = cls(dims, order)
        for point in _corner_points(c):
            index = c.encode(point)
            assert 0 <= index < c.size
            assert c.decode(index) == point

    def test_max_index_is_reachable(self, cls, dims, order):
        """The index space is exactly [0, 2**(d*k)): its top value decodes."""
        c = cls(dims, order)
        point = c.decode(c.size - 1)
        assert c.encode(point) == c.size - 1

    def test_bulk_matches_scalar_at_boundary(self, cls, dims, order):
        """encode_many/decode_many agree with the scalar maps bit-for-bit,
        whichever side of the gate the geometry falls on."""
        c = cls(dims, order)
        points = _corner_points(c, n_random=8)
        arr = np.array(points, dtype=np.int64) if c.fits_int64 else np.array(
            points, dtype=object
        )
        indices = c.encode_many(arr)
        want = [c.encode(p) for p in points]
        assert [int(i) for i in indices] == want
        back = c.decode_many(np.asarray(indices))
        for row, point in zip(back, points):
            assert tuple(int(x) for x in row) == point


class TestFallbackCorrectness:
    """The 64-bit side must not merely not-crash: it must stay exact."""

    @pytest.mark.parametrize("cls", CURVE_CLASSES, ids=CURVE_IDS)
    def test_indices_above_int64_survive(self, cls):
        c = cls(2, 32)  # 64-bit indices: top half exceeds int64.
        top = c.side - 1
        index = c.encode((top, top))
        assert index >= 2**63 or index < 2**63  # a Python int either way
        assert c.decode(index) == (top, top)
        out = c.encode_many(np.array([[top, top]], dtype=np.int64))
        assert out.dtype == object and int(out[0]) == index

    @pytest.mark.parametrize("cls", CURVE_CLASSES, ids=CURVE_IDS)
    def test_one_dim_wide_coordinates(self, cls):
        """Order 64 in 1-D: even *coordinates* exceed int64 — the scalar
        fallback must return an object array, not overflow (regression)."""
        c = cls(1, 64)
        top = c.side - 1  # 2**64 - 1
        index = c.encode((top,))
        assert c.decode(index) == (top,)
        back = c.decode_many(np.array([index], dtype=object))
        assert back.dtype == object
        assert int(back[0][0]) == top

    def test_hilbert_vec_refuses_wide_geometry(self):
        """The raw vectorized kernel guards itself, independent of the gate."""
        from repro.sfc.hilbert_vec import hilbert_encode_vec

        with pytest.raises(IndexRangeError):
            hilbert_encode_vec(np.zeros((1, 2), dtype=np.int64), 2, 32)
