"""Cross-checks of the vectorized Hilbert path against the scalar one."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CoordinateRangeError, DimensionMismatchError, IndexRangeError
from repro.sfc.hilbert import HilbertCurve
from repro.sfc.hilbert_vec import hilbert_decode_vec, hilbert_encode_vec


@pytest.mark.parametrize("dims,order", [(1, 8), (2, 8), (3, 7), (4, 5), (2, 31), (3, 21)])
def test_encode_matches_scalar(dims, order):
    c = HilbertCurve(dims, order)
    rng = np.random.default_rng(7)
    pts = rng.integers(0, c.side, size=(300, dims))
    vec = hilbert_encode_vec(pts, dims, order)
    for row, v in zip(pts, vec):
        assert c.encode(row) == int(v)


@pytest.mark.parametrize("dims,order", [(2, 8), (3, 7), (2, 31)])
def test_decode_matches_scalar(dims, order):
    c = HilbertCurve(dims, order)
    rng = np.random.default_rng(8)
    idx = rng.integers(0, min(c.size, 2**62), size=200)
    coords = hilbert_decode_vec(idx, dims, order)
    for i, row in zip(idx, coords):
        assert c.decode(int(i)) == tuple(int(x) for x in row)


def test_roundtrip_bulk():
    dims, order = 3, 20
    rng = np.random.default_rng(9)
    pts = rng.integers(0, 1 << order, size=(5000, dims))
    idx = hilbert_encode_vec(pts, dims, order)
    back = hilbert_decode_vec(idx, dims, order)
    assert np.array_equal(back, pts)


def test_empty_input():
    out = hilbert_encode_vec(np.empty((0, 2), dtype=np.int64), 2, 8)
    assert out.shape == (0,)
    coords = hilbert_decode_vec(np.empty(0, dtype=np.int64), 2, 8)
    assert coords.shape == (0, 2)


def test_rejects_too_many_bits():
    with pytest.raises(IndexRangeError):
        hilbert_encode_vec(np.zeros((1, 2), dtype=np.int64), 2, 32)


def test_rejects_wrong_shape():
    with pytest.raises(DimensionMismatchError):
        hilbert_encode_vec(np.zeros((4, 3), dtype=np.int64), 2, 8)


def test_rejects_out_of_range_coords():
    with pytest.raises(CoordinateRangeError):
        hilbert_encode_vec(np.array([[0, 256]]), 2, 8)


def test_rejects_out_of_range_indices():
    with pytest.raises(IndexRangeError):
        hilbert_decode_vec(np.array([1 << 16]), 2, 8)


def test_curve_dispatches_to_vectorized():
    c = HilbertCurve(2, 10)
    pts = np.array([[1, 2], [3, 4]])
    out = c.encode_many(pts)
    assert out.dtype == np.int64
    assert [c.encode(p) for p in pts] == out.tolist()


def test_curve_falls_back_for_wide_indices():
    c = HilbertCurve(2, 40)  # 80 bits: object-dtype fallback path.
    pts = np.array([[1, 2], [3, 4]], dtype=object)
    out = c.encode_many(pts)
    assert out.dtype == object
    assert [c.encode(p) for p in pts] == list(out)


@given(st.integers(min_value=0, max_value=2**20 - 1))
@settings(max_examples=50)
def test_single_point_property(index):
    c = HilbertCurve(2, 10)
    point = c.decode(index)
    vec = hilbert_encode_vec(np.array([point]), 2, 10)
    assert int(vec[0]) == index
