"""Tests for cluster generation and recursive refinement.

The ground truth is brute force: walk every curve index, test region
membership, and collect maximal runs.  ``resolve_clusters`` must match it
exactly for every curve/region combination.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SFCError
from repro.sfc.clusters import (
    Cell,
    Cluster,
    FullRange,
    clusters_at_level,
    count_clusters_per_level,
    refine_cluster,
    resolve_clusters,
    root_cluster,
)
from repro.sfc.hilbert import HilbertCurve
from repro.sfc.regions import Region, full_region
from repro.sfc.zorder import MortonCurve


def brute_clusters(curve, region):
    """Maximal runs of curve indices whose points lie inside the region."""
    ranges = []
    start = None
    for i in range(curve.size):
        if region.contains_point(curve.decode(i)):
            if start is None:
                start = i
        elif start is not None:
            ranges.append((start, i - 1))
            start = None
    if start is not None:
        ranges.append((start, curve.size - 1))
    return ranges


def random_region(curve, rng):
    bounds = []
    for _ in range(curve.dims):
        a, b = sorted(rng.integers(0, curve.side, size=2))
        bounds.append((int(a), int(b)))
    return Region.from_bounds(bounds)


class TestResolveAgainstBruteForce:
    @pytest.mark.parametrize(
        "curve",
        [HilbertCurve(2, 4), HilbertCurve(3, 3), HilbertCurve(2, 5), MortonCurve(2, 4)],
        ids=["h2o4", "h3o3", "h2o5", "m2o4"],
    )
    def test_random_boxes(self, curve):
        rng = np.random.default_rng(11)
        for _ in range(25):
            region = random_region(curve, rng)
            assert resolve_clusters(curve, region) == brute_clusters(curve, region)

    def test_union_region(self):
        curve = HilbertCurve(2, 4)
        region = Region(
            (
                Region.from_bounds([(0, 3), (0, 3)]).boxes[0],
                Region.from_bounds([(9, 13), (2, 11)]).boxes[0],
            )
        )
        assert resolve_clusters(curve, region) == brute_clusters(curve, region)

    def test_full_space_single_cluster(self):
        curve = HilbertCurve(2, 4)
        assert resolve_clusters(curve, full_region(2, 4)) == [(0, curve.size - 1)]

    def test_single_point_region(self):
        curve = HilbertCurve(3, 3)
        point = (5, 2, 7)
        region = Region.from_bounds([(c, c) for c in point])
        idx = curve.encode(point)
        assert resolve_clusters(curve, region) == [(idx, idx)]

    def test_line_region(self):
        curve = HilbertCurve(2, 4)
        region = Region.from_bounds([(6, 6), (0, 15)])
        assert resolve_clusters(curve, region) == brute_clusters(curve, region)


class TestPaperFigures:
    def test_figure6_refinement_counts(self):
        """Query (011, *) on a 2-D order-3 curve: 1, 2, 4 clusters at levels 1-3."""
        curve = HilbertCurve(2, 3)
        region = Region.from_bounds([(0b011, 0b011), (0, 7)])
        counts = count_clusters_per_level(curve, region)
        assert counts == [1, 1, 2, 4]

    def test_figure5_vertical_stripe_has_multiple_clusters(self):
        """A one-column query region maps to several disjoint curve segments."""
        curve = HilbertCurve(2, 3)
        region = Region.from_bounds([(0b000, 0b000), (0, 7)])
        ranges = resolve_clusters(curve, region)
        assert len(ranges) >= 2
        covered = sum(hi - lo + 1 for lo, hi in ranges)
        assert covered == 8  # 8 cells in the column

    def test_figure5_square_region_single_cluster(self):
        """The (1*, 0*) style square quadrant is one contiguous curve segment."""
        curve = HilbertCurve(2, 3)
        # A quadrant is a level-1 subcube: exactly one cluster by causality.
        region = Region.from_bounds([(4, 7), (0, 3)])
        ranges = resolve_clusters(curve, region)
        assert len(ranges) == 1
        assert ranges[0][1] - ranges[0][0] + 1 == 16


class TestRefineCluster:
    def test_min_index_trims_prefix(self):
        curve = HilbertCurve(2, 4)
        region = full_region(2, 4)
        root = root_cluster(curve, region)
        refined = refine_cluster(curve, root, region, min_index=100)
        assert len(refined) == 1
        assert refined[0].min_index(curve) == 100
        assert refined[0].max_index(curve) == curve.size - 1

    def test_min_index_beyond_cluster_yields_empty(self):
        curve = HilbertCurve(2, 4)
        region = full_region(2, 4)
        root = root_cluster(curve, region)
        assert refine_cluster(curve, root, region, min_index=curve.size) == []

    def test_refine_with_min_index_preserves_coverage(self):
        curve = HilbertCurve(2, 4)
        rng = np.random.default_rng(5)
        for _ in range(20):
            region = random_region(curve, rng)
            cutoff = int(rng.integers(0, curve.size))
            root = root_cluster(curve, region)
            clusters = [root]
            for _ in range(curve.order):
                nxt = []
                for cl in clusters:
                    if cl.is_resolved:
                        nxt.append(cl)
                    else:
                        nxt.extend(refine_cluster(curve, cl, region, min_index=cutoff))
                clusters = nxt
            covered = set()
            for cl in clusters:
                for lo, hi in cl.iter_index_ranges(curve):
                    covered.update(range(lo, hi + 1))
            expected = {
                i
                for lo, hi in brute_clusters(curve, region)
                for i in range(lo, hi + 1)
                if i >= cutoff
            }
            assert expected <= covered
            # Anything extra must be below the cutoff (partial cells keep
            # their full geometry), never outside the region's clusters.
            allowed = {
                i for lo, hi in brute_clusters(curve, region) for i in range(lo, hi + 1)
            }
            assert covered <= allowed | set(range(cutoff))

    def test_cannot_refine_leaf(self):
        curve = HilbertCurve(2, 2)
        leaf = Cell(level=2, prefix=0, coords=(0, 0), state=curve.root_state())
        cluster = Cluster(level=2, pieces=(leaf,))
        with pytest.raises(SFCError):
            refine_cluster(curve, cluster, full_region(2, 2))


class TestClusterProperties:
    def test_pieces_are_contiguous(self):
        curve = HilbertCurve(2, 4)
        rng = np.random.default_rng(13)
        for _ in range(10):
            region = random_region(curve, rng)
            for level in range(curve.order + 1):
                for cluster in clusters_at_level(curve, region, level):
                    ranges = list(cluster.iter_index_ranges(curve))
                    for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
                        assert hi1 + 1 == lo2

    def test_clusters_disjoint_and_ordered(self):
        curve = HilbertCurve(2, 4)
        rng = np.random.default_rng(14)
        for _ in range(10):
            region = random_region(curve, rng)
            clusters = clusters_at_level(curve, region, curve.order)
            last_end = -2
            for cl in clusters:
                lo, hi = cl.min_index(curve), cl.max_index(curve)
                assert lo > last_end + 1  # maximality: gaps between clusters
                last_end = hi

    def test_identifier_is_min_index(self):
        curve = HilbertCurve(2, 3)
        region = Region.from_bounds([(2, 5), (2, 5)])
        for cl in clusters_at_level(curve, region, 2):
            assert cl.identifier(curve) == cl.min_index(curve)

    def test_prefix_is_common_to_range(self):
        curve = HilbertCurve(2, 3)
        region = Region.from_bounds([(0b011, 0b011), (0, 7)])
        for cl in clusters_at_level(curve, region, 2):
            bits, value = cl.prefix(curve)
            lo, hi = cl.min_index(curve), cl.max_index(curve)
            if bits:
                shift = curve.index_bits - bits
                assert lo >> shift == value
                assert hi >> shift == value

    def test_cell_count_and_resolved(self):
        curve = HilbertCurve(2, 3)
        region = full_region(2, 3)
        root = root_cluster(curve, region)
        assert root.is_resolved
        assert root.cell_count() == 0
        narrow = Region.from_bounds([(1, 6), (1, 6)])
        root2 = root_cluster(curve, narrow)
        assert not root2.is_resolved
        assert root2.cell_count() == 1


class TestCountsMonotone:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_counts_never_decrease(self, seed):
        curve = HilbertCurve(2, 4)
        rng = np.random.default_rng(seed)
        region = random_region(curve, rng)
        counts = count_clusters_per_level(curve, region)
        for a, b in zip(counts, counts[1:]):
            assert b >= a
        assert counts[-1] == len(resolve_clusters(curve, region))


class TestFullRangeValidation:
    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            FullRange(5, 4)
