"""Tests for SFC clustering analytics."""

import numpy as np
import pytest

from repro.errors import ConfigError, DimensionMismatchError
from repro.sfc import CURVES, HilbertCurve, MortonCurve, Region, make_curve
from repro.sfc.analysis import (
    average_cluster_count,
    cluster_stats,
    locality_ratio,
    random_box_region,
)


class TestClusterStats:
    def test_single_cluster(self):
        curve = HilbertCurve(2, 3)
        region = Region.from_bounds([(0, 7), (0, 7)])
        stats = cluster_stats(curve, region)
        assert stats.cluster_count == 1
        assert stats.covered_indices == 64
        assert stats.largest_cluster == 64
        assert stats.mean_cluster_length == 64.0

    def test_column_region(self):
        curve = HilbertCurve(2, 3)
        region = Region.from_bounds([(0, 0), (0, 7)])
        stats = cluster_stats(curve, region)
        assert stats.covered_indices == 8
        assert stats.cluster_count >= 2
        assert stats.smallest_cluster >= 1

    def test_mean_length_of_empty(self):
        from repro.sfc.analysis import ClusterStats

        assert ClusterStats(0, 0, 0, 0).mean_cluster_length == 0.0

    def test_point_region(self):
        """Degenerate zero-width box: exactly one single-cell cluster."""
        curve = HilbertCurve(2, 4)
        region = Region.from_bounds([(5, 5), (9, 9)])
        stats = cluster_stats(curve, region)
        assert stats.cluster_count == 1
        assert stats.covered_indices == 1
        assert stats.largest_cluster == 1

    def test_full_space_region(self):
        """The whole cube is one cluster for every family."""
        for name in sorted(CURVES):
            curve = make_curve(name, 2, 4)
            region = Region.from_bounds([(0, curve.side - 1)] * 2)
            stats = cluster_stats(curve, region)
            assert stats.cluster_count == 1
            assert stats.covered_indices == curve.size

    def test_dims_mismatch_raises(self):
        curve = HilbertCurve(2, 3)
        region = Region.from_bounds([(0, 1), (0, 1), (0, 1)])
        with pytest.raises(DimensionMismatchError):
            cluster_stats(curve, region)


class TestRandomBoxRegion:
    def test_extent_respected(self):
        curve = HilbertCurve(2, 4)
        rng = np.random.default_rng(0)
        for _ in range(20):
            region = random_box_region(curve, 4, rng)
            box = region.boxes[0]
            for iv in box.intervals:
                assert iv.width == 4
                assert 0 <= iv.low and iv.high < curve.side

    def test_rejects_bad_extent(self):
        curve = HilbertCurve(2, 4)
        with pytest.raises(ValueError):
            random_box_region(curve, 0)
        with pytest.raises(ValueError):
            random_box_region(curve, curve.side + 1)

    def test_rejects_non_integer_extent(self):
        curve = HilbertCurve(2, 4)
        with pytest.raises(ValueError):
            random_box_region(curve, 2.5)
        with pytest.raises(ValueError):
            random_box_region(curve, True)

    def test_degenerate_extents(self):
        """extent=1 (point boxes) and extent=side (full space) both work."""
        curve = HilbertCurve(2, 3)
        rng = np.random.default_rng(3)
        point = random_box_region(curve, 1, rng)
        assert all(iv.width == 1 for iv in point.boxes[0].intervals)
        assert cluster_stats(curve, point).covered_indices == 1
        full = random_box_region(curve, curve.side, rng)
        assert cluster_stats(curve, full).covered_indices == curve.size


class TestHilbertVsMorton:
    def test_hilbert_fewer_clusters(self):
        """The clustering claim: Hilbert decomposes boxes into fewer segments."""
        h = HilbertCurve(2, 6)
        m = MortonCurve(2, 6)
        h_count = average_cluster_count(h, extent=8, samples=40, rng=1)
        m_count = average_cluster_count(m, extent=8, samples=40, rng=1)
        assert h_count < m_count

    def test_hilbert_better_locality(self):
        h = HilbertCurve(2, 6)
        m = MortonCurve(2, 6)
        assert locality_ratio(h, window=4, samples=200, rng=2) < locality_ratio(
            m, window=4, samples=200, rng=2
        )

    def test_locality_window_too_large(self):
        with pytest.raises(ValueError):
            locality_ratio(HilbertCurve(2, 2), window=100)


class TestCurveComparison:
    def test_all_families_reported(self):
        from repro.sfc.analysis import curve_comparison

        table = curve_comparison(dims=2, order=5, extent=6, samples=20, rng=0)
        assert set(table) == set(CURVES)
        for row in table.values():
            assert row["mean_clusters"] >= 1
            assert row["locality"] > 0

    def test_moon_ordering(self):
        from repro.sfc.analysis import curve_comparison

        table = curve_comparison(dims=2, order=6, extent=8, samples=30, rng=1)
        assert (
            table["hilbert"]["mean_clusters"]
            <= table["gray"]["mean_clusters"]
            <= table["zorder"]["mean_clusters"]
        )

    def test_tiny_order_does_not_raise(self):
        """Order-1 curves (4 cells in 2-D) used to hit out-of-range extents
        and windows; the comparison must clamp and still report."""
        from repro.sfc.analysis import curve_comparison

        table = curve_comparison(dims=2, order=1, extent=8, samples=5, rng=2)
        assert set(table) == set(CURVES)
        for row in table.values():
            assert row["mean_clusters"] >= 1
            assert row["locality"] >= 0

    def test_region_class_comparison(self):
        from repro.sfc.analysis import region_class_comparison

        classes = {
            "point": [Region.from_bounds([(3, 3), (5, 5)])],
            "box": [
                Region.from_bounds([(0, 7), (0, 7)]),
                Region.from_bounds([(2, 9), (4, 11)]),
            ],
        }
        table = region_class_comparison(2, 4, classes)
        assert set(table) == set(CURVES)
        for rows in table.values():
            assert set(rows) == {"point", "box"}
            assert rows["point"] == 1.0
            assert rows["box"] >= 1.0


class TestMakeCurve:
    def test_registry(self):
        assert isinstance(make_curve("hilbert", 2, 3), HilbertCurve)
        assert isinstance(make_curve("zorder", 2, 3), MortonCurve)

    def test_unknown(self):
        with pytest.raises(ConfigError) as exc:
            make_curve("peano", 2, 3)
        # The message must name the valid families, like the store registry.
        for name in sorted(CURVES):
            assert name in str(exc.value)
