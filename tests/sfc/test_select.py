"""The curve registry, process defaults, and the adaptive selector."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.keywords import KeywordSpace, WordDimension
from repro.sfc import (
    CURVES,
    CurveChoice,
    GrayCurve,
    HilbertCurve,
    MortonCurve,
    OnionCurve,
    Region,
    get_default_curve,
    make_curve,
    sample_box_regions,
    select_curve,
    set_default_curve,
)
from repro.sfc.select import _exactness_shift, _rescale_region


@pytest.fixture(autouse=True)
def _reset_default():
    yield
    set_default_curve(None)


class TestRegistry:
    def test_registry_names(self):
        assert set(CURVES) == {"hilbert", "zorder", "gray", "onion"}

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("hilbert", HilbertCurve),
            ("zorder", MortonCurve),
            ("gray", GrayCurve),
            ("onion", OnionCurve),
        ],
    )
    def test_by_name(self, name, cls):
        curve = make_curve(name, 2, 4)
        assert type(curve) is cls
        assert curve.name == name
        assert (curve.dims, curve.order) == (2, 4)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigError) as exc:
            make_curve("peano", 2, 4)
        message = str(exc.value)
        assert "peano" in message
        for name in sorted(CURVES):
            assert name in message


class TestDefaults:
    def test_builtin_default_is_hilbert(self, monkeypatch):
        monkeypatch.delenv("REPRO_CURVE", raising=False)
        assert get_default_curve() == "hilbert"

    def test_env_variable_selects_family(self, monkeypatch):
        monkeypatch.setenv("REPRO_CURVE", "onion")
        assert get_default_curve() == "onion"

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CURVE", "zorder")
        set_default_curve("gray")
        assert get_default_curve() == "gray"
        set_default_curve(None)  # reset: env visible again
        assert get_default_curve() == "zorder"

    def test_set_default_validates(self):
        with pytest.raises(ConfigError):
            set_default_curve("bogus")

    def test_set_default_accepts_auto(self):
        set_default_curve("auto")
        assert get_default_curve() == "auto"

    def test_system_uses_default(self, monkeypatch):
        from repro.core.system import SquidSystem

        monkeypatch.delenv("REPRO_CURVE", raising=False)
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=6)
        set_default_curve("onion")
        system = SquidSystem.create(space, n_nodes=4, seed=3)
        assert isinstance(system.curve, OnionCurve)

    def test_default_does_not_disturb_ring_ids(self, monkeypatch):
        """Switching the default family must not consume extra seed draws:
        node identifiers stay bit-identical across curve choices."""
        from repro.core.system import SquidSystem

        monkeypatch.delenv("REPRO_CURVE", raising=False)
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=6)
        baseline = SquidSystem.create(space, n_nodes=5, seed=9)
        set_default_curve("onion")
        other = SquidSystem.create(space, n_nodes=5, seed=9)
        assert baseline.overlay.node_ids() == other.overlay.node_ids()


class TestExactness:
    def test_aligned_region_coarsens(self):
        region = Region.from_bounds([(0, 7), (8, 15)])
        assert _exactness_shift(region, 4) == 3

    def test_unaligned_region_does_not(self):
        region = Region.from_bounds([(1, 6), (0, 15)])
        assert _exactness_shift(region, 4) == 0

    def test_rescale_round_trips(self):
        region = Region.from_bounds([(0, 7), (8, 15)])
        down = _rescale_region(region, -3)
        assert down.boxes[0].intervals[0].low == 0
        assert down.boxes[0].intervals[0].high == 0
        assert _rescale_region(down, 3) == region


class TestSampleBoxRegions:
    def test_shape_and_seeding(self):
        a = sample_box_regions(2, 6, samples=4, rng=11)
        b = sample_box_regions(2, 6, samples=4, rng=11)
        assert a == b
        assert len(a) == 12  # 3 default extents x 4 samples
        for region in a:
            assert region.dims == 2
            for iv in region.boxes[0].intervals:
                assert 0 <= iv.low <= iv.high < 64


class TestSelectCurve:
    def _sample(self):
        return sample_box_regions(2, 6, samples=6, rng=42)

    def test_returns_choice_with_all_scores(self):
        choice = select_curve(self._sample(), 2, 6)
        assert isinstance(choice, CurveChoice)
        assert choice.name in CURVES
        assert choice.order == 6
        assert set(choice.scores) == {(name, 6) for name in CURVES}
        assert choice.score == min(choice.scores.values())

    def test_box_workload_prefers_hilbert(self):
        """On random cube queries the Hilbert curve clusters best (Moon)."""
        choice = select_curve(self._sample(), 2, 6)
        assert choice.name == "hilbert"

    def test_make_instantiates_winner(self):
        choice = select_curve(self._sample(), 2, 6)
        curve = choice.make(2)
        assert curve.name == choice.name
        assert curve.order == choice.order

    def test_empty_sample_falls_back_to_default_workload(self):
        choice = select_curve([], 2, 6, rng=7)
        assert choice.name in CURVES
        assert choice.order == 6

    def test_restricted_candidate_families(self):
        choice = select_curve(self._sample(), 2, 6, curves=["zorder", "gray"])
        assert choice.name in {"zorder", "gray"}

    def test_unknown_candidate_family(self):
        with pytest.raises(ConfigError):
            select_curve(self._sample(), 2, 6, curves=["peano"])

    def test_dims_mismatch(self):
        region = Region.from_bounds([(0, 3), (0, 3), (0, 3)])
        with pytest.raises(ConfigError):
            select_curve([region], 2, 6)

    def test_coarser_order_admitted_when_aligned(self):
        """Block-aligned samples admit coarser orders, which always win:
        same answers, fewer cells, fewer clusters."""
        aligned = [
            Region.from_bounds([(0, 31), (32, 63)]),
            Region.from_bounds([(32, 63), (0, 31)]),
        ]
        choice = select_curve(aligned, 2, 6, orders=[1, 2, 6])
        assert choice.order == 1
        # Unaligned samples pin the order even when coarser ones are offered.
        pinned = select_curve([Region.from_bounds([(1, 6), (0, 63)])], 2, 6, orders=[1, 6])
        assert pinned.order == 6

    def test_point_workload_ties_break_by_preference(self):
        """Point queries cost one cluster under every family; the paper's
        default wins the tie."""
        points = [Region.from_bounds([(3, 3), (5, 5)])]
        choice = select_curve(points, 2, 6)
        assert choice.name == "hilbert"


class TestAutoCreate:
    def test_auto_with_query_sample(self):
        from repro.core.system import SquidSystem

        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=6)
        system = SquidSystem.create(
            space,
            n_nodes=4,
            curve="auto",
            seed=5,
            curve_sample=["(apple, banana)", "(ap*, b*)"],
        )
        assert system.curve.name in CURVES
        assert system.curve.order == 6
        result = system.query("(ap*, banana)")
        assert result.stats.messages >= 0

    def test_auto_without_sample_uses_seeded_boxes(self):
        from repro.core.system import SquidSystem

        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=6)
        one = SquidSystem.create(space, n_nodes=4, curve="auto", seed=5)
        two = SquidSystem.create(space, n_nodes=4, curve="auto", seed=5)
        assert one.curve.name == two.curve.name
        assert one.overlay.node_ids() == two.overlay.node_ids()

    def test_auto_accepts_region_sample(self):
        from repro.core.system import SquidSystem

        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=6)
        sample = [Region.from_bounds([(0, 15), (0, 63)])]
        system = SquidSystem.create(
            space, n_nodes=4, curve="auto", seed=5, curve_sample=sample
        )
        assert system.curve.name in CURVES
