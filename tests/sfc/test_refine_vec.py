"""Property tests: the NumPy refinement kernel ≡ the scalar path.

The vectorized kernel (:mod:`repro.sfc.refine_vec`) must be *structurally*
identical to the scalar refinement — same clusters, same piece lists, same
run splitting, ``min_index`` clipping, and FullRange coalescing — for every
curve family, geometry, and region.  These tests compare the two paths on
randomized inputs (hypothesis) and on targeted fixtures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SFCError
from repro.sfc import CURVES as CURVE_REGISTRY
from repro.sfc.clusters import (
    clusters_at_level,
    count_clusters_per_level,
    refine_cluster,
    refine_level,
    resolve_clusters,
    root_cluster,
    vectorized_refinement,
)
from repro.sfc.hilbert import HilbertCurve
from repro.sfc.refine_vec import (
    curve_table,
    refine_clusters_vec,
    resolve_ranges_vec,
    supports_vectorized,
)
from repro.sfc.regions import Box, Region

# Every registered family must satisfy scalar ≡ vectorized, so derive the
# sweep from the registry rather than a hand-maintained list.
CURVES = [cls for _, cls in sorted(CURVE_REGISTRY.items())]
GEOMETRIES = [(1, 8), (2, 6), (2, 8), (3, 5), (4, 3)]


def region_strategy(dims: int, order: int, max_boxes: int = 2):
    side = 1 << order

    @st.composite
    def _region(draw):
        n_boxes = draw(st.integers(1, max_boxes))
        boxes = []
        for _ in range(n_boxes):
            bounds = []
            for _ in range(dims):
                a = draw(st.integers(0, side - 1))
                b = draw(st.integers(0, side - 1))
                bounds.append((min(a, b), max(a, b)))
            boxes.append(Box.from_bounds(bounds))
        return Region(tuple(boxes))

    return _region()


@pytest.mark.parametrize("curve_cls", CURVES)
@pytest.mark.parametrize("dims,order", GEOMETRIES)
class TestScalarEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_resolve_identical(self, curve_cls, dims, order, data):
        curve = curve_cls(dims, order)
        region = data.draw(region_strategy(dims, order))
        with vectorized_refinement(False):
            scalar = resolve_clusters(curve, region)
        with vectorized_refinement(True):
            vectorized = resolve_clusters(curve, region)
        assert scalar == vectorized

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_resolve_capped_identical(self, curve_cls, dims, order, data):
        curve = curve_cls(dims, order)
        region = data.draw(region_strategy(dims, order))
        max_level = data.draw(st.integers(0, order))
        with vectorized_refinement(False):
            scalar = resolve_clusters(curve, region, max_level=max_level)
        with vectorized_refinement(True):
            vectorized = resolve_clusters(curve, region, max_level=max_level)
        assert scalar == vectorized

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_clusters_at_level_identical(self, curve_cls, dims, order, data):
        """Structural equality: same Cluster dataclasses, piece by piece."""
        curve = curve_cls(dims, order)
        region = data.draw(region_strategy(dims, order))
        level = data.draw(st.integers(0, order))
        with vectorized_refinement(False):
            scalar = clusters_at_level(curve, region, level)
        with vectorized_refinement(True):
            vectorized = clusters_at_level(curve, region, level)
        assert scalar == vectorized

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_counts_per_level_identical(self, curve_cls, dims, order, data):
        curve = curve_cls(dims, order)
        region = data.draw(region_strategy(dims, order))
        with vectorized_refinement(False):
            scalar = count_clusters_per_level(curve, region)
        with vectorized_refinement(True):
            vectorized = count_clusters_per_level(curve, region)
        assert scalar == vectorized


class TestMinIndexClipping:
    """The engine's trim semantics must survive vectorization exactly."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_refine_with_min_index_identical(self, data):
        curve = HilbertCurve(2, 6)
        region = data.draw(region_strategy(2, 6))
        min_index = data.draw(st.integers(0, curve.size - 1))
        root = root_cluster(curve, region)
        # Walk two levels so clusters carry mixed FullRange/Cell pieces.
        with vectorized_refinement(False):
            level1 = refine_cluster(curve, root, region)
            scalar = [
                refine_cluster(curve, c, region, min_index=min_index) for c in level1
            ]
        vectorized = refine_clusters_vec(curve, level1, region, min_index=min_index)
        assert scalar == vectorized


class TestBatchedEntryPoints:
    def test_refine_level_matches_per_cluster(self):
        curve = HilbertCurve(2, 8)
        region = Region.from_bounds([(10, 200), (30, 170)])
        clusters = clusters_at_level(curve, region, 3)
        with vectorized_refinement(False):
            expected = []
            for c in clusters:
                if c.is_resolved:
                    expected.append(type(c)(level=c.level + 1, pieces=c.pieces))
                else:
                    expected.extend(refine_cluster(curve, c, region))
        batched = refine_level(curve, clusters, region)
        assert batched == expected

    def test_resolve_ranges_vec_direct(self):
        curve = HilbertCurve(2, 8)
        region = Region.from_bounds([(3, 90), (17, 201)])
        with vectorized_refinement(False):
            scalar = resolve_clusters(curve, region)
        assert resolve_ranges_vec(curve, region) == scalar

    def test_full_region_resolves_to_whole_curve(self):
        curve = HilbertCurve(2, 8)
        region = Region.from_bounds([(0, curve.side - 1)] * 2)
        assert resolve_ranges_vec(curve, region) == [(0, curve.size - 1)]

    def test_point_region(self):
        curve = HilbertCurve(2, 8)
        region = Region.from_bounds([(7, 7), (101, 101)])
        index = curve.encode((7, 101))
        assert resolve_ranges_vec(curve, region) == [(index, index)]


class TestGating:
    def test_supports_vectorized_tracks_index_width(self):
        assert supports_vectorized(HilbertCurve(2, 10))
        assert not supports_vectorized(HilbertCurve(2, 32))

    def test_wide_curve_raises_from_kernel(self):
        curve = HilbertCurve(2, 32)
        region = Region.from_bounds([(0, 5), (0, 5)])
        with pytest.raises(SFCError):
            refine_clusters_vec(curve, [root_cluster(curve, region)], region)
        with pytest.raises(SFCError):
            resolve_ranges_vec(curve, region)

    def test_wide_curve_falls_back_to_scalar(self):
        """index_bits > 63 must still resolve correctly (scalar fallback)."""
        curve = HilbertCurve(2, 32)
        region = Region.from_bounds([(0, 3), (0, 3)])
        with vectorized_refinement(True):
            ranges = resolve_clusters(curve, region, max_level=4)
        with vectorized_refinement(False):
            assert ranges == resolve_clusters(curve, region, max_level=4)

    def test_refine_at_max_order_raises(self):
        curve = HilbertCurve(2, 3)
        region = Region.from_bounds([(0, 3), (0, 3)])
        clusters = clusters_at_level(curve, region, curve.order)
        unresolved = [c for c in clusters if not c.is_resolved]
        if unresolved:  # pragma: no branch - region chosen to leave cells
            with pytest.raises(SFCError):
                refine_clusters_vec(curve, unresolved, region)


class TestCurveTable:
    @pytest.mark.parametrize("curve_cls", CURVES)
    def test_table_matches_children(self, curve_cls):
        curve = curve_cls(2, 4)
        table = curve_table(curve)
        assert table.labels.shape == table.next_ids.shape
        assert table.labels.shape[1] == 1 << curve.dims
        for i, state in enumerate(table.states):
            for rank, (label, child) in enumerate(curve.children(state)):
                assert table.labels[i, rank] == label
                assert table.states[table.next_ids[i, rank]] == child

    def test_table_cached_per_curve(self):
        curve = HilbertCurve(2, 5)
        assert curve_table(curve) is curve_table(curve)

    def test_hilbert_state_count_bound(self):
        curve = HilbertCurve(3, 4)
        table = curve_table(curve)
        assert len(table.states) <= (1 << curve.dims) * curve.dims
        assert np.all(table.next_ids < len(table.states))
