"""Tests for query regions (intervals, boxes, unions)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError
from repro.sfc.regions import Box, Containment, Interval, Region, full_region


class TestInterval:
    def test_contains(self):
        iv = Interval(2, 5)
        assert iv.contains(2) and iv.contains(5) and iv.contains(3)
        assert not iv.contains(1) and not iv.contains(6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 2)

    def test_point_interval(self):
        iv = Interval(3, 3)
        assert iv.contains(3)
        assert iv.width == 1

    def test_overlaps(self):
        iv = Interval(2, 5)
        assert iv.overlaps(5, 9)
        assert iv.overlaps(0, 2)
        assert iv.overlaps(3, 4)
        assert not iv.overlaps(6, 9)
        assert not iv.overlaps(0, 1)

    def test_contains_interval(self):
        iv = Interval(2, 5)
        assert iv.contains_interval(2, 5)
        assert iv.contains_interval(3, 4)
        assert not iv.contains_interval(1, 5)
        assert not iv.contains_interval(2, 6)

    @given(
        st.integers(0, 100),
        st.integers(0, 100),
        st.integers(0, 100),
        st.integers(0, 100),
    )
    def test_overlap_symmetric_with_containment(self, a, b, c, d):
        lo1, hi1 = sorted((a, b))
        lo2, hi2 = sorted((c, d))
        iv = Interval(lo1, hi1)
        if iv.contains_interval(lo2, hi2):
            assert iv.overlaps(lo2, hi2)


class TestBox:
    def test_from_bounds(self):
        box = Box.from_bounds([(0, 3), (2, 5)])
        assert box.dims == 2
        assert box.volume == 16

    def test_contains_point(self):
        box = Box.from_bounds([(0, 3), (2, 5)])
        assert box.contains_point((0, 2))
        assert box.contains_point((3, 5))
        assert not box.contains_point((4, 3))

    def test_contains_point_wrong_dims(self):
        box = Box.from_bounds([(0, 3)])
        with pytest.raises(DimensionMismatchError):
            box.contains_point((1, 2))

    def test_classify_cell(self):
        box = Box.from_bounds([(2, 5), (2, 5)])
        assert box.classify_cell((3, 3), (4, 4)) is Containment.FULL
        assert box.classify_cell((0, 0), (1, 1)) is Containment.DISJOINT
        assert box.classify_cell((0, 0), (3, 3)) is Containment.PARTIAL
        assert box.classify_cell((2, 2), (5, 5)) is Containment.FULL

    def test_classify_cell_touching_edge(self):
        box = Box.from_bounds([(2, 5)])
        assert box.classify_cell((5,), (6,)) is Containment.PARTIAL
        assert box.classify_cell((6,), (7,)) is Containment.DISJOINT


class TestRegion:
    def test_needs_boxes(self):
        with pytest.raises(ValueError):
            Region(())

    def test_mixed_dims_rejected(self):
        with pytest.raises(DimensionMismatchError):
            Region((Box.from_bounds([(0, 1)]), Box.from_bounds([(0, 1), (0, 1)])))

    def test_union_contains(self):
        region = Region(
            (Box.from_bounds([(0, 1), (0, 1)]), Box.from_bounds([(6, 7), (6, 7)]))
        )
        assert region.contains_point((0, 0))
        assert region.contains_point((7, 7))
        assert not region.contains_point((3, 3))

    def test_union_classify(self):
        region = Region(
            (Box.from_bounds([(0, 3), (0, 3)]), Box.from_bounds([(4, 7), (4, 7)]))
        )
        assert region.classify_cell((0, 0), (3, 3)) is Containment.FULL
        assert region.classify_cell((4, 4), (7, 7)) is Containment.FULL
        assert region.classify_cell((0, 4), (3, 7)) is Containment.DISJOINT
        assert region.classify_cell((0, 0), (7, 7)) is Containment.PARTIAL

    def test_conservative_union_classification_is_safe(self):
        """A cell covered only jointly by two boxes is PARTIAL (refined, not dropped)."""
        region = Region((Box.from_bounds([(0, 3)]), Box.from_bounds([(4, 7)])))
        assert region.classify_cell((0,), (7,)) is Containment.PARTIAL

    def test_full_region(self):
        region = full_region(2, 3)
        assert region.classify_cell((0, 0), (7, 7)) is Containment.FULL
        assert region.contains_point((7, 0))

    def test_volume_upper_bound(self):
        region = Region(
            (Box.from_bounds([(0, 1), (0, 1)]), Box.from_bounds([(2, 3), (2, 3)]))
        )
        assert region.volume_upper_bound == 8


class TestClassificationConsistency:
    @given(st.data())
    def test_classification_agrees_with_pointwise(self, data):
        side = 16
        lo1 = data.draw(st.integers(0, side - 1))
        hi1 = data.draw(st.integers(lo1, side - 1))
        lo2 = data.draw(st.integers(0, side - 1))
        hi2 = data.draw(st.integers(lo2, side - 1))
        region = Region.from_bounds([(lo1, hi1), (lo2, hi2)])
        clo1 = data.draw(st.integers(0, side - 2))
        chi1 = data.draw(st.integers(clo1, side - 1))
        clo2 = data.draw(st.integers(0, side - 2))
        chi2 = data.draw(st.integers(clo2, side - 1))
        relation = region.classify_cell((clo1, clo2), (chi1, chi2))
        points_inside = [
            region.contains_point((x, y))
            for x in range(clo1, chi1 + 1)
            for y in range(clo2, chi2 + 1)
        ]
        if relation is Containment.FULL:
            assert all(points_inside)
        elif relation is Containment.DISJOINT:
            assert not any(points_inside)
        else:
            assert any(points_inside) and not all(points_inside)
