"""Tests for the Gray-coded curve (the middle comparison mapping)."""

import numpy as np
import pytest

from repro.sfc import GrayCurve, HilbertCurve, MortonCurve, Region, make_curve, resolve_clusters
from repro.sfc.analysis import average_cluster_count


class TestRoundTrip:
    @pytest.mark.parametrize("dims,order", [(1, 4), (2, 4), (3, 3)])
    def test_exhaustive_bijection(self, dims, order):
        c = GrayCurve(dims, order)
        points = [c.decode(i) for i in range(c.size)]
        assert len(set(points)) == c.size
        for i, p in enumerate(points):
            assert c.encode(p) == i

    def test_registry(self):
        assert isinstance(make_curve("gray", 2, 3), GrayCurve)


class TestSiblingAdjacency:
    def test_consecutive_siblings_share_a_face(self):
        """Within one parent subcube, curve-consecutive cells are neighbors."""
        c = GrayCurve(3, 1)  # one level: all 8 cells are siblings
        for i in range(c.size - 1):
            a, b = c.decode(i), c.decode(i + 1)
            assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    def test_adjacency_breaks_across_subcubes(self):
        """Unlike Hilbert, transitions between subcubes can jump."""
        c = GrayCurve(2, 3)
        jumps = 0
        for i in range(c.size - 1):
            a, b = c.decode(i), c.decode(i + 1)
            if sum(abs(x - y) for x, y in zip(a, b)) > 1:
                jumps += 1
        assert jumps > 0

    def test_fewer_jumps_than_morton(self):
        gray, morton = GrayCurve(2, 4), MortonCurve(2, 4)

        def jumps(curve):
            return sum(
                1
                for i in range(curve.size - 1)
                if sum(
                    abs(x - y) for x, y in zip(curve.decode(i), curve.decode(i + 1))
                )
                > 1
            )

        assert jumps(gray) < jumps(morton)


class TestClusterOrdering:
    def test_moon_et_al_ordering(self):
        """Mean clusters per box query: hilbert <= gray <= zorder."""
        h = average_cluster_count(HilbertCurve(2, 6), extent=8, samples=40, rng=0)
        g = average_cluster_count(GrayCurve(2, 6), extent=8, samples=40, rng=0)
        m = average_cluster_count(MortonCurve(2, 6), extent=8, samples=40, rng=0)
        assert h <= g <= m
        assert h < m  # strict at the ends

    def test_resolve_clusters_matches_brute_force(self):
        curve = GrayCurve(2, 4)
        rng = np.random.default_rng(3)
        for _ in range(15):
            a, b = sorted(rng.integers(0, curve.side, size=2))
            c, d = sorted(rng.integers(0, curve.side, size=2))
            region = Region.from_bounds([(int(a), int(b)), (int(c), int(d))])
            got = resolve_clusters(curve, region)
            want = []
            start = None
            for i in range(curve.size):
                if region.contains_point(curve.decode(i)):
                    if start is None:
                        start = i
                elif start is not None:
                    want.append((start, i - 1))
                    start = None
            if start is not None:
                want.append((start, curve.size - 1))
            assert got == want


class TestEndToEnd:
    def test_squid_on_gray_curve_is_exact(self):
        from repro import KeywordSpace, SquidSystem, WordDimension

        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=8)
        system = SquidSystem.create(space, n_nodes=24, curve="gray", seed=5)
        rng = np.random.default_rng(6)
        words = ["alpha", "beta", "gamma", "delta", "algo", "altair", "gam"]
        for _ in range(120):
            system.publish(
                (words[rng.integers(len(words))], words[rng.integers(len(words))])
            )
        for q in ["(al*, *)", "(*, *)", "(gamma, delta)"]:
            got = sorted(map(id, system.query(q, rng=7).matches))
            want = sorted(map(id, system.brute_force_matches(q)))
            assert got == want
