"""Property and unit tests for the Hilbert curve implementation.

These cover the mathematical properties the paper relies on (§3.2):
bijectivity, adjacency (continuity of the curve), digital causality, and
locality preservation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    CoordinateRangeError,
    DimensionMismatchError,
    IndexRangeError,
)
from repro.sfc.hilbert import HilbertCurve, HilbertState, _transition_table


def curve_params():
    return st.sampled_from([(1, 4), (2, 2), (2, 4), (3, 2), (3, 3), (4, 2), (5, 1)])


class TestConstruction:
    def test_attributes(self):
        c = HilbertCurve(3, 4)
        assert c.dims == 3
        assert c.order == 4
        assert c.index_bits == 12
        assert c.size == 4096
        assert c.side == 16

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            HilbertCurve(0, 4)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            HilbertCurve(2, 0)


class TestRoundTrip:
    @pytest.mark.parametrize("dims,order", [(1, 3), (2, 3), (3, 2), (4, 2)])
    def test_exhaustive_bijection(self, dims, order):
        c = HilbertCurve(dims, order)
        points = [c.decode(i) for i in range(c.size)]
        assert len(set(points)) == c.size
        for i, p in enumerate(points):
            assert c.encode(p) == i

    @given(curve_params(), st.data())
    @settings(max_examples=60)
    def test_random_roundtrip(self, params, data):
        dims, order = params
        c = HilbertCurve(dims, order)
        point = tuple(
            data.draw(st.integers(min_value=0, max_value=c.side - 1)) for _ in range(dims)
        )
        assert c.decode(c.encode(point)) == point

    def test_large_order_roundtrip(self):
        c = HilbertCurve(2, 40)  # 80-bit index: exceeds the int64 fast path.
        point = (2**39 + 12345, 2**38 + 999)
        assert c.decode(c.encode(point)) == point


class TestAdjacency:
    @pytest.mark.parametrize("dims,order", [(1, 4), (2, 4), (3, 3), (4, 2)])
    def test_consecutive_indices_are_neighbors(self, dims, order):
        c = HilbertCurve(dims, order)
        prev = c.decode(0)
        for i in range(1, c.size):
            cur = c.decode(i)
            dist = sum(abs(a - b) for a, b in zip(prev, cur))
            assert dist == 1, f"break between index {i-1} and {i}"
            prev = cur

    @given(st.integers(min_value=0, max_value=2**18 - 2))
    @settings(max_examples=100)
    def test_adjacency_sampled_large(self, index):
        c = HilbertCurve(3, 6)
        a = c.decode(index)
        b = c.decode(index + 1)
        assert sum(abs(x - y) for x, y in zip(a, b)) == 1


class TestDigitalCausality:
    @pytest.mark.parametrize("dims,order", [(2, 4), (3, 3)])
    def test_subcube_shares_prefix(self, dims, order):
        """All indices in a level-l subcube agree on their first l*d bits."""
        c = HilbertCurve(dims, order)
        for level in range(1, order + 1):
            span_bits = (order - level) * dims
            seen: dict[int, tuple] = {}
            for i in range(c.size):
                prefix = i >> span_bits
                coords_prefix = tuple(x >> (order - level) for x in c.decode(i))
                if prefix in seen:
                    assert seen[prefix] == coords_prefix
                else:
                    seen[prefix] = coords_prefix

    def test_first_subcube_maps_to_first_segment(self):
        """Paper §3.2: the k-th order d-dim curve maps one subcube to [0, 2^(kd)/2^d - 1]."""
        c = HilbertCurve(2, 3)
        first_segment_points = {c.decode(i) for i in range(c.size // 4)}
        # Those 16 points must form one quadrant (all coords share top bit).
        top_bits = {(x >> 2, y >> 2) for x, y in first_segment_points}
        assert len(top_bits) == 1


class TestLocality:
    def test_nearby_indices_nearby_points(self):
        c = HilbertCurve(2, 6)
        rng = np.random.default_rng(0)
        starts = rng.integers(0, c.size - 2, size=300)
        for s in starts:
            a = c.decode(int(s))
            b = c.decode(int(s) + 1)
            assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    def test_beats_random_placement(self):
        """Mean L1 distance of curve-adjacent cells far below random baseline."""
        c = HilbertCurve(2, 5)
        dists = []
        for i in range(c.size - 1):
            a, b = c.decode(i), c.decode(i + 1)
            dists.append(sum(abs(x - y) for x, y in zip(a, b)))
        assert np.mean(dists) == 1.0  # exact for Hilbert
        # Random placement baseline is ~ (2/3) * side per dim; vastly larger.
        assert np.mean(dists) < c.side / 3


class TestChildren:
    def test_children_count(self):
        c = HilbertCurve(3, 2)
        kids = c.children(c.root_state())
        assert len(kids) == 8

    def test_labels_are_permutation(self):
        c = HilbertCurve(3, 2)
        labels = [label for label, _ in c.children(c.root_state())]
        assert sorted(labels) == list(range(8))

    def test_adjacent_children_share_face(self):
        """Consecutive child labels differ in exactly one bit (Gray property)."""
        c = HilbertCurve(4, 1)
        labels = [label for label, _ in c.children(c.root_state())]
        for a, b in zip(labels, labels[1:]):
            assert bin(a ^ b).count("1") == 1

    @pytest.mark.parametrize("dims,order", [(2, 3), (3, 2)])
    def test_tree_walk_reproduces_decode(self, dims, order):
        """Recursively expanding children must reproduce the full mapping."""
        c = HilbertCurve(dims, order)

        def walk(level, prefix, coords, state, out):
            if level == c.order:
                out.append((prefix, tuple(coords)))
                return
            for rank, (label, child_state) in enumerate(c.children(state)):
                nc = [(coords[j] << 1) | ((label >> j) & 1) for j in range(c.dims)]
                walk(level + 1, (prefix << c.dims) | rank, nc, child_state, out)

        out: list = []
        walk(0, 0, [0] * c.dims, c.root_state(), out)
        assert len(out) == c.size
        for h, p in out:
            assert c.decode(h) == p

    def test_transition_table_closed(self):
        """Every state reachable from the root has a table entry."""
        table = _transition_table(3)
        for rows in table.values():
            for _, child in rows:
                assert (child.entry, child.direction) in table


class TestValidation:
    def test_encode_wrong_dims(self):
        with pytest.raises(DimensionMismatchError):
            HilbertCurve(2, 3).encode((1, 2, 3))

    def test_encode_out_of_range(self):
        with pytest.raises(CoordinateRangeError):
            HilbertCurve(2, 3).encode((8, 0))

    def test_encode_negative(self):
        with pytest.raises(CoordinateRangeError):
            HilbertCurve(2, 3).encode((-1, 0))

    def test_decode_out_of_range(self):
        with pytest.raises(IndexRangeError):
            HilbertCurve(2, 3).decode(64)

    def test_decode_negative(self):
        with pytest.raises(IndexRangeError):
            HilbertCurve(2, 3).decode(-1)


class TestHilbertState:
    def test_accessors(self):
        s = HilbertState(0b10, 1)
        assert s.entry == 0b10
        assert s.direction == 1

    def test_hashable(self):
        assert len({HilbertState(0, 0), HilbertState(0, 0), HilbertState(1, 0)}) == 2


class TestIndexRangeOfCell:
    def test_root_cell(self):
        c = HilbertCurve(2, 3)
        assert c.index_range_of_cell(0, 0) == (0, 63)

    def test_leaf_cell(self):
        c = HilbertCurve(2, 3)
        assert c.index_range_of_cell(3, 17) == (17, 17)

    def test_mid_level(self):
        c = HilbertCurve(2, 3)
        assert c.index_range_of_cell(1, 2) == (32, 47)

    def test_rejects_bad_level(self):
        c = HilbertCurve(2, 3)
        with pytest.raises(ValueError):
            c.index_range_of_cell(4, 0)
