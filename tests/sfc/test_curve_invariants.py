"""Shared invariant suite: every registered curve family, one set of tests.

Any curve added to ``repro.sfc.CURVES`` is automatically covered here —
bijectivity, digital causality, the children-in-curve-order state protocol,
and scalar↔vectorized bulk equivalence.  Family-specific properties (e.g.
Hilbert adjacency) stay in the per-family test modules; this file holds
exactly the invariants the cluster machinery and both engines rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc import CURVES
from repro.sfc.onioncurve import OnionCurve, OnionState, _transition_table

CURVE_ITEMS = sorted(CURVES.items())
CURVE_IDS = [name for name, _ in CURVE_ITEMS]
CURVE_CLASSES = [cls for _, cls in CURVE_ITEMS]


def curve_params():
    return st.sampled_from([(1, 4), (2, 2), (2, 4), (3, 2), (3, 3), (4, 2), (5, 1)])


@pytest.mark.parametrize("cls", CURVE_CLASSES, ids=CURVE_IDS)
class TestRoundTrip:
    @pytest.mark.parametrize("dims,order", [(1, 3), (2, 3), (3, 2), (4, 2)])
    def test_exhaustive_bijection(self, cls, dims, order):
        c = cls(dims, order)
        points = [c.decode(i) for i in range(c.size)]
        assert len(set(points)) == c.size
        for i, p in enumerate(points):
            assert c.encode(p) == i

    @given(params=curve_params(), data=st.data())
    @settings(max_examples=40)
    def test_random_roundtrip(self, cls, params, data):
        dims, order = params
        c = cls(dims, order)
        point = tuple(
            data.draw(st.integers(min_value=0, max_value=c.side - 1))
            for _ in range(dims)
        )
        assert c.decode(c.encode(point)) == point

    def test_large_order_roundtrip(self, cls):
        c = cls(2, 40)  # 80-bit index: exceeds the int64 fast paths.
        point = (2**39 + 12345, 2**38 + 999)
        assert c.decode(c.encode(point)) == point


@pytest.mark.parametrize("cls", CURVE_CLASSES, ids=CURVE_IDS)
class TestDigitalCausality:
    @pytest.mark.parametrize("dims,order", [(2, 3), (3, 2)])
    def test_subcube_shares_prefix(self, cls, dims, order):
        """All indices in a level-l subcube agree on their first l*d bits."""
        c = cls(dims, order)
        for level in range(1, order + 1):
            span_bits = (order - level) * dims
            seen: dict[int, tuple] = {}
            for i in range(c.size):
                prefix = i >> span_bits
                coords_prefix = tuple(x >> (order - level) for x in c.decode(i))
                if prefix in seen:
                    assert seen[prefix] == coords_prefix
                else:
                    seen[prefix] = coords_prefix


@pytest.mark.parametrize("cls", CURVE_CLASSES, ids=CURVE_IDS)
class TestChildren:
    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    def test_labels_are_permutation_in_every_state(self, cls, dims):
        """Every reachable state enumerates each child label exactly once."""
        c = cls(dims, 2)
        pending = [c.root_state()]
        seen = set()
        while pending:
            state = pending.pop()
            if state in seen:
                continue
            seen.add(state)
            kids = c.children(state)
            assert sorted(label for label, _ in kids) == list(range(1 << dims))
            pending.extend(child for _, child in kids)

    @pytest.mark.parametrize("dims,order", [(2, 3), (3, 2)])
    def test_tree_walk_reproduces_decode(self, cls, dims, order):
        """Recursively expanding children must reproduce the full mapping."""
        c = cls(dims, order)

        def walk(level, prefix, coords, state, out):
            if level == c.order:
                out.append((prefix, tuple(coords)))
                return
            for rank, (label, child_state) in enumerate(c.children(state)):
                nc = [(coords[j] << 1) | ((label >> j) & 1) for j in range(c.dims)]
                walk(level + 1, (prefix << c.dims) | rank, nc, child_state, out)

        out: list = []
        walk(0, 0, [0] * c.dims, c.root_state(), out)
        assert len(out) == c.size
        for h, p in out:
            assert c.decode(h) == p


@pytest.mark.parametrize("cls", CURVE_CLASSES, ids=CURVE_IDS)
class TestBulkEquivalence:
    @pytest.mark.parametrize("dims,order", [(1, 6), (2, 5), (3, 3)])
    def test_encode_many_matches_scalar(self, cls, dims, order):
        c = cls(dims, order)
        rng = np.random.default_rng(7)
        points = rng.integers(0, c.side, size=(128, dims), dtype=np.int64)
        got = c.encode_many(points)
        want = [c.encode(tuple(int(x) for x in row)) for row in points]
        assert [int(i) for i in got] == want

    @pytest.mark.parametrize("dims,order", [(1, 6), (2, 5), (3, 3)])
    def test_decode_many_matches_scalar(self, cls, dims, order):
        c = cls(dims, order)
        rng = np.random.default_rng(8)
        indices = rng.integers(0, c.size, size=128, dtype=np.int64)
        got = c.decode_many(indices)
        for row, index in zip(got, indices):
            assert tuple(int(x) for x in row) == c.decode(int(index))


class TestOnionSpecific:
    """Properties of the hierarchical onion adaptation itself."""

    def test_state_accessors(self):
        s = OnionState(0b10, 1)
        assert s.anchor == 0b10
        assert s.axis == 1

    def test_state_space_is_small(self):
        """At most 2**dims * dims reachable states (the CurveTable bound)."""
        for dims in (1, 2, 3, 4):
            table = _transition_table(dims)
            assert len(table) <= (1 << dims) * max(1, dims)

    def test_children_form_closed_loop(self):
        """The peel visits the subcube corners along a Hamiltonian cycle:
        consecutive children share a face, and so do the last and first."""
        c = OnionCurve(3, 2)
        for state in _transition_table(3):
            labels = [label for label, _ in c.children(OnionState(*state))]
            cycle = labels + [labels[0]]
            for a, b in zip(cycle, cycle[1:]):
                assert bin(a ^ b).count("1") == 1

    def test_clustering_between_hilbert_and_zorder(self):
        """The ablation ordering the experiment reports: onion clusters at
        least as well as Z-order and no better than Hilbert on box queries."""
        from repro.sfc import HilbertCurve, MortonCurve
        from repro.sfc.analysis import average_cluster_count

        kw = dict(extent=8, samples=40, rng=123)
        hilbert = average_cluster_count(HilbertCurve(2, 6), **kw)
        onion = average_cluster_count(OnionCurve(2, 6), **kw)
        zorder = average_cluster_count(MortonCurve(2, 6), **kw)
        assert hilbert <= onion <= zorder
