"""Tests for the Morton (Z-order) comparison curve."""

import numpy as np
import pytest

from repro.sfc.hilbert import HilbertCurve
from repro.sfc.zorder import MortonCurve


class TestRoundTrip:
    @pytest.mark.parametrize("dims,order", [(1, 4), (2, 4), (3, 3)])
    def test_exhaustive_bijection(self, dims, order):
        c = MortonCurve(dims, order)
        points = [c.decode(i) for i in range(c.size)]
        assert len(set(points)) == c.size
        for i, p in enumerate(points):
            assert c.encode(p) == i

    def test_known_values_2d(self):
        c = MortonCurve(2, 2)
        # label bit 0 = dim 0, so index 1 -> x=1 (at the deepest level).
        assert c.decode(0) == (0, 0)
        assert c.decode(1) == (1, 0)
        assert c.decode(2) == (0, 1)
        assert c.decode(3) == (1, 1)


class TestDigitalCausality:
    def test_subcube_shares_prefix(self):
        c = MortonCurve(2, 4)
        level = 2
        span_bits = (c.order - level) * c.dims
        seen = {}
        for i in range(c.size):
            prefix = i >> span_bits
            coords_prefix = tuple(x >> (c.order - level) for x in c.decode(i))
            seen.setdefault(prefix, coords_prefix)
            assert seen[prefix] == coords_prefix


class TestNotAdjacent:
    def test_morton_has_jumps(self):
        """Z-order lacks the adjacency property — that is the point of the ablation."""
        c = MortonCurve(2, 3)
        jumps = 0
        for i in range(c.size - 1):
            a, b = c.decode(i), c.decode(i + 1)
            if sum(abs(x - y) for x, y in zip(a, b)) > 1:
                jumps += 1
        assert jumps > 0

    def test_hilbert_strictly_better_locality(self):
        h, m = HilbertCurve(2, 4), MortonCurve(2, 4)

        def total_dist(curve):
            return sum(
                sum(abs(x - y) for x, y in zip(curve.decode(i), curve.decode(i + 1)))
                for i in range(curve.size - 1)
            )

        assert total_dist(h) < total_dist(m)


class TestVectorized:
    def test_matches_scalar(self):
        c = MortonCurve(3, 8)
        rng = np.random.default_rng(3)
        pts = rng.integers(0, c.side, size=(200, 3))
        vec = c.encode_many(pts)
        assert [c.encode(p) for p in pts] == vec.tolist()


class TestChildren:
    def test_identity_traversal(self):
        c = MortonCurve(2, 3)
        kids = c.children(c.root_state())
        assert [label for label, _ in kids] == list(range(4))
        # All children share the single Morton state.
        assert len({state for _, state in kids}) == 1

    def test_tree_walk_reproduces_decode(self):
        c = MortonCurve(2, 3)

        def walk(level, prefix, coords, state, out):
            if level == c.order:
                out.append((prefix, tuple(coords)))
                return
            for rank, (label, child_state) in enumerate(c.children(state)):
                nc = [(coords[j] << 1) | ((label >> j) & 1) for j in range(c.dims)]
                walk(level + 1, (prefix << c.dims) | rank, nc, child_state, out)

        out: list = []
        walk(0, 0, [0] * c.dims, c.root_state(), out)
        for h, p in out:
            assert c.decode(h) == p
