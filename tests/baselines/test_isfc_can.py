"""Tests for the inverse-SFC-over-CAN baseline (Andrzejak & Xu)."""

import numpy as np
import pytest

from repro.baselines.isfc_can import InverseSfcCanSystem
from repro.errors import KeywordError
from repro.keywords.dimensions import NumericDimension


@pytest.fixture(scope="module")
def system():
    attr = NumericDimension("memory", 0, 4096)
    sys_ = InverseSfcCanSystem(attr, n_nodes=40, bits=12, can_dims=2, rng=0)
    rng = np.random.default_rng(1)
    values = rng.uniform(0, 4096, size=500)
    for v in values:
        sys_.publish(float(v), payload=round(float(v), 1))
    return sys_, sorted(float(v) for v in values)


class TestPublish:
    def test_placement_at_image_owner(self):
        attr = NumericDimension("x", 0, 100)
        sys_ = InverseSfcCanSystem(attr, n_nodes=10, bits=10, rng=2)
        node = sys_.publish(50.0)
        assert node == sys_.overlay.owner(sys_.index_of(50.0))


class TestRangeQueries:
    def test_full_recall(self, system):
        sys_, values = system
        matches, stats = sys_.query_range(1000, 2000)
        want = [v for v in values if 1000 <= v <= 2000]
        assert sorted(v for v, _ in matches) == want
        assert stats.matches == len(want)

    def test_open_ended(self, system):
        sys_, values = system
        matches, _ = sys_.query_range(None, 500)
        assert sorted(v for v, _ in matches) == [v for v in values if v <= 500]
        matches, _ = sys_.query_range(3500, None)
        assert sorted(v for v, _ in matches) == [v for v in values if v >= 3500]

    def test_whole_domain(self, system):
        sys_, values = system
        matches, stats = sys_.query_range(None, None)
        assert len(matches) == len(values)
        assert stats.nodes_visited == len(sys_)

    def test_narrow_range_visits_few_nodes(self, system):
        sys_, _ = system
        _, narrow = sys_.query_range(2000, 2010)
        _, wide = sys_.query_range(0, 4096)
        assert narrow.nodes_visited < wide.nodes_visited

    def test_empty_range_rejected(self, system):
        sys_, _ = system
        with pytest.raises(KeywordError):
            sys_.query_range(100, 50)

    def test_point_range(self, system):
        sys_, values = system
        target = values[len(values) // 2]
        matches, _ = sys_.query_range(target, target)
        assert target in [v for v, _ in matches]

    def test_costs_scale_with_range_image(self, system):
        sys_, _ = system
        _, small = sys_.query_range(100, 200)
        _, large = sys_.query_range(100, 3000)
        assert small.messages <= large.messages

    def test_data_nodes_subset_of_visited(self, system):
        sys_, _ = system
        _, stats = sys_.query_range(500, 1500)
        assert stats.data_nodes <= stats.nodes_visited
