"""Tests for the distributed inverted-index baseline."""

import pytest

from repro.baselines.inverted import InvertedIndexSystem, UnsupportedQueryError
from repro.workloads.documents import DocumentWorkload


@pytest.fixture(scope="module")
def system():
    wl = DocumentWorkload.generate(2, 400, rng=0)
    sys_ = InvertedIndexSystem(wl.space, n_nodes=60, rng=1)
    sys_.publish_many(wl.keys)
    return sys_, wl


class TestPublish:
    def test_publish_costs_one_message_per_keyword(self, system):
        sys_, _ = system
        cost = sys_.publish(("alpha", "beta"))
        assert cost == 2


class TestExactQueries:
    def test_single_keyword_exact(self, system):
        sys_, wl = system
        word = wl.keys[0][0]
        matches, stats = sys_.query(f"({word}, *)", origin=sys_.overlay.node_ids()[0])
        want = {k for k in wl.keys if k[0] == word}
        assert set(matches) >= want
        assert {m for m in matches if m[0] == word} == want
        assert stats.matches == len(matches)

    def test_two_keyword_intersection(self, system):
        sys_, wl = system
        key = wl.keys[0]
        matches, stats = sys_.query(f"({key[0]}, {key[1]})")
        assert key in matches
        assert all(m[0] == key[0] and m[1] == key[1] for m in matches)
        assert stats.nodes_contacted <= 2

    def test_costs_are_logarithmic(self, system):
        sys_, wl = system
        key = wl.keys[5]
        _, stats = sys_.query(f"({key[0]}, {key[1]})")
        import math

        assert stats.hops <= 6 * math.log2(len(sys_.overlay)) + 4
        assert stats.messages <= 4

    def test_entries_transferred_positive(self, system):
        sys_, wl = system
        key = wl.keys[10]
        _, stats = sys_.query(f"({key[0]}, {key[1]})")
        assert stats.entries_transferred >= 1


class TestUnsupported:
    def test_prefix_rejected(self, system):
        sys_, _ = system
        with pytest.raises(UnsupportedQueryError):
            sys_.query("(comp*, *)")

    def test_all_wildcards_rejected(self, system):
        sys_, _ = system
        with pytest.raises(UnsupportedQueryError):
            sys_.query("(*, *)")


class TestPositionFiltering:
    def test_keyword_position_respected(self):
        """A keyword appearing in the 'wrong' dimension must not match."""
        wl = DocumentWorkload.generate(2, 10, rng=3)
        sys_ = InvertedIndexSystem(wl.space, n_nodes=10, rng=4)
        sys_.publish(("alpha", "beta"))
        sys_.publish(("beta", "alpha"))
        matches, _ = sys_.query("(alpha, *)")
        assert matches == [("alpha", "beta")]
