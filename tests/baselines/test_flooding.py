"""Tests for the Gnutella-style flooding baseline."""

import pytest

from repro.errors import WorkloadError
from repro.baselines.flooding import FloodingNetwork
from repro.workloads.documents import DocumentWorkload


@pytest.fixture(scope="module")
def network():
    wl = DocumentWorkload.generate(2, 300, rng=0)
    net = FloodingNetwork(wl.space, n_nodes=100, degree=4, rng=1)
    net.publish_many(wl.keys)
    return net, wl


class TestConstruction:
    def test_graph_is_regular_and_connected(self, network):
        net, _ = network
        degrees = {d for _, d in net.graph.degree()}
        assert degrees == {4}

    def test_validation(self):
        wl = DocumentWorkload.generate(2, 10, rng=2)
        with pytest.raises(WorkloadError):
            FloodingNetwork(wl.space, n_nodes=3, degree=4)
        with pytest.raises(WorkloadError):
            FloodingNetwork(wl.space, n_nodes=7, degree=3)  # odd product


class TestSearch:
    def test_unbounded_flood_full_recall(self, network):
        net, wl = network
        query = f"({wl.keys[0][0]}, *)"
        stats = net.query(query, ttl=None, origin=0)
        assert stats.recall == 1.0
        assert stats.nodes_visited == len(net)

    def test_unbounded_flood_message_cost(self, network):
        """Full recall costs about N * degree messages — the paper's point."""
        net, wl = network
        stats = net.query(f"({wl.keys[0][0]}, *)", ttl=None, origin=0)
        assert stats.messages >= len(net) * 4 * 0.9

    def test_ttl_bounds_cost(self, network):
        net, wl = network
        bounded = net.query(f"({wl.keys[0][0]}, *)", ttl=2, origin=0)
        unbounded = net.query(f"({wl.keys[0][0]}, *)", ttl=None, origin=0)
        assert bounded.messages < unbounded.messages
        assert bounded.nodes_visited < unbounded.nodes_visited

    def test_small_ttl_loses_recall_for_rare_keys(self, network):
        net, wl = network
        # A rare key: published once; a 1-hop flood almost surely misses it.
        rare = wl.keys[-1]
        misses = 0
        for origin in range(20):
            stats = net.query(f"({rare[0]}, {rare[1]})", ttl=1, origin=origin)
            if stats.recall < 1.0:
                misses += 1
        assert misses > 10

    def test_no_matches_recall_is_one(self, network):
        net, _ = network
        stats = net.query("(zzzzz, *)", ttl=None, origin=0)
        assert stats.total_matches == 0
        assert stats.recall == 1.0

    def test_deterministic_given_origin(self, network):
        net, wl = network
        q = f"({wl.keys[0][0]}, *)"
        a = net.query(q, ttl=3, origin=5)
        b = net.query(q, ttl=3, origin=5)
        assert (a.messages, a.matches_found) == (b.messages, b.matches_found)
