"""Tests for the Keyword-Set System baseline (paper ref [7])."""

import pytest

from repro.baselines.inverted import InvertedIndexSystem, UnsupportedQueryError
from repro.baselines.kss import KeywordSetSystem
from repro.errors import EngineError
from repro.workloads.documents import DocumentWorkload


@pytest.fixture(scope="module")
def setup():
    wl = DocumentWorkload.generate(2, 300, rng=0)
    kss = KeywordSetSystem(wl.space, n_nodes=40, set_size=2, rng=1)
    kss.publish_many(wl.keys)
    inverted = InvertedIndexSystem(wl.space, n_nodes=40, rng=1)
    inverted.publish_many(wl.keys)
    return kss, inverted, wl


class TestConstruction:
    def test_set_size_validation(self):
        wl = DocumentWorkload.generate(2, 10, rng=2)
        with pytest.raises(EngineError):
            KeywordSetSystem(wl.space, n_nodes=10, set_size=0)


class TestPublish:
    def test_publish_cost_counts_subsets(self, setup):
        kss, _, _ = setup
        # For a 2-keyword key with set_size 2: 2 singletons + 1 pair = 3.
        assert kss.publish(("alpha", "beta")) == 3

    def test_storage_overhead_exceeds_inverted_index(self, setup):
        kss, inverted, wl = setup
        inverted_entries = sum(
            len(keys)
            for node in inverted.postings.values()
            for keys in node.values()
        )
        assert kss.storage_entries() > inverted_entries


class TestQueries:
    def test_two_keyword_query_exact(self, setup):
        kss, _, wl = setup
        key = wl.keys[0]
        matches, stats = kss.query(f"({key[0]}, {key[1]})")
        want = sorted(k for k in set(wl.keys) if k == key)
        assert matches == want
        assert stats.set_size_used == 2

    def test_single_keyword_query(self, setup):
        kss, _, wl = setup
        word = wl.keys[0][0]
        matches, stats = kss.query(f"({word}, *)")
        want = sorted(set(k for k in wl.keys if k[0] == word))
        assert matches == want
        assert stats.set_size_used == 1

    def test_two_keyword_query_transfers_fewer_entries_than_inverted(self, setup):
        """KSS's point: the pair posting list is pre-intersected."""
        kss, inverted, wl = setup
        totals = {"kss": 0, "inv": 0}
        for key in wl.keys[:20]:
            q = f"({key[0]}, {key[1]})"
            _, kss_stats = kss.query(q)
            _, inv_stats = inverted.query(q)
            totals["kss"] += kss_stats.entries_transferred
            totals["inv"] += inv_stats.entries_transferred
        assert totals["kss"] < totals["inv"]

    def test_constant_message_count(self, setup):
        kss, _, wl = setup
        key = wl.keys[5]
        _, stats = kss.query(f"({key[0]}, {key[1]})")
        assert stats.messages == 2

    def test_partial_keywords_unsupported(self, setup):
        kss, _, _ = setup
        with pytest.raises(UnsupportedQueryError):
            kss.query("(comp*, *)")

    def test_all_wildcards_unsupported(self, setup):
        kss, _, _ = setup
        with pytest.raises(UnsupportedQueryError):
            kss.query("(*, *)")

    def test_position_respected(self):
        wl = DocumentWorkload.generate(2, 10, rng=3)
        kss = KeywordSetSystem(wl.space, n_nodes=10, rng=4)
        kss.publish(("alpha", "beta"))
        kss.publish(("beta", "alpha"))
        matches, _ = kss.query("(alpha, *)")
        assert matches == [("alpha", "beta")]
