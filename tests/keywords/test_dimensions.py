"""Tests for keyword-space dimension types."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeywordError
from repro.keywords.dimensions import (
    CategoricalDimension,
    NumericDimension,
    WordDimension,
)

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12)


class TestWordDimension:
    def setup_method(self):
        self.dim = WordDimension("kw")

    def test_validate_lowercases(self):
        assert self.dim.validate("CompUter") == "computer"

    def test_validate_rejects_empty(self):
        with pytest.raises(KeywordError):
            self.dim.validate("")

    def test_validate_rejects_non_alpha(self):
        with pytest.raises(KeywordError):
            self.dim.validate("comp2ter")

    def test_validate_rejects_non_string(self):
        with pytest.raises(KeywordError):
            self.dim.validate(42)

    def test_encode_extremes(self):
        bits = 10
        assert self.dim.encode("a", bits) == 0
        assert self.dim.encode("z", bits) == (25 << bits) // 26

    def test_encode_in_range(self):
        bits = 16
        for word in ("a", "computer", "zzzzzzzzzz", "network"):
            coord = self.dim.encode(word, bits)
            assert 0 <= coord < (1 << bits)

    @given(words, words)
    @settings(max_examples=200)
    def test_lexicographic_monotone(self, w1, w2):
        """Order of words is weakly preserved by the coordinate mapping."""
        bits = 20
        c1 = self.dim.encode(w1, bits)
        c2 = self.dim.encode(w2, bits)
        if w1 < w2:
            assert c1 <= c2
        elif w1 > w2:
            assert c1 >= c2
        else:
            assert c1 == c2

    @given(words, st.integers(min_value=1, max_value=8))
    @settings(max_examples=200)
    def test_prefix_interval_covers_extensions(self, word, plen):
        """Every word extending a prefix must land inside the prefix interval."""
        bits = 18
        prefix = word[:plen]
        low, high = self.dim.interval_for_prefix(prefix, bits)
        # The word itself extends its prefix.
        coord = self.dim.encode(word[: plen] + word, bits)
        assert low <= coord <= high

    @given(words)
    def test_exact_interval_covers_word(self, word):
        bits = 16
        low, high = self.dim.interval_for_exact(word, bits)
        assert low <= self.dim.encode(word, bits) <= high

    def test_shorter_prefix_wider_interval(self):
        bits = 20
        lo1, hi1 = self.dim.interval_for_prefix("c", bits)
        lo2, hi2 = self.dim.interval_for_prefix("co", bits)
        lo3, hi3 = self.dim.interval_for_prefix("com", bits)
        assert lo1 <= lo2 <= lo3
        assert hi3 <= hi2 <= hi1
        assert (hi1 - lo1) > (hi2 - lo2) > (hi3 - lo3)

    def test_disjoint_prefixes_nearly_disjoint_intervals(self):
        """Adjacent prefixes may share at most the single boundary coordinate
        (quantization); the exactness post-filter removes the spillover."""
        bits = 20
        _, hi_c = self.dim.interval_for_prefix("c", bits)
        lo_d, hi_d = self.dim.interval_for_prefix("d", bits)
        assert hi_c <= lo_d
        # And the bulk of the intervals never overlaps.
        lo_c, _ = self.dim.interval_for_prefix("c", bits)
        assert hi_c - lo_c > 1000 and hi_d - lo_d > 1000

    def test_significant_chars(self):
        # 26**t >= 2**bits  =>  t >= bits / log2(26) (~4.7 bits per char).
        assert WordDimension.significant_chars(5) == 2
        assert WordDimension.significant_chars(20) == 5
        assert WordDimension.significant_chars(1) == 1

    def test_matchers(self):
        assert self.dim.matches_exact("Computer", "computer")
        assert not self.dim.matches_exact("computer", "computation")
        assert self.dim.matches_prefix("computer", "comp")
        assert not self.dim.matches_prefix("computer", "net")


class TestNumericDimension:
    def setup_method(self):
        self.dim = NumericDimension("memory", 0, 1024)

    def test_construction_rejects_bad_bounds(self):
        with pytest.raises(KeywordError):
            NumericDimension("x", 10, 10)

    def test_log_scale_needs_positive_min(self):
        with pytest.raises(KeywordError):
            NumericDimension("x", 0, 10, log_scale=True)

    def test_validate_range(self):
        assert self.dim.validate(512) == 512.0
        with pytest.raises(KeywordError):
            self.dim.validate(-1)
        with pytest.raises(KeywordError):
            self.dim.validate(2000)
        with pytest.raises(KeywordError):
            self.dim.validate("abc")
        with pytest.raises(KeywordError):
            self.dim.validate(float("nan"))

    def test_encode_extremes(self):
        bits = 8
        assert self.dim.encode(0, bits) == 0
        assert self.dim.encode(1024, bits) == 255

    @given(st.floats(min_value=0, max_value=1024), st.floats(min_value=0, max_value=1024))
    @settings(max_examples=200)
    def test_monotone(self, v1, v2):
        bits = 12
        c1, c2 = self.dim.encode(v1, bits), self.dim.encode(v2, bits)
        if v1 < v2:
            assert c1 <= c2

    @given(
        st.floats(min_value=0, max_value=1024),
        st.floats(min_value=0, max_value=1024),
        st.floats(min_value=0, max_value=1024),
    )
    @settings(max_examples=200)
    def test_range_interval_covers_members(self, a, b, v):
        bits = 12
        low, high = sorted((a, b))
        if not (low <= v <= high):
            return
        ilo, ihi = self.dim.interval_for_range(low, high, bits)
        assert ilo <= self.dim.encode(v, bits) <= ihi

    def test_open_ended_ranges(self):
        bits = 10
        lo, hi = self.dim.interval_for_range(None, 512, bits)
        assert lo == 0
        lo, hi = self.dim.interval_for_range(512, None, bits)
        assert hi == (1 << bits) - 1

    def test_empty_range_rejected(self):
        with pytest.raises(KeywordError):
            self.dim.interval_for_range(512, 256, 10)

    def test_matches_range(self):
        assert self.dim.matches_range(300, 256, 512)
        assert not self.dim.matches_range(100, 256, 512)
        assert self.dim.matches_range(1000, 256, None)
        assert self.dim.matches_range(10, None, 256)

    def test_log_scale_monotone(self):
        dim = NumericDimension("freq", 1, 4096, log_scale=True)
        bits = 10
        coords = [dim.encode(v, bits) for v in (1, 2, 8, 100, 4096)]
        assert coords == sorted(coords)
        assert coords[0] == 0
        assert coords[-1] == (1 << bits) - 1

    def test_log_scale_spreads_small_values(self):
        """Log scale gives small values more resolution than linear."""
        lin = NumericDimension("x", 1, 2**20)
        log = NumericDimension("x", 1, 2**20, log_scale=True)
        bits = 16
        lin_gap = lin.encode(2, bits) - lin.encode(1, bits)
        log_gap = log.encode(2, bits) - log.encode(1, bits)
        assert log_gap > lin_gap


class TestCategoricalDimension:
    def setup_method(self):
        self.dim = CategoricalDimension("os", ["linux", "macos", "windows"])

    def test_construction_rejects_empty(self):
        with pytest.raises(KeywordError):
            CategoricalDimension("os", [])

    def test_construction_rejects_duplicates(self):
        with pytest.raises(KeywordError):
            CategoricalDimension("os", ["a", "a"])

    def test_validate(self):
        assert self.dim.validate("linux") == "linux"
        with pytest.raises(KeywordError):
            self.dim.validate("beos")

    def test_encode_ordered(self):
        bits = 8
        coords = [self.dim.encode(c, bits) for c in self.dim.categories]
        assert coords == sorted(coords)
        assert len(set(coords)) == 3

    def test_interval_covers_category(self):
        bits = 8
        for cat in self.dim.categories:
            lo, hi = self.dim.interval_for_exact(cat, bits)
            assert lo <= self.dim.encode(cat, bits) <= hi

    def test_intervals_disjoint(self):
        bits = 8
        intervals = [self.dim.interval_for_exact(c, bits) for c in self.dim.categories]
        for (l1, h1), (l2, h2) in zip(intervals, intervals[1:]):
            assert h1 < l2

    def test_matches(self):
        assert self.dim.matches_exact("linux", "linux")
        assert not self.dim.matches_exact("linux", "macos")


class TestDimensionName:
    def test_empty_name_rejected(self):
        with pytest.raises(KeywordError):
            WordDimension("")
