"""Tests for KeywordSpace: encoding, regions, and the exactness invariant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, KeywordError
from repro.keywords import (
    CategoricalDimension,
    Exact,
    KeywordSpace,
    NumericDimension,
    NumericRange,
    Prefix,
    Query,
    Wildcard,
    WordDimension,
)

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=10)


def storage_space(bits=16):
    """2-D P2P storage keyword space (paper Figure 1a)."""
    return KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=bits)


def grid_space(bits=10):
    """3-D grid resource space (paper Figure 1b)."""
    return KeywordSpace(
        [
            NumericDimension("storage", 0, 1024),
            NumericDimension("bandwidth", 0, 1000),
            NumericDimension("cost", 0, 100),
        ],
        bits=bits,
    )


class TestConstruction:
    def test_requires_dimensions(self):
        with pytest.raises(KeywordError):
            KeywordSpace([], bits=8)

    def test_requires_positive_bits(self):
        with pytest.raises(KeywordError):
            KeywordSpace([WordDimension("a")], bits=0)

    def test_rejects_duplicate_names(self):
        with pytest.raises(KeywordError):
            KeywordSpace([WordDimension("a"), WordDimension("a")], bits=8)

    def test_properties(self):
        space = storage_space(bits=12)
        assert space.dims == 2
        assert space.side == 4096


class TestCoordinates:
    def test_word_coordinates(self):
        space = storage_space()
        point = space.coordinates(("computer", "network"))
        assert len(point) == 2
        assert all(0 <= c < space.side for c in point)

    def test_wrong_arity(self):
        with pytest.raises(DimensionMismatchError):
            storage_space().coordinates(("one",))

    def test_validate_key_normalizes(self):
        space = storage_space()
        assert space.validate_key(("Computer", "NETWORK")) == ("computer", "network")

    def test_coordinates_many(self):
        space = storage_space()
        arr = space.coordinates_many([("a", "b"), ("c", "d")])
        assert arr.shape == (2, 2)
        assert tuple(arr[0]) == space.coordinates(("a", "b"))

    def test_coordinates_many_empty(self):
        assert storage_space().coordinates_many([]).shape == (0, 2)


class TestRegion:
    def test_exact_query_small_region(self):
        space = storage_space()
        region = space.region("(computer, network)")
        assert region.contains_point(space.coordinates(("computer", "network")))

    def test_wildcard_dimension_full_width(self):
        space = storage_space()
        region = space.region("(computer, *)")
        box = region.boxes[0]
        assert box.intervals[1].low == 0
        assert box.intervals[1].high == space.side - 1

    def test_text_and_ast_agree(self):
        space = storage_space()
        ast = Query((Prefix("comp"), Wildcard()))
        assert space.region("(comp*, *)") == space.region(ast)

    def test_range_region(self):
        space = grid_space()
        region = space.region("(256-512, *, 10-*)")
        box = region.boxes[0]
        lo, hi = box.intervals[0].low, box.intervals[0].high
        assert lo <= space.coordinates((300, 0, 50))[0] <= hi

    def test_range_clamped_to_domain(self):
        space = grid_space()
        region = space.region(Query((NumericRange(None, 2000.0), Wildcard(), Wildcard())))
        assert region.boxes[0].intervals[0].high == space.side - 1

    def test_type_checking_prefix_on_numeric(self):
        space = grid_space()
        with pytest.raises(KeywordError):
            space.region(Query((Prefix("ab"), Wildcard(), Wildcard())))

    def test_type_checking_range_on_word(self):
        space = storage_space()
        with pytest.raises(KeywordError):
            space.region(Query((NumericRange(1.0, 2.0), Wildcard())))

    def test_wrong_query_arity(self):
        with pytest.raises(DimensionMismatchError):
            storage_space().region("(a, b, c)")


class TestMatches:
    def test_exact(self):
        space = storage_space()
        assert space.matches(("computer", "network"), "(computer, network)")
        assert not space.matches(("computer", "storage"), "(computer, network)")

    def test_prefix(self):
        space = storage_space()
        assert space.matches(("computer", "network"), "(comp*, *)")
        assert not space.matches(("docs", "network"), "(comp*, *)")

    def test_range(self):
        space = grid_space()
        assert space.matches((300, 100, 5), "(256-512, *, *)")
        assert not space.matches((100, 100, 5), "(256-512, *, *)")

    def test_wrong_key_arity(self):
        with pytest.raises(DimensionMismatchError):
            storage_space().matches(("a",), "(a, b)")


class TestCoveringInvariant:
    """matches(key, q) => region(q).contains_point(coordinates(key))."""

    @given(words, words, words, st.integers(min_value=1, max_value=6))
    @settings(max_examples=300)
    def test_word_prefix_covering(self, w1, w2, base, plen):
        space = storage_space(bits=14)
        prefix = base[:plen]
        query = Query((Prefix(prefix), Wildcard()))
        key = (prefix + w1, w2)  # guaranteed prefix match
        assert space.matches(key, query)
        assert space.region(query).contains_point(space.coordinates(key))

    @given(words, words, words)
    @settings(max_examples=200)
    def test_exact_covering(self, w1, w2, _):
        space = storage_space(bits=14)
        query = Query((Exact(w1), Exact(w2)))
        key = (w1, w2)
        assert space.region(query).contains_point(space.coordinates(key))

    @given(
        st.floats(min_value=0, max_value=1024),
        st.floats(min_value=0, max_value=1024),
        st.floats(min_value=0, max_value=1024),
    )
    @settings(max_examples=200)
    def test_numeric_covering(self, a, b, v):
        space = grid_space(bits=12)
        low, high = sorted((a, b))
        if not (low <= v <= high):
            return
        query = Query((NumericRange(low, high), Wildcard(), Wildcard()))
        key = (v, 500, 50)
        assert space.matches(key, query)
        assert space.region(query).contains_point(space.coordinates(key))


class TestMixedSpace:
    def test_word_plus_numeric_plus_categorical(self):
        space = KeywordSpace(
            [
                WordDimension("name"),
                NumericDimension("memory", 0, 4096),
                CategoricalDimension("os", ["linux", "windows"]),
            ],
            bits=10,
        )
        key = ("webserver", 2048, "linux")
        query = Query((Prefix("web"), NumericRange(1024.0, None), Exact("linux")))
        assert space.matches(key, query)
        assert space.region(query).contains_point(space.coordinates(key))
        assert not space.matches(("webserver", 512, "linux"), query)
