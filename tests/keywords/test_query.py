"""Tests for the query AST and textual parser."""

import pytest

from repro.errors import KeywordError, QueryParseError
from repro.keywords.query import (
    Exact,
    NumericRange,
    Prefix,
    Query,
    Wildcard,
    parse_terms,
)


class TestParser:
    def test_exact_keywords(self):
        q = parse_terms("(computer, network)")
        assert q.terms == (Exact("computer"), Exact("network"))

    def test_case_normalized(self):
        q = parse_terms("(Computer, NETWORK)")
        assert q.terms == (Exact("computer"), Exact("network"))

    def test_prefix_and_wildcard(self):
        q = parse_terms("(comp*, *)")
        assert q.terms == (Prefix("comp"), Wildcard())

    def test_paper_example_q1(self):
        q = parse_terms("(computer, *)")
        assert q.terms == (Exact("computer"), Wildcard())

    def test_paper_example_q2_3d(self):
        q = parse_terms("(comp*, net*, *)")
        assert q.terms == (Prefix("comp"), Prefix("net"), Wildcard())

    def test_paper_range_example(self):
        """(256-512MB memory, any CPU, at least 10Mbps) from the paper §3.3."""
        q = parse_terms("(256-512, *, 10-*)")
        assert q.terms == (
            NumericRange(256.0, 512.0),
            Wildcard(),
            NumericRange(10.0, None),
        )

    def test_open_low_range(self):
        q = parse_terms("(*-512, *)")
        assert q.terms[0] == NumericRange(None, 512.0)

    def test_numeric_exact(self):
        q = parse_terms("(512, *)")
        assert q.terms == (Exact(512.0), Wildcard())

    def test_float_range(self):
        q = parse_terms("(0.5-1.5, *)")
        assert q.terms[0] == NumericRange(0.5, 1.5)

    def test_scientific_notation(self):
        q = parse_terms("(1e3-2.5e3, *)")
        assert q.terms[0] == NumericRange(1000.0, 2500.0)

    def test_negative_exponent(self):
        q = parse_terms("(0.0-2.5e-2, *)")
        assert q.terms[0] == NumericRange(0.0, 0.025)

    def test_without_parens(self):
        q = parse_terms("computer, net*")
        assert q.terms == (Exact("computer"), Prefix("net"))

    def test_whitespace_tolerant(self):
        q = parse_terms("(  computer ,   net*  )")
        assert q.terms == (Exact("computer"), Prefix("net"))

    def test_rejects_empty(self):
        with pytest.raises(QueryParseError):
            parse_terms("()")
        with pytest.raises(QueryParseError):
            parse_terms("")

    def test_rejects_empty_term(self):
        with pytest.raises(QueryParseError):
            parse_terms("(computer, , network)")

    def test_rejects_garbage(self):
        with pytest.raises(QueryParseError):
            parse_terms("(comp@ter, *)")

    def test_rejects_inverted_range(self):
        with pytest.raises(QueryParseError):
            parse_terms("(512-256, *)")


class TestQuery:
    def test_needs_terms(self):
        with pytest.raises(KeywordError):
            Query(())

    def test_fully_specified(self):
        assert Query((Exact("a"), Exact("b"))).is_fully_specified
        assert not Query((Exact("a"), Wildcard())).is_fully_specified

    def test_wildcard_count(self):
        q = Query((Wildcard(), Exact("a"), Wildcard()))
        assert q.wildcard_count == 2

    def test_str_roundtrip(self):
        q = parse_terms("(comp*, network, 256-*)")
        assert parse_terms(str(q)) == q

    def test_str_formats(self):
        assert str(Query((Prefix("comp"), Wildcard()))) == "(comp*, *)"
        assert str(NumericRange(1.0, None)) == "1-*"
        assert str(NumericRange(None, 2.5)) == "*-2.5"


class TestNumericRangeValidation:
    def test_empty_rejected(self):
        with pytest.raises(KeywordError):
            NumericRange(5.0, 1.0)

    def test_open_ends_ok(self):
        NumericRange(None, None)
        NumericRange(1.0, None)
        NumericRange(None, 1.0)
