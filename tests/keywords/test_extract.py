"""Tests for keyword extraction."""

import pytest

from repro.errors import KeywordError
from repro.keywords.extract import STOPWORDS, extract_keywords, tokenize


class TestTokenize:
    def test_lowercase_alpha_only(self):
        assert tokenize("Hello, World! 42 foo_bar") == ["hello", "world", "foo", "bar"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("123 !!!") == []


class TestExtractKeywords:
    def test_frequency_ranking(self):
        text = "network network network computer computer storage"
        assert extract_keywords(text, 3) == ("network", "computer", "storage")

    def test_tie_broken_by_first_appearance(self):
        text = "alpha beta alpha beta gamma"
        assert extract_keywords(text, 2) == ("alpha", "beta")

    def test_stopwords_dropped(self):
        text = "the the the the protocol is a protocol for the network"
        keywords = extract_keywords(text, 2)
        assert keywords == ("protocol", "network")
        assert "the" not in keywords

    def test_min_length(self):
        text = "db db db database database"
        assert extract_keywords(text, 1, min_length=3) == ("database",)

    def test_too_few_content_words(self):
        with pytest.raises(KeywordError):
            extract_keywords("just the one wordhere", 3)

    def test_bad_count(self):
        with pytest.raises(KeywordError):
            extract_keywords("some text here", 0)

    def test_custom_stopwords(self):
        keywords = extract_keywords(
            "foo bar foo bar baz", 1, stopwords=frozenset({"foo"})
        )
        assert keywords == ("bar",)

    def test_output_is_publishable(self):
        """Extracted keywords satisfy WordDimension's alphabet."""
        from repro import KeywordSpace, SquidSystem, WordDimension

        text = (
            "Squid is a peer to peer information discovery system that "
            "supports flexible queries using keywords and ranges. The "
            "discovery system maps keywords onto a Hilbert curve."
        )
        keywords = extract_keywords(text, 2)
        space = KeywordSpace([WordDimension("k1"), WordDimension("k2")], bits=10)
        system = SquidSystem.create(space, n_nodes=8, seed=0)
        system.publish(keywords, payload="doc")
        assert system.query(f"({keywords[0]}, *)", rng=0).match_count == 1


class TestStopwordList:
    def test_all_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)

    def test_common_words_present(self):
        assert {"the", "and", "of", "is"} <= STOPWORDS
