"""Unit and property tests for repro.util.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    bit_at,
    bit_length_ceil,
    bit_mask,
    deinterleave_bits,
    extract_dim_bits,
    gray_decode,
    gray_encode,
    interleave_bits,
    iter_bits_msb,
    popcount,
    reverse_bits,
    rotate_left,
    rotate_right,
    set_bit,
    trailing_set_bits,
    trailing_zero_bits,
)


class TestBitMask:
    def test_zero_width(self):
        assert bit_mask(0) == 0

    def test_small_widths(self):
        assert bit_mask(1) == 0b1
        assert bit_mask(4) == 0b1111
        assert bit_mask(8) == 0xFF

    def test_large_width(self):
        assert bit_mask(100) == (1 << 100) - 1

    def test_negative_width_raises(self):
        with pytest.raises(ValueError):
            bit_mask(-1)


class TestGrayCode:
    def test_known_sequence(self):
        assert [gray_encode(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_decode_known(self):
        assert gray_decode(0b1100) == 0b1000

    @given(st.integers(min_value=0, max_value=2**70))
    def test_roundtrip(self, value):
        assert gray_decode(gray_encode(value)) == value

    @given(st.integers(min_value=0, max_value=2**70))
    def test_encode_roundtrip(self, value):
        assert gray_encode(gray_decode(value)) == value

    @given(st.integers(min_value=0, max_value=2**32))
    def test_adjacent_codes_differ_one_bit(self, value):
        diff = gray_encode(value) ^ gray_encode(value + 1)
        assert popcount(diff) == 1

    @given(st.integers(min_value=0, max_value=2**32))
    def test_step_flips_trailing_set_bit_position(self, value):
        # gc(i) ^ gc(i+1) == 1 << tsb(i): the identity the Hilbert state
        # machine's direction function relies on.
        diff = gray_encode(value) ^ gray_encode(value + 1)
        assert diff == 1 << trailing_set_bits(value)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            gray_encode(-1)
        with pytest.raises(ValueError):
            gray_decode(-1)


class TestRotations:
    def test_rotate_left_basic(self):
        assert rotate_left(0b0001, 1, 4) == 0b0010
        assert rotate_left(0b1000, 1, 4) == 0b0001

    def test_rotate_right_basic(self):
        assert rotate_right(0b0001, 1, 4) == 0b1000
        assert rotate_right(0b0010, 1, 4) == 0b0001

    @given(
        st.integers(min_value=1, max_value=16).flatmap(
            lambda w: st.tuples(
                st.integers(min_value=0, max_value=(1 << w) - 1),
                st.integers(min_value=0, max_value=64),
                st.just(w),
            )
        )
    )
    def test_left_right_inverse(self, args):
        value, count, width = args
        assert rotate_right(rotate_left(value, count, width), count, width) == value

    @given(
        st.integers(min_value=1, max_value=16).flatmap(
            lambda w: st.tuples(
                st.integers(min_value=0, max_value=(1 << w) - 1), st.just(w)
            )
        )
    )
    def test_full_rotation_identity(self, args):
        value, width = args
        assert rotate_left(value, width, width) == value

    def test_rotation_preserves_popcount(self):
        for value in range(16):
            for count in range(8):
                assert popcount(rotate_left(value, count, 4)) == popcount(value)

    def test_value_too_wide_raises(self):
        with pytest.raises(ValueError):
            rotate_left(0b10000, 1, 4)

    def test_zero_width_raises(self):
        with pytest.raises(ValueError):
            rotate_left(0, 1, 0)


class TestTrailingBits:
    def test_trailing_set(self):
        assert trailing_set_bits(0) == 0
        assert trailing_set_bits(0b0111) == 3
        assert trailing_set_bits(0b1011) == 2
        assert trailing_set_bits(0b1000) == 0

    def test_trailing_zero(self):
        assert trailing_zero_bits(0b1000) == 3
        assert trailing_zero_bits(1) == 0

    def test_trailing_zero_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            trailing_zero_bits(0)


class TestBitAccess:
    def test_bit_at(self):
        assert bit_at(0b0100, 2) == 1
        assert bit_at(0b0100, 1) == 0

    def test_set_bit(self):
        assert set_bit(0b0000, 2, 1) == 0b0100
        assert set_bit(0b0111, 1, 0) == 0b0101

    def test_set_bit_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            set_bit(0, 0, 2)

    def test_iter_bits_msb(self):
        assert list(iter_bits_msb(0b1010, 4)) == [1, 0, 1, 0]

    def test_reverse_bits(self):
        assert reverse_bits(0b1000, 4) == 0b0001
        assert reverse_bits(0b1011, 4) == 0b1101

    @given(st.integers(min_value=0, max_value=255))
    def test_reverse_involution(self, value):
        assert reverse_bits(reverse_bits(value, 8), 8) == value

    def test_bit_length_ceil(self):
        assert bit_length_ceil(0) == 0
        assert bit_length_ceil(1) == 1
        assert bit_length_ceil(8) == 4


class TestInterleave:
    def test_interleave_2d(self):
        # x = 0b11, y = 0b00 -> groups (x_1 y_1)(x_0 y_0) = 10 10
        assert interleave_bits((0b11, 0b00), 2) == 0b1010

    def test_deinterleave_roundtrip_exhaustive_small(self):
        for x in range(8):
            for y in range(8):
                idx = interleave_bits((x, y), 3)
                assert deinterleave_bits(idx, 2, 3) == (x, y)

    @given(
        st.tuples(
            st.integers(min_value=0, max_value=2**10 - 1),
            st.integers(min_value=0, max_value=2**10 - 1),
            st.integers(min_value=0, max_value=2**10 - 1),
        )
    )
    def test_roundtrip_3d(self, coords):
        idx = interleave_bits(coords, 10)
        assert deinterleave_bits(idx, 3, 10) == coords

    def test_extract_dim_bits(self):
        idx = interleave_bits((0b101, 0b011), 3)
        assert extract_dim_bits(idx, 0, 2, 3) == 0b101
        assert extract_dim_bits(idx, 1, 2, 3) == 0b011
