"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_numpy_integer_seed(self):
        gen = as_generator(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_generator("seed")


class TestSpawn:
    def test_count(self):
        children = spawn(0, 5)
        assert len(children) == 5

    def test_children_independent_streams(self):
        a, b = spawn(0, 2)
        assert not np.array_equal(a.integers(0, 10**9, 10), b.integers(0, 10**9, 10))

    def test_deterministic_from_seed(self):
        x = [g.integers(0, 10**9) for g in spawn(1, 3)]
        y = [g.integers(0, 10**9) for g in spawn(1, 3)]
        assert x == y
