"""Tests for repro.util.stats."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    Summary,
    coefficient_of_variation,
    gini_coefficient,
    histogram_counts,
    imbalance_ratio,
    percentile,
    percentiles,
    summarize,
)


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s.count == 0
        assert s.total == 0.0

    def test_single_value(self):
        s = summarize([5.0])
        assert s.count == 1
        assert s.mean == 5.0
        assert s.minimum == 5.0
        assert s.maximum == 5.0

    def test_known_values(self):
        s = summarize([1, 2, 3, 4])
        assert s.total == 10.0
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_as_row_keys(self):
        row = summarize([1, 2]).as_row()
        assert set(row) == {"count", "total", "mean", "std", "min", "p50", "p90", "p99", "max"}


class TestGini:
    def test_even_distribution_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-12)

    def test_fully_concentrated(self):
        # One holder of everything among n -> gini = (n-1)/n.
        g = gini_coefficient([0, 0, 0, 100])
        assert g == pytest.approx(0.75, abs=1e-12)

    def test_empty_and_zero(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0, 0]) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1, 2])

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_bounded(self, values):
        g = gini_coefficient(values)
        assert -1e-9 <= g <= 1.0

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=2, max_size=30),
        st.floats(min_value=0.1, max_value=10),
    )
    def test_scale_invariant(self, values, factor):
        a = gini_coefficient(values)
        b = gini_coefficient([v * factor for v in values])
        assert a == pytest.approx(b, rel=1e-9, abs=1e-9)


class TestImbalance:
    def test_even(self):
        assert imbalance_ratio([3, 3, 3]) == 1.0

    def test_uneven(self):
        assert imbalance_ratio([1, 1, 4]) == pytest.approx(2.0)

    def test_empty_and_zero(self):
        assert imbalance_ratio([]) == 1.0
        assert imbalance_ratio([0, 0]) == 1.0


class TestCoV:
    def test_even_is_zero(self):
        assert coefficient_of_variation([2, 2, 2]) == 0.0

    def test_empty(self):
        assert coefficient_of_variation([]) == 0.0

    def test_known(self):
        assert coefficient_of_variation([0, 2]) == pytest.approx(1.0)


class TestHistogram:
    def test_counts_sum(self):
        counts = histogram_counts([0.5, 1.5, 2.5], bins=3, low=0, high=3)
        assert counts.tolist() == [1, 1, 1]

    def test_out_of_range_dropped(self):
        counts = histogram_counts([-1, 0.5, 10], bins=2, low=0, high=2)
        assert counts.sum() == 1

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            histogram_counts([1], bins=0, low=0, high=1)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            histogram_counts([1], bins=2, low=1, high=1)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2.0


class TestPercentiles:
    def test_default_labels(self):
        out = percentiles(list(range(101)))
        assert set(out) == {"p50", "p95", "p99"}
        assert out["p50"] == 50.0
        assert out["p95"] == 95.0
        assert out["p99"] == 99.0

    def test_custom_quantiles_and_labels(self):
        out = percentiles([1.0, 2.0, 3.0], qs=(0, 100, 99.9))
        assert set(out) == {"p0", "p100", "p99.9"}
        assert out["p0"] == 1.0
        assert out["p100"] == 3.0

    def test_empty_sample_is_nan_not_zero(self):
        out = percentiles([])
        assert set(out) == {"p50", "p95", "p99"}
        assert all(np.isnan(v) for v in out.values())
        # Unlike percentile(), which reports 0.0 — a latency report must
        # not present "no data" as "instant".
        assert percentile([], 50) == 0.0

    def test_matches_scalar_percentile(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        out = percentiles(values, qs=(50, 90))
        assert out["p50"] == percentile(values, 50)
        assert out["p90"] == percentile(values, 90)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_monotone_in_q(self, values):
        out = percentiles(values, qs=(50, 95, 99))
        assert out["p50"] <= out["p95"] <= out["p99"]
