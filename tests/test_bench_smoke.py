"""Smoke target: the benchmark harness in ``--quick`` mode.

Runs ``python -m repro bench --quick`` end to end (in-process) and
validates the shape of the JSON document it writes — the schema the
committed ``BENCH_query_path.json`` follows.  Timing *values* are not
asserted here (CI machines vary); exactness guards inside the harness
already fail the run if the optimized paths diverge from the baselines.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import SCHEMA, run_bench
from repro.cli import main

ENCODE_KEYS = {
    "curve", "dims", "order", "n_points", "encode_scalar_s",
    "encode_vectorized_s", "encode_speedup", "decode_vectorized_s",
    "encode_mpts_per_s",
}
REFINE_KEYS = {
    "curve", "dims", "order", "region", "clusters", "scalar_s",
    "vectorized_s", "speedup",
}
E2E_KEYS = {
    "engine", "class", "query", "runs", "matches", "baseline_s",
    "optimized_s", "speedup",
}
PARALLEL_KEYS = {
    "queries", "chunk_size", "chunks", "workers", "start_method",
    "serial_s", "parallel_s", "speedup", "total_matches",
    "route_cache_hits", "route_cache_misses",
}
RESILIENCE_KEYS = {
    "fault_rate", "mitigation", "queries", "recall", "complete_fraction",
    "retries", "failovers", "lost_branches", "per_query_s",
}
STORE_KEYS = {
    "backend", "nodes", "keys", "publish_s", "publish_keys_per_s",
    "scan_s", "scanned_elements", "scan_elements_per_s", "windows",
    "window_elements", "rss_mb", "store_memory_mb",
}
TRACE_KEYS = {
    "ops", "queries", "distinct_queries", "publishes", "zipf_exponent",
    "publish_mix", "burstiness", "cache_capacity", "hits", "misses",
    "invalidations", "hit_rate", "messages_off", "messages_on",
    "messages_saved", "median_uncached_s", "median_cached_s",
    "median_speedup", "stale_results",
}
SERVE_KEYS = {
    "mode", "clients", "requests", "errors", "duration_s", "qps",
    "p50_ms", "p95_ms", "p99_ms", "nodes", "per_message_delay_s",
    "identity", "concurrency_speedup",
}
OVERLOAD_SHED_KEYS = {
    "leg", "queries", "shed_branches", "matches", "exact_matches",
    "unresolved_span", "complete", "identity",
}
OVERLOAD_LEG_KEYS = {
    "leg", "requests", "rate", "overload_factor", "deadline_ms",
    "completed", "rejected", "shed_answers", "late_answers", "errors",
    "qps", "goodput", "shed_fraction", "p50_ms", "p95_ms", "p99_ms",
    "nodes", "capacity_qps",
}


@pytest.fixture(scope="module")
def quick_result(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "bench.json"
    assert main(["bench", "--quick", "--seed", "7", "--output", str(path)]) == 0
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def test_document_envelope(quick_result):
    assert quick_result["schema"] == SCHEMA
    assert quick_result["seed"] == 7
    assert quick_result["quick"] is True
    assert set(quick_result["suites"]) == {
        "encode", "refine", "e2e", "parallel", "resilience", "store", "trace",
        "serve", "overload",
    }
    env = quick_result["environment"]
    assert {"python", "numpy", "platform", "cpus"} <= set(env)


def test_encode_rows(quick_result):
    rows = quick_result["suites"]["encode"]
    assert rows, "encode suite must produce rows"
    for row in rows:
        assert set(row) == ENCODE_KEYS
        assert row["encode_scalar_s"] > 0
        assert row["encode_vectorized_s"] > 0


def test_refine_rows(quick_result):
    rows = quick_result["suites"]["refine"]
    assert rows, "refine suite must produce rows"
    for row in rows:
        assert set(row) == REFINE_KEYS
        assert row["clusters"] > 0
        assert row["speedup"] > 0


def test_e2e_rows_cover_engines_and_classes(quick_result):
    rows = quick_result["suites"]["e2e"]
    assert {row["engine"] for row in rows} == {"optimized", "naive"}
    assert {row["class"] for row in rows} == {"exact", "prefix", "wildcard", "range"}
    for row in rows:
        assert set(row) == E2E_KEYS
        assert row["matches"] > 0  # every class query has seeded matches


def test_parallel_rows(quick_result):
    rows = quick_result["suites"]["parallel"]
    assert len(rows) == 1
    row = rows[0]
    assert set(row) == PARALLEL_KEYS
    # The suite asserts bit-identical serial/pooled outputs internally;
    # reaching this row at all means the determinism guards passed.
    assert row["workers"] >= 2
    assert row["queries"] > 0 and row["chunks"] > 0
    assert row["serial_s"] > 0 and row["parallel_s"] > 0
    assert row["route_cache_hits"] > 0  # repeated owners within the batch


def test_resilience_rows(quick_result):
    rows = quick_result["suites"]["resilience"]
    # Reaching these rows means the zero-fault bit-identity guard inside
    # the suite passed (plain engine vs. armed-but-idle fault plane).
    assert [row["mitigation"] for row in rows] == [
        "none", "retry", "retry+replication",
    ]
    for row in rows:
        assert set(row) == RESILIENCE_KEYS
        assert 0.0 <= row["recall"] <= 1.0
        assert 0.0 <= row["complete_fraction"] <= 1.0
    by_mitigation = {row["mitigation"]: row for row in rows}
    full = by_mitigation["retry+replication"]
    assert full["recall"] == 1.0 and full["complete_fraction"] == 1.0
    assert by_mitigation["none"]["recall"] <= full["recall"]


def test_store_rows(quick_result):
    rows = quick_result["suites"]["store"]
    # One row per backend; reaching them means the window-scan identity
    # guard inside the suite passed (columnar/sqlite vs. local reference).
    assert [row["backend"] for row in rows] == ["local", "columnar", "sqlite"]
    for row in rows:
        assert set(row) == STORE_KEYS
        assert row["publish_s"] > 0 and row["scan_s"] > 0
        assert row["scanned_elements"] == row["keys"]
        assert row["store_memory_mb"] > 0
    # Every backend scanned the identical window workload.
    assert len({row["window_elements"] for row in rows}) == 1


def test_trace_rows(quick_result):
    rows = quick_result["suites"]["trace"]
    assert len(rows) == 1
    row = rows[0]
    assert set(row) == TRACE_KEYS
    # Reaching this row means the lockstep twin-replay equality guard
    # inside the suite passed: every cached answer matched the uncached
    # twin exactly, through every publish into hot regions.
    assert row["stale_results"] == 0
    assert row["hits"] > 0 and row["hit_rate"] > 0.0
    assert row["hits"] + row["misses"] == row["queries"]
    assert row["publishes"] > 0  # the mix really interleaved updates
    assert row["messages_saved"] > 0
    assert row["messages_on"] + row["messages_saved"] == row["messages_off"]


def test_serve_rows(quick_result):
    rows = quick_result["suites"]["serve"]
    # Reaching these rows means both fatal guards inside the suite passed:
    # every served answer byte-identical to its in-process twin, and the
    # concurrent run strictly out-throughputting the 1-client run.
    assert [row["clients"] for row in rows] == [1, 16]
    for row in rows:
        assert set(row) == SERVE_KEYS
        assert row["mode"] == "closed"
        assert row["errors"] == 0
        assert row["identity"] is True
        assert row["qps"] > 0
        assert 0 < row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
        assert row["concurrency_speedup"] > 1.0


def test_overload_rows(quick_result):
    rows = quick_result["suites"]["overload"]
    # Reaching these rows means every hard gate inside the suite passed:
    # zero-overload bit-identity, honest shedding, a clean calm leg, no
    # 5xx anywhere, and the guarded leg beating the unguarded one on both
    # p99 and goodput.
    assert [row["leg"] for row in rows] == [
        "shed-honesty", "calm-guarded", "overload-unguarded",
        "overload-guarded", "overload-chaos",
    ]
    by_leg = {row["leg"]: row for row in rows}
    shed = by_leg["shed-honesty"]
    assert set(shed) == OVERLOAD_SHED_KEYS
    assert shed["shed_branches"] > 0
    assert shed["complete"] is False
    assert shed["matches"] <= shed["exact_matches"]
    assert shed["unresolved_span"] > 0
    for leg in ("calm-guarded", "overload-unguarded", "overload-guarded",
                "overload-chaos"):
        row = by_leg[leg]
        assert set(row) == OVERLOAD_LEG_KEYS
        assert row["errors"] == 0
        assert row["goodput"] > 0
    calm = by_leg["calm-guarded"]
    assert calm["rejected"] == 0 and calm["shed_answers"] == 0
    assert by_leg["overload-unguarded"]["rejected"] == 0
    guarded = by_leg["overload-guarded"]
    unguarded = by_leg["overload-unguarded"]
    assert guarded["goodput"] > unguarded["goodput"]
    assert guarded["p99_ms"] < unguarded["p99_ms"]
    assert guarded["overload_factor"] == pytest.approx(4.0)


def test_summary_shape(quick_result):
    summary = quick_result["summary"]
    assert summary["refine_min_speedup"] <= summary["refine_max_speedup"]
    assert set(summary["e2e_median_speedup_by_class"]) == {
        "exact", "prefix", "wildcard", "range",
    }
    assert set(summary["store_publish_keys_per_s_by_backend"]) == {
        "local", "columnar", "sqlite",
    }
    assert set(summary["store_scan_elements_per_s_by_backend"]) == {
        "local", "columnar", "sqlite",
    }
    assert summary["trace_hit_rate"] > 0.0
    assert summary["trace_messages_saved"] > 0
    assert summary["trace_median_speedup"] is None or (
        summary["trace_median_speedup"] > 0
    )
    assert summary["serve_qps_1_client"] > 0
    assert summary["serve_qps_concurrent"] > 0
    assert summary["serve_clients"] == 16
    assert summary["serve_concurrency_speedup"] > 1.0
    assert summary["serve_p95_ms_concurrent"] > 0
    assert summary["overload_factor"] == pytest.approx(4.0)
    assert summary["overload_goodput_guarded"] > summary["overload_goodput_unguarded"]
    assert summary["overload_p99_ms_guarded"] < summary["overload_p99_ms_unguarded"]
    assert 0.0 < summary["overload_shed_fraction_guarded"] < 1.0


def test_run_bench_is_reproducible_in_shape():
    a = run_bench(seed=3, quick=True)
    b = run_bench(seed=3, quick=True)
    # Timings differ run to run; the measured workload must not.
    def shape(doc):
        return {
            "refine": [
                (r["dims"], r["order"], r["region"], r["clusters"])
                for r in doc["suites"]["refine"]
            ],
            "e2e": [
                (r["engine"], r["class"], r["query"], r["matches"])
                for r in doc["suites"]["e2e"]
            ],
        }

    assert shape(a) == shape(b)
