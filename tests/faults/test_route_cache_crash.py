"""The overlay route cache must never serve a stale path across a crash.

A mid-query crash mutates routing state while cached paths from earlier in
the very same query may still reference the victim.  ``ChordRing.fail`` (and
the replication manager's crash protocol built on it) invalidates the memo;
these tests drive crashes *through the fault plane while queries are in
flight* and assert no cached path ever contains a dead node — and that
post-crash routes resolve to live owners only.
"""

import numpy as np

from repro.core.engine import OptimizedEngine
from repro.core.replication import ReplicationManager
from repro.faults import FaultConfig, FaultPlane, RetryPolicy
from tests.core.conftest import fresh_storage_system

QUERIES = ["(comp*, *)", "(*, net*)", "(data, *)", "(s*, *)"] * 3


def _assert_cache_live(system):
    cache = system.overlay.route_cache
    live = set(system.overlay.nodes)
    for (source, owner), path in cache._paths.items():
        assert source in live and owner in live, "stale cache key survives crash"
        assert set(path) <= live, f"cached path {path} contains a dead node"


def test_mid_query_crashes_never_leave_stale_paths():
    system = fresh_storage_system(n_nodes=24, n_keys=250, seed=21)
    manager = ReplicationManager(system, degree=2)
    plane = FaultPlane(FaultConfig(crash_rate=0.06, drop_rate=0.1, seed=22))
    plane.attach_system(system, replication=manager)
    engine = OptimizedEngine(
        fault_plane=plane, retry=RetryPolicy(), replication=manager
    )
    rng = np.random.default_rng(23)
    ids = system.overlay.node_ids()
    for i, query in enumerate(QUERIES):
        origin_pool = system.overlay.node_ids()
        engine.execute(
            system, query, origin=origin_pool[(i * 3) % len(origin_pool)], rng=rng
        )
        _assert_cache_live(system)
    assert plane.stats.crashed >= 1, "seed must exercise at least one crash"
    assert set(plane.stats.crashed_nodes).isdisjoint(system.overlay.nodes)
    # The cache still works after the dust settles: a fresh query both
    # fills it and routes exclusively over live nodes.
    engine.execute(system, QUERIES[0], origin=system.overlay.node_ids()[0], rng=rng)
    assert len(system.overlay.route_cache) > 0
    _assert_cache_live(system)


def test_crash_invalidates_whole_memo():
    system = fresh_storage_system(n_nodes=16, n_keys=100, seed=25)
    overlay = system.overlay
    # Warm the cache with real routes.
    ids = overlay.node_ids()
    for key in (5, 1000, 40_000):
        overlay.route(ids[0], key)
    assert len(overlay.route_cache) > 0
    plane = FaultPlane().attach_system(system)
    assert plane.crash_node(ids[4])
    assert len(overlay.route_cache) == 0, "fail() must invalidate the memo"
    _assert_cache_live(system)
