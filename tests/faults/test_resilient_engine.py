"""Resilient execution of :class:`OptimizedEngine` under an active fault plane.

Covers the contract the fault-injection PR introduces: drops retried with
backoff, exhausted destinations failed over to ring successors (served from
replica stores when a :class:`ReplicationManager` is wired), crashes during
a query recovered or reported, and — when recovery is impossible — results
marked ``complete=False`` with the unreached index ranges accounted in
``unresolved_ranges`` instead of silently shrinking the match set.
"""

import numpy as np
import pytest

from repro.core.engine import OptimizedEngine
from repro.core.metrics import QueryStats, merge_index_ranges
from repro.core.replication import ReplicationManager
from repro.faults import FaultConfig, FaultPlane, RetryPolicy
from tests.core.conftest import fresh_storage_system

QUERIES = ["(comp*, *)", "(*, net*)", "(data, *)", "(s*, *)"]


def _oracle(system, query):
    return sorted(str(e.key) for e in system.brute_force_matches(query))


def _run(system, engine, seed=0, queries=QUERIES):
    rng = np.random.default_rng(seed)
    ids = system.overlay.node_ids()
    out = []
    for i, query in enumerate(queries):
        origin = ids[(i * 7) % len(ids)]
        out.append(engine.execute(system, query, origin=origin, rng=rng))
    return out


class TestRetryRecoversDrops:
    def test_full_recall_and_completeness(self):
        system = fresh_storage_system(n_nodes=32, n_keys=300, seed=1)
        plane = FaultPlane(FaultConfig(drop_rate=0.25, seed=2))
        engine = OptimizedEngine(fault_plane=plane, retry=RetryPolicy())
        results = _run(system, engine)
        assert plane.stats.dropped > 0
        for query, res in zip(QUERIES, results):
            assert sorted(str(e.key) for e in res.matches) == _oracle(system, query)
            assert res.complete and res.unresolved_ranges == ()
        assert sum(r.stats.retries for r in results) > 0

    def test_retry_costs_are_charged(self):
        system = fresh_storage_system(n_nodes=32, n_keys=300, seed=1)
        plain = OptimizedEngine()
        baseline = sum(r.stats.messages for r in _run(system, plain))
        plane = FaultPlane(FaultConfig(drop_rate=0.25, seed=2))
        faulty = OptimizedEngine(fault_plane=plane, retry=RetryPolicy())
        spent = sum(r.stats.messages for r in _run(system, faulty))
        assert spent > baseline  # retransmissions are real messages

    def test_deterministic_replay(self):
        def once():
            system = fresh_storage_system(n_nodes=32, n_keys=300, seed=1)
            plane = FaultPlane(FaultConfig(drop_rate=0.3, seed=5))
            engine = OptimizedEngine(fault_plane=plane, retry=RetryPolicy())
            results = _run(system, engine)
            return (
                [sorted(str(e.key) for e in r.matches) for r in results],
                [r.stats.as_dict() for r in results],
            )

        assert once() == once()


class TestHonestIncompleteness:
    def test_unmitigated_drops_are_reported(self):
        system = fresh_storage_system(n_nodes=32, n_keys=300, seed=1)
        plane = FaultPlane(FaultConfig(drop_rate=0.3, seed=7))
        engine = OptimizedEngine(fault_plane=plane)  # no retry policy
        results = _run(system, engine)
        incomplete = [r for r in results if not r.complete]
        assert incomplete, "0.3 drop rate without mitigation must lose branches"
        for res in incomplete:
            assert res.unresolved_ranges
            assert res.unresolved_span > 0
            assert res.stats.lost_branches > 0
        # Losses never invent matches: results stay a subset of the oracle.
        for query, res in zip(QUERIES, results):
            got = {str(e.key) for e in res.matches}
            assert got <= set(_oracle(system, query))

    def test_unresolved_ranges_are_coalesced(self):
        system = fresh_storage_system(n_nodes=32, n_keys=300, seed=1)
        plane = FaultPlane(FaultConfig(drop_rate=0.35, seed=3))
        engine = OptimizedEngine(fault_plane=plane)
        for res in _run(system, engine):
            ranges = res.unresolved_ranges
            assert ranges == merge_index_ranges(ranges)
            assert all(lo <= hi for lo, hi in ranges)

    def test_zero_fault_plane_never_marks_incomplete(self):
        system = fresh_storage_system(n_nodes=32, n_keys=300, seed=1)
        engine = OptimizedEngine(fault_plane=FaultPlane(), retry=RetryPolicy())
        assert all(r.complete for r in _run(system, engine))


class TestCrashDuringQuery:
    def test_replicated_crash_stays_exact(self):
        system = fresh_storage_system(n_nodes=32, n_keys=300, seed=4)
        manager = ReplicationManager(system, degree=2)
        plane = FaultPlane(FaultConfig(crash_rate=0.08, drop_rate=0.1, seed=6))
        plane.attach_system(system, replication=manager)
        engine = OptimizedEngine(
            fault_plane=plane, retry=RetryPolicy(), replication=manager
        )
        results = _run(system, engine, queries=QUERIES * 2)
        assert plane.stats.crashed > 0, "seed must actually crash nodes"
        for query, res in zip(QUERIES * 2, results):
            # Oracle recomputed after the crashes: replication lost nothing.
            assert sorted(str(e.key) for e in res.matches) == _oracle(system, query)
            assert res.complete

    def test_unreplicated_crash_loses_data_but_never_invents_matches(self):
        system = fresh_storage_system(n_nodes=32, n_keys=300, seed=4)
        before = sum(s.element_count for s in system.stores.values())
        oracle_before = {q: set(_oracle(system, q)) for q in QUERIES}
        plane = FaultPlane(FaultConfig(crash_rate=0.1, seed=6))
        plane.attach_system(system)
        engine = OptimizedEngine(fault_plane=plane, retry=RetryPolicy())
        results = _run(system, engine, queries=QUERIES * 2)
        assert plane.stats.crashed > 0
        # Without replication the crashed stores are really gone …
        assert sum(s.element_count for s in system.stores.values()) < before
        # … but queries only ever shrink toward the surviving data, and the
        # crash itself does not poison completeness: the successor now owns
        # the range legitimately (incompleteness is reserved for branches
        # the engine could not reach, tested above).
        for query, res in zip(QUERIES * 2, results):
            assert {str(e.key) for e in res.matches} <= oracle_before[query]
        # A post-crash query through a fault-free engine is exact against
        # what survived: the ring healed around every crash.
        clean = OptimizedEngine()
        for query in QUERIES:
            res = clean.execute(
                system, query, origin=system.overlay.node_ids()[0], rng=0
            )
            assert sorted(str(e.key) for e in res.matches) == _oracle(system, query)

    def test_failover_without_replicas_is_reported(self):
        # A destination that drops every message forces failover to its
        # successor; with no replica store to serve the range, the result
        # must be marked incomplete rather than silently partial.
        system = fresh_storage_system(n_nodes=32, n_keys=300, seed=4)
        plane = FaultPlane(FaultConfig(drop_rate=0.45, seed=9))
        engine = OptimizedEngine(fault_plane=plane, retry=RetryPolicy())
        results = _run(system, engine, queries=QUERIES * 2)
        assert sum(r.stats.failovers for r in results) > 0
        assert any(not r.complete and r.unresolved_ranges for r in results)


class TestDuplication:
    def test_duplicates_cost_messages_not_correctness(self):
        system = fresh_storage_system(n_nodes=32, n_keys=300, seed=1)
        plane = FaultPlane(FaultConfig(duplicate_rate=0.4, seed=8))
        engine = OptimizedEngine(fault_plane=plane, retry=RetryPolicy())
        results = _run(system, engine)
        assert sum(r.stats.messages_duplicated for r in results) > 0
        for query, res in zip(QUERIES, results):
            assert sorted(str(e.key) for e in res.matches) == _oracle(system, query)
            assert res.complete


class TestTraceUnderFaults:
    def test_trace_totals_match_stats(self):
        system = fresh_storage_system(n_nodes=32, n_keys=300, seed=4)
        manager = ReplicationManager(system, degree=2)
        plane = FaultPlane(
            FaultConfig(
                drop_rate=0.15, crash_rate=0.03, duplicate_rate=0.05,
                delay_rate=0.1, seed=12,
            )
        )
        plane.attach_system(system, replication=manager)
        engine = OptimizedEngine(
            fault_plane=plane, retry=RetryPolicy(), replication=manager
        )
        system.attach_tracer()
        try:
            results = _run(system, engine, queries=QUERIES * 2)
        finally:
            system.detach_tracer()
        for res in results:
            totals = res.trace.totals()
            stats = res.stats
            assert totals["messages"] == stats.messages
            assert totals["hops"] == stats.hops
            assert totals["lost_branches"] == stats.lost_branches
            assert totals["routing_nodes"] == stats.routing_nodes
            assert totals["processing_nodes"] == stats.processing_nodes


class TestStatsPlumbing:
    def test_merge_sums_resilience_counters(self):
        a, b = QueryStats(), QueryStats()
        a.record_retry(), a.record_dropped(), a.record_lost_branch()
        b.record_retry(), b.record_failover(), b.record_duplicate()
        merged = a.merge(b)
        assert merged.retries == 2
        assert merged.failovers == 1
        assert merged.messages_dropped == 1
        assert merged.messages_duplicated == 1
        assert merged.lost_branches == 1
        for key in (
            "retries", "failovers", "messages_dropped",
            "messages_duplicated", "lost_branches",
        ):
            assert key in merged.as_dict()

    def test_merge_index_ranges(self):
        assert merge_index_ranges([]) == ()
        assert merge_index_ranges([(5, 9), (0, 2)]) == ((0, 2), (5, 9))
        assert merge_index_ranges([(0, 3), (4, 6), (10, 12)]) == ((0, 6), (10, 12))
        assert merge_index_ranges([(0, 5), (2, 8), (8, 9)]) == ((0, 9),)

    def test_batch_incomplete_count(self):
        system = fresh_storage_system(n_nodes=32, n_keys=300, seed=1)
        clean = system.query_many(QUERIES, workers=1, seed=0)
        assert clean.incomplete_count() == 0
        plane = FaultPlane(FaultConfig(drop_rate=0.3, seed=7))
        engine = OptimizedEngine(fault_plane=plane)
        lossy = system.query_many(QUERIES, workers=1, seed=0, engine=engine)
        assert lossy.incomplete_count() > 0
        assert lossy.incomplete_count() == sum(
            1 for r in lossy.results if not r.complete
        )
