"""Tests for the fault-injection plane and resilient query execution."""
