"""Unit tests for :class:`repro.faults.FaultPlane` and its configuration."""

import numpy as np
import pytest

from repro.core.replication import ReplicationManager
from repro.errors import FaultError
from repro.faults import FaultConfig, FaultOutcome, FaultPlane, RetryPolicy
from repro.obs import collecting
from tests.core.conftest import fresh_storage_system


class TestFaultConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_rate": -0.1},
            {"drop_rate": 1.5},
            {"crash_rate": 2.0},
            {"duplicate_rate": -1.0},
            {"delay_rate": 1.01},
            {"slow_fraction": -0.5},
            {"delay_mean": 0.0},
            {"slow_factor": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(FaultError):
            FaultConfig(**kwargs)

    def test_active(self):
        assert not FaultConfig().active
        assert FaultConfig(drop_rate=0.1).active
        assert FaultConfig(crash_rate=0.1).active
        assert FaultConfig(slow_fraction=0.1).active

    def test_plane_active_includes_droppers(self):
        assert not FaultPlane().active
        assert FaultPlane(droppers=[3]).active
        assert FaultPlane(FaultConfig(delay_rate=0.2)).active


class TestTransmit:
    def test_deterministic_schedule(self):
        config = FaultConfig(
            drop_rate=0.2, duplicate_rate=0.1, delay_rate=0.15, seed=11
        )
        a, b = FaultPlane(config), FaultPlane(config)
        outcomes_a = [a.transmit(0, i) for i in range(200)]
        outcomes_b = [b.transmit(0, i) for i in range(200)]
        assert outcomes_a == outcomes_b
        assert any(o.dropped for o in outcomes_a)
        assert any(o.duplicated for o in outcomes_a)
        assert any(o.delay > 0 for o in outcomes_a)

    def test_droppers_consume_no_randomness(self):
        plane = FaultPlane(droppers=[5, 9])
        state = plane.rng.bit_generator.state
        for dest in (5, 9, 5):
            assert plane.transmit(0, dest) == FaultOutcome(dropped=True)
        assert plane.transmit(0, 7) == FaultOutcome()
        assert plane.rng.bit_generator.state == state
        assert plane.stats.messages == 4
        assert plane.stats.dropped == 3

    def test_always_drops(self):
        plane = FaultPlane(droppers=[5])
        assert plane.always_drops(5)
        assert not plane.always_drops(6)

    def test_counters_published(self):
        plane = FaultPlane(FaultConfig(drop_rate=1.0, seed=1))
        with collecting() as registry:
            plane.transmit(0, 1)
            plane.transmit(0, 2)
        assert registry.snapshot()["counters"]["faults.dropped"] == 2


class TestCrash:
    def test_crash_requires_wired_system(self):
        plane = FaultPlane(FaultConfig(crash_rate=1.0))
        with pytest.raises(FaultError, match="attach_system"):
            plane.transmit(0, 1)

    def test_crash_node_removes_victim(self):
        system = fresh_storage_system(n_nodes=16, n_keys=50, seed=3)
        plane = FaultPlane().attach_system(system)
        victim = system.overlay.node_ids()[4]
        assert plane.crash_node(victim)
        assert victim not in system.overlay.nodes
        assert victim in plane.stats.crashed_nodes
        assert plane.stats.crashed == 1

    def test_origin_is_protected(self):
        system = fresh_storage_system(n_nodes=16, n_keys=50, seed=3)
        plane = FaultPlane().attach_system(system)
        origin = system.overlay.node_ids()[0]
        plane.begin_query(origin)
        assert not plane.crash_node(origin)
        assert origin in system.overlay.nodes

    def test_min_live_floor(self):
        system = fresh_storage_system(n_nodes=4, n_keys=20, seed=5)
        plane = FaultPlane().attach_system(system, min_live=3)
        ids = system.overlay.node_ids()
        assert plane.crash_node(ids[0])
        # Now at the floor: no further crashes fire.
        assert not plane.crash_node(system.overlay.node_ids()[0])
        assert len(system.overlay) == 3

    def test_replicated_crash_preserves_data(self):
        system = fresh_storage_system(n_nodes=16, n_keys=120, seed=9)
        manager = ReplicationManager(system, degree=2)
        plane = FaultPlane().attach_system(system, replication=manager)
        total = sum(s.element_count for s in system.stores.values())
        for _ in range(3):
            plane.crash_node(system.overlay.node_ids()[1])
        assert sum(s.element_count for s in system.stores.values()) == total
        assert manager.stats.elements_lost == 0


class TestSlowNodes:
    def test_membership_is_deterministic_and_order_free(self):
        config = FaultConfig(slow_fraction=0.3, slow_factor=5.0, seed=2)
        a, b = FaultPlane(config), FaultPlane(config)
        nodes = list(range(64))
        forward = {n: a.slow_factor(n) for n in nodes}
        backward = {n: b.slow_factor(n) for n in reversed(nodes)}
        assert forward == backward
        assert set(forward.values()) == {1.0, 5.0}

    def test_zero_fraction_is_identity(self):
        plane = FaultPlane()
        assert all(plane.slow_factor(n) == 1.0 for n in range(10))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(FaultError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultError):
            RetryPolicy(budget=0)
        with pytest.raises(FaultError):
            RetryPolicy(timeout=-1.0)
        with pytest.raises(FaultError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(FaultError):
            RetryPolicy(max_jitter=-0.1)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(timeout=1.0, backoff=2.0, max_jitter=0.0)
        rng = np.random.default_rng(0)
        waits = [policy.wait_for(a, rng) for a in (1, 2, 3)]
        assert waits == [1.0, 2.0, 4.0]

    def test_zero_jitter_consumes_no_randomness(self):
        policy = RetryPolicy(max_jitter=0.0)
        rng = np.random.default_rng(0)
        state = rng.bit_generator.state
        policy.wait_for(1, rng)
        assert rng.bit_generator.state == state

    def test_jitter_bounded(self):
        policy = RetryPolicy(timeout=1.0, backoff=1.0, max_jitter=0.5)
        rng = np.random.default_rng(4)
        for attempt in (1, 2, 3):
            wait = policy.wait_for(attempt, rng)
            assert 1.0 <= wait <= 1.5
