"""Property test: an inert fault plane is bit-identical to no plane at all.

The resilience machinery (fault plane + retry policy + replication manager)
must be free when unused: with every fault rate at zero the engine takes the
unmodified fast path, consumes no extra randomness, and produces the same
matches, the same :class:`QueryStats`, and the same trace totals as a plain
:class:`OptimizedEngine` — across curve families, query classes, and both
aggregation modes.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import KeywordSpace, SquidSystem, WordDimension
from repro.core.engine import OptimizedEngine
from repro.core.plancache import PlanCache
from repro.core.replication import ReplicationManager
from repro.faults import FaultConfig, FaultPlane, RetryPolicy
from repro.overlay.chord import RouteCache
from tests.core.conftest import WORDS

#: One representative query per class the paper distinguishes: fully
#: specified, partial (prefix + wildcard), and all-wildcard.
QUERY_CLASSES = ["(computer, data)", "(comp*, *)", "(*, *)"]


def _build(curve_name: str, seed: int) -> SquidSystem:
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=8)
    system = SquidSystem.create(space, n_nodes=16, curve=curve_name, seed=seed)
    rng = np.random.default_rng(seed + 1)
    keys = [
        (WORDS[rng.integers(len(WORDS))], WORDS[rng.integers(len(WORDS))])
        for _ in range(80)
    ]
    system.publish_many(keys)
    return system


def _run(system, engine, seed):
    """Execute every query class from a seeded origin with cold caches."""
    rng = np.random.default_rng(seed + 2)
    ids = system.overlay.node_ids()
    system.attach_tracer()
    out = []
    try:
        for i, query in enumerate(QUERY_CLASSES):
            system.plan_cache = PlanCache()
            system.overlay.route_cache = RouteCache()
            origin = ids[(seed + i) % len(ids)]
            res = engine.execute(system, query, origin=origin, rng=rng)
            out.append(
                (
                    sorted(str(e.key) for e in res.matches),
                    res.stats.as_dict(),
                    res.trace.totals(),
                    res.complete,
                    res.unresolved_ranges,
                )
            )
    finally:
        system.detach_tracer()
    return out


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    curve_name=st.sampled_from(["hilbert", "zorder", "gray"]),
    seed=st.integers(0, 1000),
    aggregate=st.booleans(),
)
def test_inert_plane_is_bit_identical(curve_name, seed, aggregate):
    system = _build(curve_name, seed)
    plain = OptimizedEngine(aggregate=aggregate)
    armed = OptimizedEngine(
        aggregate=aggregate,
        fault_plane=FaultPlane(FaultConfig(seed=seed)),
        retry=RetryPolicy(),
        replication=ReplicationManager(system, degree=2),
    )
    reference = _run(system, plain, seed)
    resilient = _run(system, armed, seed)
    assert resilient == reference
    # And nothing was ever marked incomplete.
    for _, _, _, complete, unresolved in reference:
        assert complete and unresolved == ()
