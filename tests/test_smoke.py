"""Smoke target: the CLI demo plus one traced query end to end.

Fast, dependency-free checks that the package wires together: the ``demo``
subcommand runs, the ``trace`` subcommand reconstructs a refinement tree,
and (when ruff is installed, e.g. via the ``dev`` extra) the source tree
passes ``ruff check`` with the configuration in ``pyproject.toml``.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_demo_smoke(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "doc-net" in out
    assert "msgs" in out


def test_traced_query_smoke(capsys):
    assert main(["trace", "(comp*, *)", "--nodes", "32", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "query '(comp*, *)'" in out
    assert "stats:" in out
    assert "metrics:" in out
    assert "engine.optimized.queries" in out


def test_traced_query_json_smoke(capsys):
    import json

    assert main(["trace", "--json", "--nodes", "16"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["query"] == "(comp*, *)"
    assert payload["tree"]["children"], "root span should have children"


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    ruff = shutil.which("ruff")
    proc = subprocess.run(
        [ruff, "check", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
