"""Integration tests for the example scripts.

Each example's ``main()`` is imported and run with its scale constants
shrunk, so the demonstrated flows stay exercised by CI without the
full-size runtimes.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "guarantee check" in out

    def test_newsgroups(self, capsys):
        load_example("newsgroups").main()
        out = capsys.readouterr().out
        assert "completeness check" in out

    def test_file_sharing_shrunk(self, capsys):
        module = load_example("file_sharing")
        module.N_PEERS = 60
        module.N_DOCS = 800
        module.main()
        out = capsys.readouterr().out
        assert "Squid answers every query completely" in out

    def test_grid_resource_discovery_shrunk(self, capsys):
        module = load_example("grid_resource_discovery")
        module.N_PEERS = 40
        module.N_RESOURCES = 600
        module.main()
        out = capsys.readouterr().out
        assert "range queries returned exactly" in out

    def test_churn_and_recovery(self, capsys):
        load_example("churn_and_recovery").main()
        out = capsys.readouterr().out
        assert "MISSED" not in out

    def test_topologies_shrunk(self, capsys):
        module = load_example("topologies")
        module.N_NODES = 64
        module.LOOKUPS = 40
        module.main()
        out = capsys.readouterr().out
        assert "Chord" in out and "Pastry" in out and "CAN" in out

    def test_tracing_a_query(self, capsys):
        module = load_example("tracing_a_query")
        module.N_PEERS = 32
        module.main()
        out = capsys.readouterr().out
        assert "trace totals == query stats" in out

    def test_attack_and_defense_shrunk(self, capsys):
        module = load_example("attack_and_defense")
        module.N_PEERS = 40
        module.N_DOCS = 400
        module.main()
        out = capsys.readouterr().out
        assert "droppers" in out
