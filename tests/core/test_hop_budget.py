"""Routing hop budget: the backstop against ring-walk cycles.

Historical context: crashing a node and querying *before* ``stabilize_node``
repairs the ring used to route the wrapped tail segment in a cycle forever
(the node's stale predecessor pointer defeated the wrap prune).  The hop
budget (:func:`repro.core.engine.default_hop_budget`) first turned that hang
into an honest ``complete=False`` partial; the wrap prune now decides from
the scan window instead of the stale pointer, so the same scenario completes
*exactly* over the survivors — asserted here, with no stabilization call
anywhere in this file.  The budget remains as a backstop for pathological
state (exercised via explicit tiny budgets below).
"""

from __future__ import annotations

import pytest

from repro.core.engine import NaiveEngine, OptimizedEngine, default_hop_budget
from repro.core.system import SquidSystem
from repro.errors import EngineError
from repro.keywords.dimensions import WordDimension
from repro.keywords.space import KeywordSpace
from repro.obs import collecting

ENGINES = ("optimized", "naive")


def _system(engine: str, seed: int = 7, n_nodes: int = 24) -> SquidSystem:
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=16)
    system = SquidSystem.create(space, n_nodes=n_nodes, seed=seed, engine=engine)
    system.publish(("computer", "network"), payload="doc-net")
    system.publish(("database", "theory"), payload="doc-db")
    return system


@pytest.mark.parametrize("engine", ENGINES)
def test_crashed_ring_query_completes_exactly(engine):
    """The regression itself: query a crashed ring WITHOUT stabilizing.

    Crashing the highest-id node leaves the wrap-around pointers stale; a
    full-space query used to route the tail segment in a cycle (never
    returning, later an honest partial).  With the scan-window wrap prune
    the walk terminates on its own: the answer is complete and exactly the
    brute-force oracle over the survivors.
    """
    system = _system(engine)
    system.fail_node(max(system.overlay.node_ids()))
    # Deliberately NO overlay.stabilize_node(...) here.
    result = system.query("(*, *)", origin=min(system.overlay.node_ids()))
    assert result.complete is True
    assert not result.unresolved_ranges
    want = sorted(e.payload for e in system.brute_force_matches("(*, *)"))
    assert sorted(e.payload for e in result.matches) == want


@pytest.mark.parametrize("engine", ENGINES)
def test_crashed_ring_matches_have_no_duplicates(engine):
    """A cyclic walk re-scans stores; the result must stay a set."""
    system = _system(engine)
    system.fail_node(max(system.overlay.node_ids()))
    result = system.query("(*, *)", origin=min(system.overlay.node_ids()))
    assert len({id(e) for e in result.matches}) == len(result.matches)


@pytest.mark.parametrize(
    "make_engine",
    [lambda: OptimizedEngine(hop_budget=2), lambda: NaiveEngine(hop_budget=1)],
    ids=ENGINES,
)
def test_exhausted_budget_counts_metric(make_engine):
    system = _system("optimized")
    with collecting() as registry:
        system.query(
            "(*, *)", engine=make_engine(), origin=min(system.overlay.node_ids())
        )
    counters = registry.snapshot()["counters"]
    assert counters.get("query.hop_budget_exhausted.total") == 1


@pytest.mark.parametrize(
    "make_engine",
    [lambda: OptimizedEngine(hop_budget=2), lambda: NaiveEngine(hop_budget=1)],
    ids=ENGINES,
)
def test_tiny_explicit_budget_trips_on_a_healthy_ring(make_engine):
    """An explicit budget below the healthy work count yields a partial."""
    system = _system("optimized")
    result = system.query(
        "(*, *)", engine=make_engine(), origin=system.overlay.node_ids()[0]
    )
    assert result.complete is False
    assert result.unresolved_ranges


@pytest.mark.parametrize("engine_cls", [OptimizedEngine, NaiveEngine])
def test_default_budget_is_invisible_on_healthy_rings(engine_cls):
    """A generous explicit budget must not change any healthy answer.

    Twin systems, same seed: querying the same system twice would flip
    the plan-cache hit flag, which is exactly the kind of cost-side
    difference this test must not confuse with an answer difference.
    """
    plain_sys, budget_sys = _system("optimized"), _system("optimized")
    origin = plain_sys.overlay.node_ids()[0]
    for text in ["(computer, network)", "(comp*, *)", "(*, *)"]:
        plain = plain_sys.query(text, engine=engine_cls(), origin=origin)
        budgeted = budget_sys.query(
            text, engine=engine_cls(hop_budget=1_000_000), origin=origin
        )
        assert plain.complete and budgeted.complete
        assert [e.payload for e in plain.matches] == [
            e.payload for e in budgeted.matches
        ]
        assert plain.stats.as_dict() == budgeted.stats.as_dict()


def test_default_hop_budget_scales_with_ring_size():
    assert default_hop_budget(1) == 1024
    assert default_hop_budget(64) == 4096
    assert default_hop_budget(1000) == 64_000


@pytest.mark.parametrize("engine_cls", [OptimizedEngine, NaiveEngine])
def test_hop_budget_validation(engine_cls):
    with pytest.raises(EngineError):
        engine_cls(hop_budget=0)


def test_stabilized_ring_still_completes():
    """The repo convention still works: stabilize, then query completes."""
    system = _system("optimized")
    system.fail_node(max(system.overlay.node_ids()))
    for node in system.overlay.node_ids():
        system.overlay.stabilize_node(node)
    result = system.query("(*, *)", origin=min(system.overlay.node_ids()))
    assert result.complete is True
