"""Differential testing across curve families.

The curve is an implementation detail of placement: any registered curve
must yield exactly the same query results on the same workload.  Costs may
differ — that is the ablation — but correctness may not.
"""

import numpy as np
import pytest

from repro import SquidSystem
from repro.sfc import CURVES
from repro.workloads.documents import DocumentWorkload

QUERIES = ["(comp*, *)", "(*, net*)", "(c*, s*)", "(*, *)", "(zzz*, *)"]


@pytest.fixture(scope="module")
def systems():
    workload = DocumentWorkload.generate(2, 600, vocabulary_size=800, bits=12, rng=0)
    built = {}
    for name in CURVES:
        system = SquidSystem.create(workload.space, n_nodes=48, curve=name, seed=1)
        system.publish_many(workload.keys, payloads=list(range(len(workload.keys))))
        built[name] = system
    return built


class TestResultEquivalence:
    @pytest.mark.parametrize("query", QUERIES)
    def test_all_curves_same_matches(self, systems, query):
        payload_sets = {
            name: sorted(e.payload for e in system.query(query, rng=2).matches)
            for name, system in systems.items()
        }
        reference = payload_sets["hilbert"]
        for name, payloads in payload_sets.items():
            assert payloads == reference, f"{name} disagrees on {query}"

    def test_all_curves_match_oracle(self, systems):
        for name, system in systems.items():
            got = sorted(e.payload for e in system.query("(comp*, *)", rng=3).matches)
            want = sorted(e.payload for e in system.brute_force_matches("(comp*, *)"))
            assert got == want, name


class TestCostOrdering:
    def test_hilbert_cheapest_on_average(self, systems):
        """The ablation claim, end-to-end: hilbert <= gray <= zorder in mean
        processing nodes over a mixed query set."""
        costs = {}
        for name, system in systems.items():
            total = 0
            for query in QUERIES[:4]:
                total += system.query(query, rng=4).stats.processing_node_count
            costs[name] = total
        assert costs["hilbert"] <= costs["gray"] * 1.1
        assert costs["hilbert"] <= costs["zorder"]

    def test_placement_differs_between_curves(self, systems):
        """Sanity: the curves genuinely place keys differently."""
        loads = {
            name: tuple(sorted(system.node_loads().items()))
            for name, system in systems.items()
        }
        assert loads["hilbert"] != loads["zorder"]
