"""Tests for the initiator-side query-plan cache.

The load-bearing property is *exactness*: a query planned from cache must
return the identical match set and identical cost statistics as the same
query planned from scratch — the cache may only skip geometry work, never
change what is sent where.
"""

import pytest

from repro.core.plancache import PlanCache, plan_key
from repro.core.system import SquidSystem
from repro.keywords.dimensions import WordDimension
from repro.keywords.space import KeywordSpace
from repro.obs import collecting
from repro.sfc.hilbert import HilbertCurve
from repro.sfc.regions import Region

WORDS = ["computer", "computation", "network", "netbook", "storage", "memory"]


def build_system(engine="optimized", seed=11, n_nodes=24, n_docs=120):
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=8)
    system = SquidSystem.create(space, n_nodes=n_nodes, seed=seed, engine=engine)
    import random

    rng = random.Random(seed)
    for i in range(n_docs):
        system.publish((rng.choice(WORDS), rng.choice(WORDS)), payload=i)
    return system


class TestPlanCacheLRU:
    def test_get_miss_then_hit(self):
        cache = PlanCache(capacity=2)
        assert cache.get(("k1",)) is None
        cache.put(("k1",), "plan-1")
        assert cache.get(("k1",)) == "plan-1"
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.get(("a",))  # refresh "a": "b" becomes the LRU entry
        cache.put(("c",), 3)
        assert cache.evictions == 1
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_clear_keeps_counters(self):
        cache = PlanCache()
        cache.put(("a",), 1)
        cache.get(("a",))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_metrics_published_when_collecting(self):
        cache = PlanCache(capacity=1)
        with collecting() as registry:
            cache.get(("a",))
            cache.put(("a",), 1)
            cache.get(("a",))
            cache.put(("b",), 2)  # evicts "a"
        assert registry.counter("plan_cache.misses").value == 1
        assert registry.counter("plan_cache.hits").value == 1
        assert registry.counter("plan_cache.evictions").value == 1


class TestPlanKey:
    def test_key_is_order_insensitive_over_boxes(self):
        curve = HilbertCurve(2, 8)
        box_a = ((0, 10), (5, 9))
        box_b = ((20, 30), (1, 2))
        r1 = Region.from_bounds(box_a)
        r2 = Region.from_bounds(box_b)
        union_ab = Region(r1.boxes + r2.boxes)
        union_ba = Region(r2.boxes + r1.boxes)
        assert plan_key(curve, union_ab, "optimized", 1) == plan_key(
            curve, union_ba, "optimized", 1
        )

    def test_key_separates_engines_params_and_curves(self):
        curve = HilbertCurve(2, 8)
        region = Region.from_bounds([(0, 10), (0, 10)])
        base = plan_key(curve, region, "optimized", 1)
        assert base != plan_key(curve, region, "naive", 1)
        assert base != plan_key(curve, region, "optimized", 2)
        assert base != plan_key(HilbertCurve(2, 9), region, "optimized", 1)


@pytest.mark.parametrize("engine", ["optimized", "naive"])
class TestCachedQueriesExact:
    @pytest.mark.parametrize("query", ["(comp*, *)", "(network, mem*)", "(*, storage)"])
    def test_hit_returns_identical_result(self, engine, query):
        system = build_system(engine=engine)
        origin = system.overlay.node_ids()[0]
        cold = system.query(query, origin=origin, rng=0)
        warm = system.query(query, origin=origin, rng=0)
        assert not cold.stats.plan_cache_hit
        assert warm.stats.plan_cache_hit
        assert {e.payload for e in cold.matches} == {e.payload for e in warm.matches}
        cold_stats = cold.stats.as_dict()
        warm_stats = warm.stats.as_dict()
        cold_stats.pop("plan_cache_hit")
        warm_stats.pop("plan_cache_hit")
        assert cold_stats == warm_stats

    def test_disabled_cache_never_hits(self, engine):
        system = build_system(engine=engine)
        system.plan_cache = None
        origin = system.overlay.node_ids()[0]
        for _ in range(2):
            result = system.query("(comp*, *)", origin=origin, rng=0)
            assert not result.stats.plan_cache_hit

    def test_membership_churn_keeps_cached_plans_exact(self, engine):
        """Plans are pure geometry: overlay churn must not stale them."""
        system = build_system(engine=engine)
        origin = system.overlay.node_ids()[0]
        system.query("(comp*, *)", origin=origin, rng=0)
        # Join a node and move keys; the cached plan stays valid.
        new_id = next(
            i for i in range(system.curve.size) if i not in system.stores
        )
        system.add_node(new_id)
        warm = system.query("(comp*, *)", origin=origin, rng=0)
        assert warm.stats.plan_cache_hit
        expected = {e.payload for e in system.brute_force_matches("(comp*, *)")}
        assert {e.payload for e in warm.matches} == expected

    def test_publish_after_hit_still_exact(self, engine):
        system = build_system(engine=engine)
        origin = system.overlay.node_ids()[0]
        system.query("(comp*, *)", origin=origin, rng=0)
        system.publish(("computer", "storage"), payload="fresh")
        warm = system.query("(comp*, *)", origin=origin, rng=0)
        assert warm.stats.plan_cache_hit
        assert "fresh" in {e.payload for e in warm.matches}
