"""Tests for the hot-spot mitigation (query-result caching) extension."""

import numpy as np
import pytest

from repro.core.hotspots import CachingQueryLayer, HotspotMonitor
from repro.core.metrics import QueryStats
from repro.errors import EngineError
from tests.core.conftest import fresh_storage_system


def layered_system(seed=0, **kwargs):
    system = fresh_storage_system(n_nodes=24, n_keys=200, seed=seed)
    return system, CachingQueryLayer(system, **kwargs)


class TestBasics:
    def test_capacity_validation(self):
        system = fresh_storage_system(n_nodes=8, n_keys=10)
        with pytest.raises(EngineError):
            CachingQueryLayer(system, capacity_per_node=0)

    def test_first_query_misses_second_hits(self):
        _, layer = layered_system()
        layer.query("(comp*, *)", rng=0)
        assert layer.stats.misses == 1
        layer.query("(comp*, *)", rng=1)
        assert layer.stats.hits == 1

    def test_hit_returns_same_matches(self):
        _, layer = layered_system(seed=1)
        first = layer.query("(comp*, *)", rng=0)
        second = layer.query("(comp*, *)", rng=1)
        assert sorted(map(id, first.matches)) == sorted(map(id, second.matches))

    def test_hit_is_cheaper(self):
        _, layer = layered_system(seed=2)
        miss = layer.query("(comp*, *)", rng=0)
        hit = layer.query("(comp*, *)", rng=1)
        assert hit.stats.messages < miss.stats.messages
        assert hit.stats.processing_node_count == 1

    def test_home_is_deterministic(self):
        _, layer = layered_system(seed=3)
        assert layer.home_of("(comp*, *)") == layer.home_of("(comp*, *)")
        # Different queries may share a home but usually differ.
        homes = {layer.home_of(f"({w}*, *)") for w in ["a", "f", "m", "s", "w"]}
        assert len(homes) > 1

    def test_results_remain_exact(self):
        system, layer = layered_system(seed=4)
        for q in ["(comp*, *)", "(*, net*)", "(data, grid)"]:
            for _ in range(2):  # miss then hit
                got = sorted(map(id, layer.query(q, rng=0).matches))
                want = sorted(map(id, system.brute_force_matches(q)))
                assert got == want


class TestInvalidation:
    def test_publish_invalidates(self):
        system, layer = layered_system(seed=5)
        before = layer.query("(zzz*, *)", rng=0)
        assert before.match_count == 0
        layer.publish(("zzzebra", "anything"), payload="new")
        after = layer.query("(zzz*, *)", rng=1)
        assert after.match_count == 1
        assert layer.stats.stale_refreshes >= 0  # entry was stale or evicted

    def test_stale_entry_counts_refresh(self):
        _, layer = layered_system(seed=6)
        layer.query("(comp*, *)", rng=0)
        layer.publish(("computer", "extra"))
        layer.query("(comp*, *)", rng=1)
        assert layer.stats.stale_refreshes == 1


class TestEviction:
    def test_capacity_enforced(self):
        system, layer = layered_system(seed=7, capacity_per_node=2)
        # Many distinct queries with the same first letter share a home.
        for w in ["aa", "ab", "ac", "ad", "ae"]:
            layer.query(f"({w}*, *)", rng=0)
        for cache in layer._caches.values():
            assert len(cache) <= 2
        assert layer.stats.evictions > 0

    def test_popular_entries_survive_eviction(self):
        _, layer = layered_system(seed=8, capacity_per_node=2)
        for _ in range(3):
            layer.query("(aa*, *)", rng=0)  # popular
        layer.query("(ab*, *)", rng=0)
        layer.query("(ac*, *)", rng=0)  # forces an eviction at that home
        hits_before = layer.stats.hits
        layer.query("(aa*, *)", rng=0)
        assert layer.stats.hits == hits_before + 1  # popular entry survived


class TestMonitor:
    def test_records_processing_load(self):
        stats = QueryStats()
        stats.record_processing(1, 0)
        stats.record_processing(2, 0)
        monitor = HotspotMonitor()
        monitor.record(stats)
        monitor.record(stats)
        assert monitor.max_load() == 2
        assert monitor.total_load() == 4
        assert monitor.hottest(1)[0][1] == 2

    def test_empty_monitor(self):
        monitor = HotspotMonitor()
        assert monitor.max_load() == 0
        assert monitor.hottest() == []


class TestHotspotMitigation:
    def test_caching_flattens_zipf_query_load(self):
        """A Zipf-repeating query stream: caching reduces the hottest node's
        load and the total messages."""
        system = fresh_storage_system(n_nodes=32, n_keys=300, seed=9)
        queries = ["(comp*, *)", "(net*, *)", "(data*, *)", "(s*, *)", "(gr*, *)"]
        rng = np.random.default_rng(10)
        weights = np.array([1 / (i + 1) for i in range(len(queries))])
        weights /= weights.sum()
        stream = [queries[i] for i in rng.choice(len(queries), size=80, p=weights)]

        plain = HotspotMonitor()
        plain_msgs = 0
        for q in stream:
            result = system.query(q, rng=11)
            plain.record(result.stats)
            plain_msgs += result.stats.messages

        layer = CachingQueryLayer(system)
        cached_msgs = 0
        for q in stream:
            cached_msgs += layer.query(q, rng=11).stats.messages

        assert layer.stats.hit_rate > 0.8
        assert cached_msgs < plain_msgs / 2
        assert layer.monitor.max_load() <= plain.max_load()


class TestCacheReplication:
    def test_replicas_validation(self):
        system = fresh_storage_system(n_nodes=8, n_keys=10)
        with pytest.raises(EngineError):
            CachingQueryLayer(system, replicas=0)

    def test_homes_are_consecutive_ring_nodes(self):
        system = fresh_storage_system(n_nodes=24, n_keys=100, seed=30)
        layer = CachingQueryLayer(system, replicas=3)
        homes = layer.homes_of("(comp*, *)")
        assert len(homes) == 3
        for a, b in zip(homes, homes[1:]):
            assert system.overlay.successor_id(a) == b

    def test_replicated_cache_still_exact(self):
        system = fresh_storage_system(n_nodes=24, n_keys=150, seed=31)
        layer = CachingQueryLayer(system, replicas=3)
        want = sorted(map(id, system.brute_force_matches("(comp*, *)")))
        for _ in range(4):
            got = sorted(map(id, layer.query("(comp*, *)", rng=32).matches))
            assert got == want

    def test_replication_spreads_hot_query_load(self):
        """One very hot query: with k cache replicas, no single peer absorbs
        every repetition."""
        system = fresh_storage_system(n_nodes=32, n_keys=200, seed=33)
        single = CachingQueryLayer(system, replicas=1)
        spread = CachingQueryLayer(system, replicas=4)
        for i in range(60):
            single.query("(comp*, *)", rng=100 + i)
            spread.query("(comp*, *)", rng=100 + i)
        assert spread.monitor.max_load() < single.monitor.max_load()
