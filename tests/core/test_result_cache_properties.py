"""Property test: result caching never changes what a query returns.

The ISSUE's correctness bar: two identically-built systems, one with a
result cache and one without, are driven through the *same* interleaved
sequence of publishes, removals, membership churn (joins, graceful leaves,
crashes), and queries — and every query must return the identical match
set on both.  Runs across every registered curve family and both engines, with
a deliberately tiny cache and a coarse invalidation cover so eviction,
collateral invalidation, and segment math are all exercised.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resultcache import ResultCache
from repro.core.system import SquidSystem
from repro.keywords.dimensions import WordDimension
from repro.keywords.space import KeywordSpace
from repro.sfc import CURVES

WORDS = ["computer", "computation", "network", "netbook", "storage", "memory"]

QUERIES = [
    "(computer, *)",
    "(comp*, *)",
    "(*, storage)",
    "(net*, mem*)",
    "(*, *)",
    "(storage, network)",
]

_op = st.one_of(
    st.tuples(st.just("query"), st.integers(0, len(QUERIES) - 1)),
    st.tuples(
        st.just("publish"),
        st.integers(0, len(WORDS) - 1),
        st.integers(0, len(WORDS) - 1),
    ),
    st.tuples(
        st.just("unpublish"),
        st.integers(0, len(WORDS) - 1),
        st.integers(0, len(WORDS) - 1),
    ),
    st.tuples(st.just("join"), st.integers(0, 255)),
    st.tuples(st.just("leave"), st.integers(0, 7)),
    st.tuples(st.just("crash"), st.integers(0, 7)),
)


def _build(space, curve, engine, seed, cached):
    cache = (
        ResultCache(capacity=4, invalidation_level=2) if cached else False
    )
    system = SquidSystem.create(
        space,
        n_nodes=6,
        curve=curve,
        seed=seed,
        engine=engine,
        result_cache=cache,
    )
    for i, word in enumerate(WORDS):
        system.publish((word, WORDS[(i * 3 + 1) % len(WORDS)]), payload=f"seed-{i}")
    return system


def _apply(system, op, publishes):
    kind = op[0]
    if kind == "query":
        res = system.query(QUERIES[op[1]], origin=system.overlay.node_ids()[0])
        return sorted((e.index, e.key, str(e.payload)) for e in res.matches)
    if kind == "publish":
        system.publish((WORDS[op[1]], WORDS[op[2]]), payload=f"pub-{publishes}")
    elif kind == "unpublish":
        system.unpublish((WORDS[op[1]], WORDS[op[2]]))
    elif kind == "join":
        if op[1] not in system.overlay.node_ids():
            system.add_node(op[1])
    elif kind == "leave":
        ids = system.overlay.node_ids()
        if len(ids) > 2:
            system.remove_node(ids[op[1] % len(ids)])
    else:  # crash
        ids = system.overlay.node_ids()
        if len(ids) > 2:
            system.fail_node(ids[op[1] % len(ids)])
            # Crashes leave stale routing state; querying an unstabilized
            # ring can cycle (pre-existing overlay behaviour, same repair
            # as tests/overlay/test_route_cache.py and the churn sim).
            for node in system.overlay.node_ids():
                system.overlay.stabilize_node(node)
    return None


@pytest.mark.parametrize("curve", sorted(CURVES))
@pytest.mark.parametrize("engine", ["optimized", "naive"])
@given(ops=st.lists(_op, min_size=1, max_size=14))
@settings(max_examples=15, deadline=None)
def test_cached_equals_uncached_under_interleaved_mutation(curve, engine, ops):
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=4)
    cached = _build(space, curve, engine, seed=7, cached=True)
    plain = _build(space, curve, engine, seed=7, cached=False)
    assert cached.overlay.node_ids() == plain.overlay.node_ids()
    publishes = 0
    for op in ops:
        got = _apply(cached, op, publishes)
        want = _apply(plain, op, publishes)
        if op[0] == "publish":
            publishes += 1
        if op[0] == "query":
            assert got == want, f"stale cached answer after {op}"
    # Final sweep: every pool query agrees, cached and brute-force.
    for query in QUERIES:
        final = _apply(cached, ("query", QUERIES.index(query)), publishes)
        assert final == _apply(plain, ("query", QUERIES.index(query)), publishes)
        brute = sorted(
            (e.index, e.key, str(e.payload))
            for e in cached.brute_force_matches(query)
        )
        assert final == brute
