"""Tests for the query EXPLAIN API."""


class TestExplain:
    def test_keys_present(self, storage_system):
        plan = storage_system.explain("(comp*, *)")
        assert set(plan) == {
            "query",
            "region_bounds",
            "clusters_per_level",
            "clusters_at_node_granularity",
            "estimated_peers_lower_bound",
            "index_bits",
        }

    def test_region_bounds_shape(self, storage_system):
        plan = storage_system.explain("(comp*, *)")
        assert len(plan["region_bounds"]) == 2
        lo, hi = plan["region_bounds"][1]
        assert lo == 0 and hi == storage_system.space.side - 1  # wildcard dim

    def test_cluster_counts_monotone(self, storage_system):
        plan = storage_system.explain("(comp*, net*)")
        counts = plan["clusters_per_level"]
        assert counts == sorted(counts)
        assert counts[0] == 1

    def test_exact_query_is_one_cluster(self, hilbert_storage_system):
        # Hilbert-calibrated: the exact terms' interval stays one cluster on
        # one peer; other families may split it, so the fixture pins the curve.
        plan = hilbert_storage_system.explain("(computer, network)")
        assert plan["clusters_at_node_granularity"] == 1
        assert plan["estimated_peers_lower_bound"] == 1

    def test_broader_query_estimates_more_peers(self, storage_system):
        narrow = storage_system.explain("(computer, network)")
        broad = storage_system.explain("(*, net*)")
        assert (
            broad["estimated_peers_lower_bound"]
            >= narrow["estimated_peers_lower_bound"]
        )

    def test_explain_touches_no_store(self, storage_system):
        """Explain is an estimate: no messages, no store access needed."""
        before = storage_system.total_elements()
        storage_system.explain("(*, *)")
        assert storage_system.total_elements() == before

    def test_estimate_correlates_with_actual_cost(self, storage_system):
        plan = storage_system.explain("(comp*, *)")
        actual = storage_system.query("(comp*, *)", rng=0).stats
        # The lower bound must not exceed the actual processing population
        # by more than the snapshot granularity allows.
        assert plan["estimated_peers_lower_bound"] <= 3 * max(
            actual.processing_node_count, 1
        )
