"""Result cache x route cache composition under a churn burst.

Mirror of ``tests/overlay/test_route_cache.py``'s zero-stale guard, one
layer up: a system running with *both* caches is driven through a skewed
query trace with a randomized join/leave/crash burst in the middle, and
after every membership event each pool query must return exactly the
brute-force answer over the surviving stores.  Route-cache staleness
would misroute sub-queries; result-cache staleness would serve matches
from dead or reshuffled segments — either shows up as a mismatch here.
"""

from __future__ import annotations

import random

from repro.core.resultcache import ResultCache
from repro.core.system import SquidSystem
from repro.keywords.dimensions import WordDimension
from repro.keywords.space import KeywordSpace

WORDS = ["computer", "computation", "network", "netbook", "storage", "memory"]

QUERIES = ["(computer, *)", "(comp*, *)", "(*, storage)", "(net*, *)"]


def _assert_queries_exact(system):
    for query in QUERIES:
        res = system.query(query, origin=system.overlay.node_ids()[0])
        got = sorted((e.index, e.key, str(e.payload)) for e in res.matches)
        want = sorted(
            (e.index, e.key, str(e.payload))
            for e in system.brute_force_matches(query)
        )
        assert got == want, f"stale answer for {query}"


def test_zero_stale_results_after_churn_burst():
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=6)
    system = SquidSystem.create(
        space,
        n_nodes=10,
        seed=17,
        result_cache=ResultCache(capacity=16, invalidation_level=3),
    )
    assert system.overlay.route_cache is not None  # both caches in play
    rng = random.Random(9)
    for i in range(60):
        system.publish(
            (WORDS[rng.randrange(6)], WORDS[rng.randrange(6)]), payload=i
        )
    # Warm both caches on the full pool.
    _assert_queries_exact(system)
    assert len(system.result_cache) == len(QUERIES)
    assert system.result_cache.hits == 0

    for step in range(25):
        action = rng.random()
        live = system.overlay.node_ids()
        if action < 0.4 or len(live) < 4:
            candidate = rng.randrange(system.overlay.space)
            if candidate not in live:
                system.add_node(candidate)
        elif action < 0.7:
            system.remove_node(rng.choice(live))
        else:
            system.fail_node(rng.choice(live))
            for node in system.overlay.node_ids():
                system.overlay.stabilize_node(node)
        # Interleave cached queries so entries installed mid-burst are
        # themselves churned over in later steps.
        _assert_queries_exact(system)
        if step % 5 == 0:
            system.publish(
                (WORDS[step % 6], WORDS[(step * 2) % 6]), payload=f"mid-{step}"
            )
    # The trace was skewed enough for the cache to matter at all.
    assert system.result_cache.hits > 0
    assert system.result_cache.invalidations > 0
    _assert_queries_exact(system)
