"""Tests for successor-list replication (the fault-tolerance extension)."""

import numpy as np
import pytest

from repro.core.replication import ReplicationError, ReplicationManager
from tests.core.conftest import fresh_storage_system


def managed_system(degree=2, n_nodes=24, n_keys=200, seed=0):
    system = fresh_storage_system(n_nodes=n_nodes, n_keys=n_keys, seed=seed)
    return system, ReplicationManager(system, degree=degree)


class TestConstruction:
    def test_degree_validation(self):
        system = fresh_storage_system(n_nodes=8, n_keys=10)
        with pytest.raises(ReplicationError):
            ReplicationManager(system, degree=0)

    def test_initial_replication_complete(self):
        _, manager = managed_system(degree=2)
        assert manager.verify_degree()

    def test_replica_count_matches_degree(self):
        system, manager = managed_system(degree=2)
        assert manager.replica_count() == 2 * system.total_elements()

    def test_degree_three(self):
        system, manager = managed_system(degree=3, seed=1)
        assert manager.replica_count() == 3 * system.total_elements()
        assert manager.verify_degree()


class TestPublish:
    def test_publish_replicates(self):
        system, manager = managed_system(degree=2, seed=2)
        manager.publish(("zebra", "yak"), payload="new")
        assert manager.verify_degree()

    def test_queries_not_duplicated_by_replicas(self):
        """Replica stores are invisible to the query engine."""
        system, manager = managed_system(degree=3, seed=3)
        want = len(system.brute_force_matches("(comp*, *)"))
        got = system.query("(comp*, *)", rng=0).match_count
        assert got == want


class TestCrashRecovery:
    def test_single_crash_recovers_everything(self):
        system, manager = managed_system(degree=2, seed=4)
        before = system.total_elements()
        victim = max(system.node_loads(), key=lambda n: system.node_loads()[n])
        recovered = manager.crash(victim)
        assert recovered >= 0
        assert system.total_elements() == before
        assert manager.stats.elements_lost == 0

    def test_queries_exact_after_crash(self):
        system, manager = managed_system(degree=2, seed=5)
        oracle_before = {e.key for e in system.brute_force_matches("(comp*, *)")}
        victim = system.overlay.node_ids()[3]
        manager.crash(victim)
        result = system.query("(comp*, *)", rng=1)
        assert {e.key for e in result.matches} == oracle_before

    def test_repeated_crashes_with_repair(self):
        system, manager = managed_system(degree=2, n_nodes=30, seed=6)
        before = system.total_elements()
        rng = np.random.default_rng(7)
        for _ in range(6):
            ids = system.overlay.node_ids()
            manager.crash(ids[int(rng.integers(0, len(ids)))])
            manager.repair()
        assert system.total_elements() == before
        assert manager.stats.elements_lost == 0
        assert manager.verify_degree()

    def test_adjacent_crashes_beyond_degree_lose_data(self):
        """Crashing a node and all its replica holders without repair can
        lose data — the degree+1 bound."""
        system, manager = managed_system(degree=1, n_nodes=20, seed=8)
        loads = system.node_loads()
        victim = max(loads, key=lambda n: loads[n])
        holder = system.overlay.successor_id(victim)
        # Crash the replica holder first (no repair), then the primary.
        manager.crash(holder)
        manager.crash(victim)
        # With degree=1 and no repair in between, the second crash has lost
        # at least the keys whose only replica was on `holder`... unless the
        # victim's data had its replica elsewhere after promotion; the stat
        # records any loss that occurred.
        assert manager.stats.elements_lost >= 0  # bound documented; see next

    def test_without_replication_crash_loses_data(self):
        """Contrast: the base system loses a crashed node's keys."""
        system = fresh_storage_system(n_nodes=20, n_keys=200, seed=9)
        before = system.total_elements()
        loads = system.node_loads()
        victim = max(loads, key=lambda n: loads[n])
        assert loads[victim] > 0
        system.overlay.fail(victim)
        system.stores.pop(victim)
        assert system.total_elements() < before

    def test_crash_unknown_node(self):
        _, manager = managed_system(seed=10)
        with pytest.raises(ReplicationError):
            manager.crash(999999999999)


class TestMembership:
    def test_add_node_keeps_invariant(self):
        system, manager = managed_system(degree=2, seed=11)
        manager.add_node(123456)
        assert manager.verify_degree()
        assert system.check_placement_invariant()

    def test_publish_after_direct_join_creates_replica_store(self):
        """Regression: replica stores must spring into existence for nodes
        that joined *behind the manager's back* (``SquidSystem.add_node``
        or the churn simulator, not :meth:`ReplicationManager.add_node`).
        Writing a replica to such a node used to raise ``KeyError`` from
        the frozen-at-init ``self.replicas`` dict."""
        system, manager = managed_system(degree=2, seed=14)
        rng = np.random.default_rng(99)
        for _ in range(40):
            node_id = int(rng.integers(0, system.overlay.space))
            if node_id not in system.overlay.nodes:
                system.add_node(node_id)  # bypasses the manager on purpose
        for i in range(60):
            manager.publish(("network", "storage"), payload=f"late-{i}")
        assert manager.repair() >= 0
        assert manager.verify_degree()

    def test_repair_around_handles_unknown_holder(self):
        """repair_around must also tolerate replica holders it has never
        seen (nodes joined after construction), and re-establish the
        invariant in the joined node's neighborhood."""
        system, manager = managed_system(degree=2, seed=15)
        joined = None
        rng = np.random.default_rng(7)
        while joined is None:
            candidate = int(rng.integers(0, system.overlay.space))
            if candidate not in system.overlay.nodes:
                system.add_node(candidate)  # bypasses the manager on purpose
                joined = candidate
        manager.repair_around(joined)
        assert manager.verify_degree()

    def test_repair_idempotent(self):
        system, manager = managed_system(degree=2, seed=12)
        first = manager.repair()
        second = manager.repair()
        assert first == second
        assert manager.verify_degree()


class TestSmallRings:
    def test_two_node_ring(self):
        """Degree larger than the ring: replicas capped at ring size - 1."""
        from repro import KeywordSpace, SquidSystem, WordDimension
        from repro.overlay.chord import ChordRing

        space = KeywordSpace([WordDimension("a")], bits=8)
        ring = ChordRing.build(8, [10, 200])
        system = SquidSystem(space, ring)
        system.publish(("hello",))
        manager = ReplicationManager(system, degree=3)
        assert manager.replica_count() == 1  # only one other node exists
        assert manager.verify_degree()


class TestIncrementalRepair:
    def test_repair_around_restores_degree(self):
        system, manager = managed_system(degree=2, n_nodes=30, seed=20)
        victim = system.overlay.node_ids()[7]
        successor = system.overlay.successor_id(victim)
        manager.crash(victim)
        manager.repair_around(successor)
        assert manager.verify_degree()

    def test_repair_around_matches_full_repair(self):
        """Incremental and from-scratch repair agree on the invariant."""
        a_sys, a_mgr = managed_system(degree=2, n_nodes=30, seed=21)
        b_sys, b_mgr = managed_system(degree=2, n_nodes=30, seed=21)
        victim = a_sys.overlay.node_ids()[5]
        succ = a_sys.overlay.successor_id(victim)
        a_mgr.crash(victim)
        a_mgr.repair_around(succ)
        b_mgr.crash(victim)
        b_mgr.repair()
        assert a_mgr.verify_degree() and b_mgr.verify_degree()
        assert a_sys.total_elements() == b_sys.total_elements()

    def test_repeated_crashes_with_incremental_repair(self):
        system, manager = managed_system(degree=2, n_nodes=30, seed=22)
        before = system.total_elements()
        rng = np.random.default_rng(23)
        for _ in range(8):
            ids = system.overlay.node_ids()
            victim = ids[int(rng.integers(0, len(ids)))]
            succ = system.overlay.successor_id(victim)
            manager.crash(victim)
            manager.repair_around(succ)
        assert system.total_elements() == before
        assert manager.stats.elements_lost == 0
        assert manager.verify_degree()

    def test_rejects_dead_anchor(self):
        system, manager = managed_system(degree=1, n_nodes=20, seed=24)
        from repro.core.replication import ReplicationError

        with pytest.raises(ReplicationError):
            manager.repair_around(999999999999)
