"""Stateful (model-based) testing of a live SquidSystem.

Hypothesis drives random interleavings of publishes, membership changes,
boundary shifts and balancing rounds against a shadow model (a plain list
of published elements).  After every step the system must satisfy its
invariants, and queries must agree with the shadow model.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import KeywordSpace, SquidSystem, WordDimension
from repro.core.loadbalance import neighbor_balance_round

WORDS = ["ant", "antler", "bee", "beetle", "cat", "catalog", "dog", "dove", "eel"]


class SquidMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 1000))
    def setup(self, seed):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=8)
        self.system = SquidSystem.create(space, n_nodes=8, seed=seed)
        self.rng = np.random.default_rng(seed + 1)
        self.shadow: list[tuple[str, str]] = []
        self.payload_counter = 0

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule(w1=st.sampled_from(WORDS), w2=st.sampled_from(WORDS))
    def publish(self, w1, w2):
        self.system.publish((w1, w2), payload=self.payload_counter)
        self.shadow.append((w1, w2))
        self.payload_counter += 1

    @rule()
    def add_node(self):
        node_id = int(self.rng.integers(0, self.system.overlay.space))
        if node_id not in self.system.overlay.nodes:
            self.system.add_node(node_id)

    @precondition(lambda self: len(self.system.overlay) > 3)
    @rule()
    def remove_node(self):
        ids = self.system.overlay.node_ids()
        self.system.remove_node(ids[int(self.rng.integers(0, len(ids)))])

    @rule()
    def balance(self):
        neighbor_balance_round(self.system, threshold=1.5)

    @precondition(lambda self: len(self.system.overlay) > 3)
    @rule()
    def rename_node(self):
        ids = self.system.overlay.node_ids()
        idx = int(self.rng.integers(0, len(ids) - 1))
        node, succ = ids[idx], ids[idx + 1]
        target = (node + succ) // 2
        if target != node and target not in self.system.overlay.nodes:
            self.system.change_node_id(node, target)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def elements_conserved(self):
        assert self.system.total_elements() == len(self.shadow)

    @invariant()
    def placement_correct(self):
        assert self.system.check_placement_invariant()

    @invariant()
    def prefix_query_matches_shadow(self):
        if not self.shadow:
            return
        prefix = self.shadow[-1][0][:2]
        got = self.system.query(f"({prefix}*, *)", rng=0).match_count
        want = sum(1 for a, _ in self.shadow if a.startswith(prefix))
        assert got == want


SquidMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestSquidStateMachine = SquidMachine.TestCase
