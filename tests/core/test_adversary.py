"""Tests for the query-drop adversary and its mitigations."""

import numpy as np
import pytest

from repro.core.adversary import AdversarialEngine, run_attack_experiment
from repro.errors import EngineError
from tests.core.conftest import fresh_storage_system

QUERY = "(comp*, *)"


def attacked_setup(seed=0, n_nodes=40, n_keys=300):
    system = fresh_storage_system(n_nodes=n_nodes, n_keys=n_keys, seed=seed)
    want = {id(e) for e in system.brute_force_matches(QUERY)}
    return system, want


class TestNoAdversary:
    def test_empty_dropper_set_is_exact(self):
        system, want = attacked_setup()
        engine = AdversarialEngine(droppers=set())
        result = engine.execute(system, QUERY, rng=1)
        assert {id(e) for e in result.matches} == want


class TestDropAttack:
    def test_droppers_reduce_recall(self):
        system, want = attacked_setup(seed=1)
        rng = np.random.default_rng(2)
        droppers = {int(x) for x in rng.choice(system.overlay.node_ids(), 12, replace=False)}
        honest = [n for n in system.overlay.node_ids() if n not in droppers]
        engine = AdversarialEngine(droppers=droppers)
        got = {
            id(e)
            for e in engine.execute(system, QUERY, origin=honest[0], rng=3).matches
        }
        assert got <= want
        assert len(got) < len(want)  # at 30% droppers, something is lost

    def test_malicious_origin_returns_nothing(self):
        system, _ = attacked_setup(seed=2)
        victim = system.overlay.node_ids()[0]
        engine = AdversarialEngine(droppers={victim})
        result = engine.execute(system, QUERY, origin=victim, rng=4)
        assert result.matches == []

    def test_never_false_positives(self):
        system, want = attacked_setup(seed=3)
        rng = np.random.default_rng(5)
        droppers = {int(x) for x in rng.choice(system.overlay.node_ids(), 10, replace=False)}
        honest = [n for n in system.overlay.node_ids() if n not in droppers]
        for retry in (False, True):
            engine = AdversarialEngine(droppers=droppers, retry=retry)
            got = {
                id(e)
                for e in engine.execute(system, QUERY, origin=honest[0], rng=6).matches
            }
            assert got <= want


class TestMitigations:
    def test_retry_improves_recall(self):
        results = run_attack(seed=4)
        assert results["retry"]["recall"] >= results["plain"]["recall"]

    def test_retry_plus_replication_best(self):
        results = run_attack(seed=5)
        assert results["retry+repl"]["recall"] >= results["retry"]["recall"]
        assert results["retry+repl"]["recall"] > results["plain"]["recall"]

    def test_replication_recall_near_one(self):
        results = run_attack(seed=6)
        assert results["retry+repl"]["recall"] > 0.9


def run_attack(seed):
    out = {}
    queries = [QUERY, "(*, net*)", "(s*, *)"]
    for label, retry, degree in (
        ("plain", False, 0),
        ("retry", True, 0),
        ("retry+repl", True, 2),
    ):
        system, _ = attacked_setup(seed=seed)
        out[label] = run_attack_experiment(
            system,
            queries,
            dropper_fraction=0.2,
            retry=retry,
            replication_degree=degree,
            rng=seed + 10,
        )
    return out


class TestRunAttackExperiment:
    def test_zero_fraction_full_recall(self):
        system, _ = attacked_setup(seed=7)
        result = run_attack_experiment(
            system, [QUERY], dropper_fraction=0.0, retry=False, rng=8
        )
        assert result["recall"] == 1.0
        assert result["droppers"] == 0

    def test_bad_fraction(self):
        system, _ = attacked_setup(seed=8)
        with pytest.raises(EngineError):
            run_attack_experiment(system, [QUERY], dropper_fraction=1.0, retry=False)
