"""Edge-configuration systems: extreme dimensionalities and resolutions.

The paper evaluates 2-D and 3-D spaces; the library should degrade
gracefully at the edges — 1-D spaces, 5-D spaces, 1-bit coordinates, tiny
rings — without violating the exactness guarantee.
"""

import numpy as np
import pytest

from repro import KeywordSpace, NumericDimension, SquidSystem, WordDimension


def assert_exact(system, query):
    got = sorted(map(id, system.query(query, rng=0).matches))
    want = sorted(map(id, system.brute_force_matches(query)))
    assert got == want


class TestOneDimensional:
    def test_word_1d(self):
        space = KeywordSpace([WordDimension("kw")], bits=10)
        system = SquidSystem.create(space, n_nodes=12, seed=0)
        for word in ["alpha", "beta", "alphabet", "gamma", "al"]:
            system.publish((word,))
        for q in ["(al*,)".replace(",)", ")"), "(alpha)", "(*)"]:
            assert_exact(system, q)

    def test_numeric_1d_ranges(self):
        space = KeywordSpace([NumericDimension("x", 0, 100)], bits=8)
        system = SquidSystem.create(space, n_nodes=10, seed=1)
        rng = np.random.default_rng(2)
        for v in rng.uniform(0, 100, size=120):
            system.publish((float(v),))
        for q in ["(10-20)", "(0-100)", "(*-5)", "(95-*)"]:
            assert_exact(system, q)


class TestHighDimensional:
    def test_5d_words(self):
        space = KeywordSpace([WordDimension(f"k{i}") for i in range(5)], bits=5)
        system = SquidSystem.create(space, n_nodes=20, seed=3)
        rng = np.random.default_rng(4)
        words = ["aa", "bb", "cc", "dd", "ee", "ff"]
        for _ in range(150):
            system.publish(tuple(words[i] for i in rng.integers(0, 6, size=5)))
        assert_exact(system, "(aa, *, *, *, *)")
        assert_exact(system, "(*, *, cc, *, *)")
        assert_exact(system, "(aa, bb, *, *, ee)")

    def test_4d_mixed(self):
        space = KeywordSpace(
            [
                WordDimension("name"),
                NumericDimension("a", 0, 10),
                NumericDimension("b", 0, 10),
                NumericDimension("c", 0, 10),
            ],
            bits=6,
        )
        system = SquidSystem.create(space, n_nodes=16, seed=5)
        rng = np.random.default_rng(6)
        for _ in range(100):
            system.publish(
                ("node", float(rng.uniform(0, 10)), float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            )
        assert_exact(system, "(node, 2-8, *, 0-5)")


class TestExtremeResolutions:
    def test_one_bit_coordinates(self):
        """bits=1: the keyword space is a 2x2 grid — everything collides,
        the post-filter does all the work."""
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=1)
        system = SquidSystem.create(space, n_nodes=3, seed=7)
        for pair in [("alpha", "beta"), ("zeta", "omega"), ("alpha", "omega")]:
            system.publish(pair)
        assert_exact(system, "(alpha, *)")
        assert_exact(system, "(alpha, beta)")
        assert_exact(system, "(*, *)")

    def test_high_resolution_word_space(self):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=30)
        system = SquidSystem.create(space, n_nodes=8, seed=8)
        system.publish(("exactlythisword", "andthatone"), payload=1)
        result = system.query("(exactlythisword, andthatone)", rng=0)
        assert result.match_count == 1
        # Exact queries stay point lookups even at 60-bit indices.
        assert result.stats.processing_node_count <= 3


class TestTinyRings:
    def test_two_node_system(self):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=8)
        from repro.overlay.chord import ChordRing

        ring = ChordRing.build(16, [100, 40000])
        system = SquidSystem(space, ring)
        for pair in [("aa", "bb"), ("cc", "dd"), ("ee", "ff")]:
            system.publish(pair)
        assert_exact(system, "(*, *)")
        assert_exact(system, "(aa, *)")

    def test_single_node_system(self):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=8)
        from repro.overlay.chord import ChordRing

        ring = ChordRing.build(16, [777])
        system = SquidSystem(space, ring)
        system.publish(("solo", "node"))
        result = system.query("(solo, *)", rng=0)
        assert result.match_count == 1
        assert result.stats.processing_node_count == 1
