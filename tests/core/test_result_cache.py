"""Tests for the initiator-side result cache.

The load-bearing property is *freshness*: a cached answer must be the one
the engine would compute right now.  LRU/TTL bookkeeping is secondary —
what these tests pin hardest is invalidation precision (only overlapping
entries drop) and the partial-result stale guard.
"""

import random

import pytest

from repro.core.metrics import QueryResult, QueryStats
from repro.core.resultcache import (
    ResultCache,
    default_result_cache,
    result_key,
    set_default_result_cache,
)
from repro.core.system import SquidSystem
from repro.keywords.dimensions import WordDimension
from repro.keywords.space import KeywordSpace
from repro.obs import collecting

WORDS = ["computer", "computation", "network", "netbook", "storage", "memory"]


def build_system(seed=11, n_nodes=24, n_docs=120, cache=True, engine="optimized"):
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=8)
    system = SquidSystem.create(
        space, n_nodes=n_nodes, seed=seed, engine=engine, result_cache=cache
    )
    rng = random.Random(seed)
    for i in range(n_docs):
        system.publish((rng.choice(WORDS), rng.choice(WORDS)), payload=i)
    return system


def _prepare(system, query):
    """The (key, region) pair the system's fast path would use."""
    q = system.space.as_query(query)
    region = system.space.region(q)
    engine = system._coerce_engine(None)
    key = result_key(
        system.curve, region, engine.name, engine.result_cache_params(), query=q
    )
    return key, region


def _fake_result(matches=("m",), messages=7, complete=True):
    stats = QueryStats(messages=messages)
    return QueryResult(
        query=None, matches=list(matches), stats=stats, complete=complete
    )


class TestCacheUnit:
    def test_miss_then_hit(self):
        system = build_system()
        cache = ResultCache(capacity=4)
        key, region = _prepare(system, "(computer, *)")
        assert cache.get(key) is None
        assert cache.put(key, _fake_result(), system.curve, region)
        assert cache.get(key) == ("m",)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        assert cache.messages_saved == 7

    def test_lru_eviction_order(self):
        system = build_system()
        cache = ResultCache(capacity=2)
        keys = {}
        for word in ("computer", "network", "storage"):
            keys[word] = _prepare(system, f"({word}, *)")
        cache.put(keys["computer"][0], _fake_result(("a",)), system.curve, keys["computer"][1])
        cache.put(keys["network"][0], _fake_result(("b",)), system.curve, keys["network"][1])
        cache.get(keys["computer"][0])  # refresh: "network" becomes LRU
        cache.put(keys["storage"][0], _fake_result(("c",)), system.curve, keys["storage"][1])
        assert cache.evictions == 1
        assert cache.get(keys["network"][0]) is None
        assert cache.get(keys["computer"][0]) == ("a",)
        assert cache.get(keys["storage"][0]) == ("c",)

    def test_ttl_expiry_on_logical_clock(self):
        system = build_system()
        ticks = [0]
        cache = ResultCache(capacity=4, ttl=10, clock=lambda: ticks[0])
        key, region = _prepare(system, "(computer, *)")
        cache.put(key, _fake_result(), system.curve, region)
        ticks[0] = 9
        assert cache.get(key) == ("m",)
        ticks[0] = 10
        assert cache.get(key) is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_partial_results_never_cached(self):
        system = build_system()
        cache = ResultCache(capacity=4)
        key, region = _prepare(system, "(computer, *)")
        assert not cache.put(key, _fake_result(complete=False), system.curve, region)
        assert cache.partial_skipped == 1
        assert len(cache) == 0
        assert cache.get(key) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(ttl=0)
        with pytest.raises(ValueError):
            ResultCache(invalidation_level=0)

    def test_spawn_empty_copies_config_only(self):
        ticks = [3]
        cache = ResultCache(capacity=5, ttl=2.5, invalidation_level=3, clock=lambda: ticks[0])
        cache.hits = 9
        spawned = cache.spawn_empty()
        assert (spawned.capacity, spawned.ttl, spawned.invalidation_level) == (5, 2.5, 3)
        assert spawned.clock is cache.clock
        assert spawned.hits == 0 and len(spawned) == 0

    def test_result_key_separates_engines_params_and_query_text(self):
        system = build_system()
        q = system.space.as_query("(computer, *)")
        region = system.space.region(q)
        base = result_key(system.curve, region, "optimized", ("optimized", False, 2), query=q)
        assert base == result_key(
            system.curve, region, "optimized", ("optimized", False, 2), query=q
        )
        assert base != result_key(system.curve, region, "naive", ("naive", 4), query=q)
        assert base != result_key(
            system.curve, region, "optimized", ("optimized", True, 2), query=q
        )
        # Same region, different query text (the coarse-quantization trap):
        other = system.space.as_query("(comp*, *)")
        assert base != result_key(
            system.curve, region, "optimized", ("optimized", False, 2), query=other
        )


class TestInvalidationPrecision:
    def test_publish_inside_region_invalidates(self):
        system = build_system()
        first = system.query("(computer, *)")
        assert not first.stats.result_cache_hit
        assert system.query("(computer, *)").stats.result_cache_hit
        system.publish(("computer", "memory"), payload="fresh")
        res = system.query("(computer, *)")
        assert not res.stats.result_cache_hit
        assert "fresh" in [e.payload for e in res.matches]

    def test_publish_outside_region_preserves_entry(self):
        system = build_system()
        system.query("(computer, *)")
        before = len(system.result_cache)
        system.publish(("network", "memory"), payload="elsewhere")
        assert len(system.result_cache) == before
        hit = system.query("(computer, *)")
        assert hit.stats.result_cache_hit
        assert "elsewhere" not in [e.payload for e in hit.matches]

    def test_publish_many_invalidates_overlapping_only(self):
        system = build_system()
        system.query("(computer, *)")
        system.query("(storage, *)")
        assert len(system.result_cache) == 2
        system.publish_many([("computer", "netbook"), ("netbook", "netbook")])
        # Only the (computer, *) entry overlaps the batch.
        assert len(system.result_cache) == 1
        assert system.query("(storage, *)").stats.result_cache_hit
        res = system.query("(computer, *)")
        assert not res.stats.result_cache_hit

    def test_unpublish_invalidates_and_removes(self):
        system = build_system(n_docs=0)
        system.publish(("computer", "memory"), payload="keep")
        system.publish(("computer", "memory"), payload="drop")
        assert len(system.query("(computer, *)").matches) == 2
        removed = system.unpublish(("computer", "memory"), payload="drop")
        assert removed == 1
        res = system.query("(computer, *)")
        assert not res.stats.result_cache_hit
        assert [e.payload for e in res.matches] == ["keep"]

    def test_membership_churn_invalidates_by_segment(self):
        system = build_system()
        system.query("(computer, *)")
        system.query("(storage, *)")
        assert len(system.result_cache) == 2
        # A join splits one owner's segment; only entries overlapping the
        # transferred span may drop — and queries stay exact either way.
        new_id = next(
            i for i in range(system.overlay.space) if i not in system.overlay.node_ids()
        )
        system.add_node(new_id)
        for query in ("(computer, *)", "(storage, *)"):
            got = sorted(str(e.payload) for e in system.query(query).matches)
            want = sorted(str(e.payload) for e in system.brute_force_matches(query))
            assert got == want

    def test_failed_node_invalidates_its_segment(self):
        system = build_system()
        res = system.query("(computer, *)")
        assert len(system.result_cache) == 1
        # Crash every node: whatever owned the region is certainly gone.
        for node_id in list(system.overlay.node_ids())[:-1]:
            system.fail_node(node_id)
        assert len(system.result_cache) == 0
        fresh = system.query("(computer, *)")
        assert not fresh.stats.result_cache_hit
        assert len(fresh.matches) <= len(res.matches)

    def test_invalidate_range_and_all(self):
        system = build_system()
        cache = ResultCache(capacity=4)
        key, region = _prepare(system, "(computer, *)")
        cache.put(key, _fake_result(), system.curve, region)
        low = cache._entries[key].ranges[0][0]
        assert cache.invalidate_range(low, low) == 1
        assert len(cache) == 0
        cache.put(key, _fake_result(), system.curve, region)
        # Inverted and empty ranges drop nothing.
        assert cache.invalidate_range(5, 2) == 0
        assert cache.invalidate_all() == 1
        assert len(cache) == 0
        assert cache.invalidations == 2


class TestSystemWiring:
    def test_cache_off_by_default(self):
        system = build_system(cache=False)
        assert system.result_cache is None
        res = system.query("(computer, *)")
        assert not res.stats.result_cache_hit

    def test_process_default_knob(self):
        try:
            set_default_result_cache(32)
            assert default_result_cache().capacity == 32
            space = KeywordSpace([WordDimension("kw")], bits=6)
            system = SquidSystem.create(space, n_nodes=4, seed=1)
            assert system.result_cache is not None
            assert system.result_cache.capacity == 32
        finally:
            set_default_result_cache(None)
        assert default_result_cache() is None
        with pytest.raises(ValueError):
            set_default_result_cache(0)

    def test_limit_queries_bypass_the_cache(self):
        system = build_system()
        full = system.query("(computer, *)")
        assert len(system.result_cache) == 1
        # Discovery mode truncates; serving it from the complete cached
        # entry (or caching its truncated answer) would both be wrong.
        limited = system.query("(computer, *)", limit=1)
        assert not limited.stats.result_cache_hit
        assert len(limited.matches) < len(full.matches)
        assert system.query("(computer, *)").stats.result_cache_hit

    def test_hit_is_identical_and_saves_messages(self):
        system = build_system()
        with collecting() as registry:
            cold = system.query("(comp*, *)")
            warm = system.query("(comp*, *)")
        assert warm.stats.result_cache_hit and not cold.stats.result_cache_hit
        assert warm.complete
        assert [id(e) for e in warm.matches] == [id(e) for e in cold.matches]
        assert warm.stats.messages == 0  # a hit costs no wire traffic
        counters = registry.snapshot()["counters"]
        assert counters["result_cache.misses"] == 1
        assert counters["result_cache.hits"] == 1
        assert counters["result_cache.messages_saved"] == cold.stats.messages

    def test_naive_engine_also_cached(self):
        system = build_system(engine="naive")
        cold = system.query("(computer, *)")
        warm = system.query("(computer, *)")
        assert warm.stats.result_cache_hit
        assert sorted(str(e.payload) for e in warm.matches) == sorted(
            str(e.payload) for e in cold.matches
        )
