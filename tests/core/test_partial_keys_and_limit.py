"""Tests for partial-key publication and discovery-mode (limit) queries."""

import pytest

from repro import KeywordSpace, NaiveEngine, OptimizedEngine, SquidSystem, WordDimension
from repro.errors import DimensionMismatchError, EngineError, KeywordError
from tests.core.conftest import fresh_storage_system


def word_system(dims=3, bits=10, n_nodes=24, seed=0):
    space = KeywordSpace([WordDimension(f"k{i}") for i in range(dims)], bits=bits)
    return SquidSystem.create(space, n_nodes=n_nodes, seed=seed)


class TestPadKey:
    def test_single_keyword_repeats(self):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=8)
        assert space.pad_key(("computer",)) == ("computer", "computer")

    def test_two_of_three_cycles(self):
        space = KeywordSpace([WordDimension(f"k{i}") for i in range(3)], bits=8)
        assert space.pad_key(("alpha", "beta")) == ("alpha", "beta", "alpha")

    def test_full_key_unchanged(self):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=8)
        assert space.pad_key(("X", "y")) == ("x", "y")

    def test_empty_rejected(self):
        space = KeywordSpace([WordDimension("a")], bits=8)
        with pytest.raises(KeywordError):
            space.pad_key(())

    def test_too_long_rejected(self):
        space = KeywordSpace([WordDimension("a")], bits=8)
        with pytest.raises(DimensionMismatchError):
            space.pad_key(("x", "y"))


class TestPartialKeyPublication:
    def test_one_keyword_document_discoverable_on_any_dimension(self):
        """The paper's 'one or more keywords': a single-keyword document
        matches its keyword queried on every dimension."""
        system = word_system(dims=2)
        system.publish(("solitary",), payload="doc", pad=True)
        assert system.query("(solitary, *)", rng=0).match_count == 1
        assert system.query("(*, solitary)", rng=0).match_count == 1
        assert system.query("(solitary, solitary)", rng=0).match_count == 1

    def test_unpadded_short_key_rejected(self):
        system = word_system(dims=2)
        with pytest.raises(DimensionMismatchError):
            system.publish(("solitary",))

    def test_partial_key_in_3d(self):
        system = word_system(dims=3)
        system.publish(("grid", "compute"), payload="res", pad=True)
        assert system.query("(grid, compute, *)", rng=0).match_count == 1
        assert system.query("(*, *, grid)", rng=0).match_count == 1


class TestDiscoveryLimit:
    def test_limit_returns_enough_matches(self, storage_system):
        full = storage_system.query("(comp*, *)", rng=0)
        assert full.match_count >= 5
        limited = storage_system.query("(comp*, *)", rng=0, limit=3)
        assert limited.match_count >= 3

    def test_limit_reduces_cost(self, storage_system):
        origin = storage_system.overlay.node_ids()[0]
        full = storage_system.query("(*, *)", origin=origin, rng=0)
        limited = storage_system.query("(*, *)", origin=origin, rng=0, limit=1)
        assert limited.stats.processing_node_count < full.stats.processing_node_count
        assert limited.stats.messages < full.stats.messages

    def test_limit_matches_are_true_matches(self, storage_system):
        oracle = {e.key for e in storage_system.brute_force_matches("(comp*, *)")}
        limited = storage_system.query("(comp*, *)", rng=0, limit=2)
        assert {e.key for e in limited.matches} <= oracle

    def test_limit_larger_than_matches_returns_all(self, storage_system):
        full = storage_system.query("(comp*, *)", rng=0)
        limited = storage_system.query("(comp*, *)", rng=0, limit=10**6)
        assert limited.match_count == full.match_count

    def test_limit_on_naive_engine(self, storage_system):
        limited = storage_system.query(
            "(comp*, *)", engine=NaiveEngine(), rng=0, limit=2
        )
        assert limited.match_count >= 2

    def test_bad_limit(self, storage_system):
        with pytest.raises(EngineError):
            storage_system.query("(comp*, *)", rng=0, limit=0)
        with pytest.raises(EngineError):
            storage_system.query(
                "(comp*, *)", engine=NaiveEngine(), rng=0, limit=-1
            )
