"""Unit tests for the query metrics accumulator."""

from repro.core.metrics import QueryResult, QueryStats
from repro.store import StoredElement


class TestQueryStats:
    def test_record_path(self):
        stats = QueryStats()
        stats.record_path((1, 2, 3))
        assert stats.messages == 1
        assert stats.hops == 2
        assert stats.routing_nodes == {1, 2, 3}

    def test_record_path_self_delivery(self):
        stats = QueryStats()
        stats.record_path((7,))
        assert stats.messages == 1
        assert stats.hops == 0

    def test_record_direct(self):
        stats = QueryStats()
        stats.record_direct()
        stats.record_direct(3)
        assert stats.messages == 4
        assert stats.hops == 4

    def test_record_processing_tracks_level(self):
        stats = QueryStats()
        stats.record_processing(5, 2)
        stats.record_processing(6, 7)
        stats.record_processing(5, 1)
        assert stats.processing_nodes == {5, 6}
        assert stats.clusters_processed == 3
        assert stats.max_refinement_level == 7
        # Processing nodes count as routing nodes too (they held the query).
        assert {5, 6} <= stats.routing_nodes

    def test_counts(self):
        stats = QueryStats()
        stats.record_path((1, 2))
        stats.record_processing(2, 0)
        stats.record_data_node(2)
        assert stats.routing_node_count == 2
        assert stats.processing_node_count == 1
        assert stats.data_node_count == 1

    def test_completion_monotone(self):
        stats = QueryStats()
        stats.record_completion(5.0)
        stats.record_completion(3.0)
        assert stats.completion_time == 5.0

    def test_first_match_minimum(self):
        stats = QueryStats()
        assert stats.time_to_first_match is None
        stats.record_match_time(9.0)
        stats.record_match_time(4.0)
        stats.record_match_time(6.0)
        assert stats.time_to_first_match == 4.0

    def test_as_row(self):
        stats = QueryStats()
        stats.record_path((1, 2, 3))
        row = stats.as_row()
        assert row["routing_nodes"] == 3
        assert row["messages"] == 1
        assert row["hops"] == 2


class TestQueryResult:
    def test_match_accessors(self):
        elements = [
            StoredElement(index=1, key=("a", "b"), payload="x"),
            StoredElement(index=2, key=("a", "b"), payload="y"),
            StoredElement(index=3, key=("c", "d"), payload="z"),
        ]
        result = QueryResult(query=None, matches=elements, stats=QueryStats())
        assert result.match_count == 3
        assert result.match_keys() == {("a", "b"), ("c", "d")}

    def test_empty(self):
        result = QueryResult(query=None, matches=[], stats=QueryStats())
        assert result.match_count == 0
        assert result.match_keys() == set()
