"""Tests for time-domain query metrics (latency-model-driven engine)."""

import pytest

from repro import LatencyModel, OptimizedEngine, ProximityChordRing, SquidSystem
from repro.keywords import KeywordSpace, WordDimension
from tests.core.conftest import WORDS, fresh_storage_system


def timed_setup(seed=0):
    system = fresh_storage_system(n_nodes=32, n_keys=250, seed=seed)
    model = LatencyModel.random(system.overlay.node_ids(), rng=seed + 1)
    return system, model


class TestDefaults:
    def test_no_model_means_zero_times(self, storage_system):
        stats = storage_system.query("(comp*, *)", rng=0).stats
        assert stats.completion_time == 0.0
        assert stats.time_to_first_match is None


class TestTimedExecution:
    def test_completion_time_positive(self):
        system, model = timed_setup()
        engine = OptimizedEngine(latency_model=model)
        stats = system.query("(comp*, *)", engine=engine, rng=0).stats
        assert stats.completion_time > 0

    def test_first_match_before_completion(self):
        system, model = timed_setup(seed=1)
        engine = OptimizedEngine(latency_model=model)
        result = system.query("(comp*, *)", engine=engine, rng=0)
        assert result.match_count > 0
        assert result.stats.time_to_first_match is not None
        assert result.stats.time_to_first_match <= result.stats.completion_time

    def test_no_matches_no_first_match_time(self):
        system, model = timed_setup(seed=2)
        engine = OptimizedEngine(latency_model=model)
        stats = system.query("(zzzz*, *)", engine=engine, rng=0).stats
        assert stats.time_to_first_match is None
        assert stats.completion_time > 0  # the fan-out still takes time

    def test_timing_does_not_change_results(self):
        system, model = timed_setup(seed=3)
        plain = system.query("(comp*, *)", engine=OptimizedEngine(), rng=0)
        timed = system.query(
            "(comp*, *)", engine=OptimizedEngine(latency_model=model), rng=0
        )
        assert sorted(map(id, plain.matches)) == sorted(map(id, timed.matches))
        assert plain.stats.messages == timed.stats.messages

    def test_processing_delay_adds_up(self):
        system, model = timed_setup(seed=4)
        fast = system.query(
            "(comp*, *)",
            engine=OptimizedEngine(latency_model=model, processing_delay=0.0),
            origin=system.overlay.node_ids()[0],
            rng=0,
        ).stats
        slow = system.query(
            "(comp*, *)",
            engine=OptimizedEngine(latency_model=model, processing_delay=5.0),
            origin=system.overlay.node_ids()[0],
            rng=0,
        ).stats
        assert slow.completion_time > fast.completion_time


class TestProximityImprovesQueryTime:
    def test_pns_reduces_completion_time(self):
        """End-to-end: Squid on a PNS ring answers faster than on a classic
        ring with the same membership and latency model."""
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=10)
        base = SquidSystem.create(space, n_nodes=150, seed=5)
        ids = base.overlay.node_ids()
        model = LatencyModel.random(ids, rng=6)
        pns_ring = ProximityChordRing.build_with_model(
            base.overlay.bits, ids, model=model, candidates=8
        )
        pns = SquidSystem(space, pns_ring, curve=base.curve)

        import numpy as np

        rng = np.random.default_rng(7)
        keys = [
            (WORDS[rng.integers(len(WORDS))], WORDS[rng.integers(len(WORDS))])
            for _ in range(400)
        ]
        base.publish_many(keys)
        pns.publish_many(keys)

        plain_time = pns_time = 0.0
        origin = ids[0]
        for q in ["(comp*, *)", "(*, net*)", "(s*, *)"]:
            plain_time += base.query(
                q, engine=OptimizedEngine(latency_model=model), origin=origin, rng=0
            ).stats.completion_time
            pns_time += pns.query(
                q, engine=OptimizedEngine(latency_model=model), origin=origin, rng=0
            ).stats.completion_time
        assert pns_time < plain_time
