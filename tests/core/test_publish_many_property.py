"""Property test: ``publish_many`` must place every element exactly where
per-element ``publish`` calls would — across random node sets, every curve
family, and the ``pad=`` path (ISSUE satellite: bulk/scalar equivalence)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import KeywordSpace, SquidSystem, WordDimension
from repro.overlay.chord import ChordRing
from repro.sfc import CURVES, make_curve

words = st.text(alphabet="abcd", min_size=1, max_size=4)

BITS = 5  # per-dimension order; index space is 2**(2*BITS) = 1024


@st.composite
def publish_scenario(draw):
    curve_name = draw(st.sampled_from(sorted(CURVES)))
    node_ids = draw(
        st.sets(st.integers(min_value=0, max_value=2 ** (2 * BITS) - 1),
                min_size=1, max_size=12)
    )
    keys = draw(st.lists(st.tuples(words, words), min_size=1, max_size=25))
    return curve_name, sorted(node_ids), keys


def _fresh_system(curve_name: str, node_ids: list[int]) -> SquidSystem:
    space = KeywordSpace([WordDimension("k1"), WordDimension("k2")], bits=BITS)
    curve = make_curve(curve_name, space.dims, space.bits)
    ring = ChordRing.build(curve.index_bits, node_ids)
    return SquidSystem(space, ring, curve=curve, rng=0)


def _store_contents(system: SquidSystem) -> dict[int, list[tuple]]:
    return {
        node_id: [(e.index, e.key, e.payload) for e in store.all_elements()]
        for node_id, store in system.stores.items()
    }


@given(publish_scenario())
@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_bulk_publish_places_like_scalar_publish(scenario):
    curve_name, node_ids, keys = scenario
    scalar = _fresh_system(curve_name, node_ids)
    bulk = _fresh_system(curve_name, node_ids)

    for i, key in enumerate(keys):
        scalar.publish(key, payload=i)
    inserted = bulk.publish_many(keys, payloads=range(len(keys)))

    assert inserted == len(keys)
    assert _store_contents(bulk) == _store_contents(scalar)


@given(publish_scenario())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_bulk_publish_pad_matches_scalar_pad(scenario):
    curve_name, node_ids, keys = scenario
    short_keys = [(k1,) for k1, _ in keys]  # shorter than the space's 2 dims
    scalar = _fresh_system(curve_name, node_ids)
    bulk = _fresh_system(curve_name, node_ids)

    for i, key in enumerate(short_keys):
        scalar.publish(key, payload=i, pad=True)
    bulk.publish_many(short_keys, payloads=range(len(short_keys)), pad=True)

    assert _store_contents(bulk) == _store_contents(scalar)


@given(publish_scenario())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_owner_many_matches_scalar_owner(scenario):
    curve_name, node_ids, keys = scenario
    system = _fresh_system(curve_name, node_ids)
    indices = [system.index_of(system.space.validate_key(k)) for k in keys]
    owners = system.overlay.owner_many(indices)
    assert [int(o) for o in owners] == [system.overlay.owner(i) for i in indices]
