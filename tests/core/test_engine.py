"""Tests for the query engines: exactness guarantee, costs, optimizations.

The paper's headline guarantee — *all* existing data elements matching a
query are found — is verified against a brute-force oracle for every engine,
query type, and origin choice.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    KeywordSpace,
    NaiveEngine,
    OptimizedEngine,
    SquidSystem,
    WordDimension,
    make_engine,
)
from repro.errors import EngineError
from tests.core.conftest import WORDS, fresh_storage_system

QUERIES_2D = [
    "(computer, *)",
    "(comp*, *)",
    "(comp*, net*)",
    "(computer, network)",
    "(*, *)",
    "(*, stor*)",
    "(zzz*, *)",  # no matches
    "(c*, s*)",
]

QUERIES_3D = [
    "(256-512, *, 10-*)",
    "(*, 100-200, *)",
    "(0-128, 0-250, 0-25)",
    "(900-1024, 900-1000, 90-100)",
    "(512, *, *)",
]


def assert_exact(system, query, engine, origin=None):
    result = system.query(query, engine=engine, origin=origin, rng=99)
    got = sorted(map(id, result.matches))
    want = sorted(map(id, system.brute_force_matches(query)))
    assert got == want, f"{engine.name} missed/duplicated matches for {query}"
    return result


class TestGuarantee:
    """Every engine returns exactly the brute-force match set."""

    @pytest.mark.parametrize("query", QUERIES_2D)
    def test_optimized_2d(self, storage_system, query):
        assert_exact(storage_system, query, OptimizedEngine())

    @pytest.mark.parametrize("query", QUERIES_2D)
    def test_naive_2d(self, storage_system, query):
        assert_exact(storage_system, query, NaiveEngine())

    @pytest.mark.parametrize("query", QUERIES_2D)
    def test_unaggregated_2d(self, storage_system, query):
        assert_exact(storage_system, query, OptimizedEngine(aggregate=False))

    @pytest.mark.parametrize("query", QUERIES_3D)
    def test_optimized_3d_ranges(self, grid_system, query):
        assert_exact(grid_system, query, OptimizedEngine())

    @pytest.mark.parametrize("query", QUERIES_3D)
    def test_naive_3d_ranges(self, grid_system, query):
        assert_exact(grid_system, query, NaiveEngine())

    def test_every_origin(self, storage_system):
        for origin in storage_system.overlay.node_ids()[::7]:
            assert_exact(storage_system, "(comp*, *)", OptimizedEngine(), origin=origin)

    @given(st.integers(0, len(WORDS) - 1), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_random_prefix_queries(self, storage_system, word_idx, plen):
        prefix = WORDS[word_idx][:plen]
        assert_exact(storage_system, f"({prefix}*, *)", OptimizedEngine())

    def test_morton_curve_system_also_exact(self):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=8)
        system = SquidSystem.create(space, n_nodes=24, curve="zorder", seed=3)
        rng = np.random.default_rng(0)
        for _ in range(150):
            system.publish(
                (WORDS[rng.integers(len(WORDS))], WORDS[rng.integers(len(WORDS))])
            )
        for q in ["(comp*, *)", "(*, *)", "(net, data)"]:
            assert_exact(system, q, OptimizedEngine())


class TestStats:
    def test_processing_subset_of_routing(self, storage_system):
        res = storage_system.query("(comp*, *)", rng=1)
        assert res.stats.processing_nodes <= res.stats.routing_nodes

    def test_data_subset_of_processing(self, storage_system):
        res = storage_system.query("(comp*, *)", rng=1)
        assert res.stats.data_nodes <= res.stats.processing_nodes

    def test_empty_query_touches_no_data_nodes(self, storage_system):
        res = storage_system.query("(zzz*, *)", rng=1)
        assert res.stats.data_node_count == 0
        assert res.match_count == 0

    def test_exact_query_is_cheap(self, hilbert_storage_system):
        """A fully specified query is a point lookup: few processing nodes.

        The bound is a property of the Hilbert curve (an exact term's small
        interval stays contiguous), so the fixture pins the curve rather
        than following the process default."""
        res = hilbert_storage_system.query("(computer, network)", rng=1)
        assert res.stats.processing_node_count <= 4

    def test_wildcard_all_visits_every_node(self, storage_system):
        res = storage_system.query("(*, *)", rng=1)
        n = len(storage_system.overlay)
        assert res.stats.processing_node_count == n

    def test_stats_row_keys(self, storage_system):
        row = storage_system.query("(comp*, *)", rng=1).stats.as_row()
        assert set(row) == {
            "routing_nodes",
            "processing_nodes",
            "data_nodes",
            "messages",
            "hops",
        }

    def test_hops_at_least_messages_minus_replies(self, storage_system):
        stats = storage_system.query("(comp*, *)", rng=1).stats
        assert stats.hops >= 0
        assert stats.messages >= 1

    def test_more_specific_query_costs_less(self, storage_system):
        """The paper's Q2-beats-Q1 observation: pruning works better when
        more keywords are specified."""
        q1 = storage_system.query("(comp*, *)", rng=1).stats
        q2 = storage_system.query("(comp*, net*)", rng=1).stats
        assert q2.processing_node_count <= q1.processing_node_count
        assert q2.messages <= q1.messages


class TestOptimizations:
    def test_aggregation_wins_when_subqueries_are_fine(self):
        """The paper's batching pays off once nodes expand the query tree
        deeply: many sibling sub-clusters then share a destination.  With
        shallow refinement sub-queries are coarse and batching has nothing
        to batch — both regimes are asserted."""
        system = fresh_storage_system(n_nodes=32, n_keys=600, seed=21, bits=12)
        deep_agg = deep_noagg = 0
        for q in ["(*, computer)", "(*, net*)", "(*, s*)"]:
            deep_agg += system.query(
                q, engine=OptimizedEngine(aggregate=True, local_depth=5), rng=2
            ).stats.hops
            deep_noagg += system.query(
                q, engine=OptimizedEngine(aggregate=False, local_depth=5), rng=2
            ).stats.hops
        assert deep_agg < deep_noagg

    def test_local_depth_validation(self):
        with pytest.raises(EngineError):
            OptimizedEngine(local_depth=0)

    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_local_depth_preserves_exactness(self, storage_system, depth):
        for q in ["(comp*, *)", "(*, net*)", "(*, *)"]:
            assert_exact(storage_system, q, OptimizedEngine(local_depth=depth))

    def test_aggregation_does_not_change_work_distribution(self, storage_system):
        with_agg = storage_system.query(
            "(comp*, *)", engine=OptimizedEngine(aggregate=True), rng=2
        ).stats
        without = storage_system.query(
            "(comp*, *)", engine=OptimizedEngine(aggregate=False), rng=2
        ).stats
        assert with_agg.processing_nodes == without.processing_nodes
        assert with_agg.data_nodes == without.data_nodes

    def test_optimized_beats_naive_on_processing(self, storage_system):
        """Distributed refinement prunes; the naive engine walks clusters."""
        opt = storage_system.query("(comp*, *)", engine=OptimizedEngine(), rng=2).stats
        naive = storage_system.query("(comp*, *)", engine=NaiveEngine(), rng=2).stats
        assert opt.messages <= naive.messages

    def test_naive_max_level_still_exact(self, storage_system):
        assert_exact(storage_system, "(comp*, *)", NaiveEngine(max_level=4))


class TestMakeEngine:
    def test_by_name(self):
        assert make_engine("optimized").name == "optimized"
        assert make_engine("naive").name == "naive"

    def test_kwargs(self):
        assert make_engine("optimized", aggregate=False).aggregate is False

    def test_unknown(self):
        with pytest.raises(EngineError):
            make_engine("flooding")


class TestErrors:
    def test_empty_system(self):
        space = KeywordSpace([WordDimension("a")], bits=4)
        from repro.overlay.chord import ChordRing

        system = SquidSystem(space, ChordRing(4))
        with pytest.raises(EngineError):
            system.query("(a*,)".replace(",", ""), rng=0)

    def test_bad_origin(self, storage_system):
        with pytest.raises(EngineError):
            storage_system.query("(comp*, *)", origin=123456789, rng=0)


class TestChurnDuringQueries:
    def test_queries_exact_after_membership_changes(self):
        system = fresh_storage_system(n_nodes=30, n_keys=250, seed=8)
        rng = np.random.default_rng(9)
        for step in range(10):
            if step % 2 == 0:
                new_id = int(rng.integers(0, system.overlay.space))
                if new_id not in system.overlay.nodes:
                    system.add_node(new_id)
            else:
                ids = system.overlay.node_ids()
                system.remove_node(ids[int(rng.integers(0, len(ids)))])
            assert system.check_placement_invariant()
            assert_exact(system, "(comp*, *)", OptimizedEngine())
            assert_exact(system, "(*, s*)", OptimizedEngine())
