"""Tests for SquidSystem assembly, publishing, and membership."""

import numpy as np
import pytest

from repro import (
    HilbertCurve,
    KeywordSpace,
    SquidSystem,
    WordDimension,
)
from repro.errors import DuplicateNodeError, OverlayError
from repro.overlay.chord import ChordRing
from tests.core.conftest import WORDS, fresh_storage_system


class TestConstruction:
    def test_create_defaults(self):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=8)
        system = SquidSystem.create(space, n_nodes=10, seed=0)
        assert len(system.overlay) == 10
        assert system.curve.dims == 2
        assert system.curve.order == 8
        assert system.overlay.bits == 16

    def test_curve_space_mismatch_rejected(self):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=8)
        with pytest.raises(OverlayError):
            SquidSystem(space, ChordRing(16), curve=HilbertCurve(3, 8))

    def test_overlay_width_mismatch_rejected(self):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=8)
        with pytest.raises(OverlayError):
            SquidSystem(space, ChordRing(10))

    def test_deterministic_with_seed(self):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=8)
        a = SquidSystem.create(space, n_nodes=20, seed=5)
        b = SquidSystem.create(space, n_nodes=20, seed=5)
        assert a.overlay.node_ids() == b.overlay.node_ids()


class TestPublish:
    def test_publish_lands_at_owner(self):
        system = fresh_storage_system(n_nodes=16, n_keys=0)
        element = system.publish(("computer", "network"), payload="x")
        owner = system.overlay.owner(element.index)
        assert element in list(system.stores[owner].all_elements())

    def test_publish_normalizes_key(self):
        system = fresh_storage_system(n_nodes=16, n_keys=0)
        element = system.publish(("Computer", "NETWORK"))
        assert element.key == ("computer", "network")

    def test_publish_many_matches_singles(self):
        a = fresh_storage_system(n_nodes=16, n_keys=0, seed=3)
        b = fresh_storage_system(n_nodes=16, n_keys=0, seed=3)
        keys = [("computer", "network"), ("data", "grid"), ("net", "peer")]
        for k in keys:
            a.publish(k)
        b.publish_many(keys)
        assert a.node_loads() == b.node_loads()

    def test_publish_many_payload_mismatch(self):
        system = fresh_storage_system(n_nodes=8, n_keys=0)
        with pytest.raises(ValueError):
            system.publish_many([("a", "b")], payloads=[1, 2])

    def test_publish_many_empty(self):
        system = fresh_storage_system(n_nodes=8, n_keys=0)
        assert system.publish_many([]) == 0

    def test_placement_invariant(self, storage_system):
        assert storage_system.check_placement_invariant()

    def test_total_counts(self):
        system = fresh_storage_system(n_nodes=8, n_keys=0)
        system.publish(("a", "b"))
        system.publish(("a", "b"))
        system.publish(("c", "d"))
        assert system.total_elements() == 3
        assert system.total_keys() == 2

    def test_index_of_deterministic(self, storage_system):
        i1 = storage_system.index_of(("computer", "network"))
        i2 = storage_system.index_of(("Computer", "network"))
        assert i1 == i2


class TestMembership:
    def test_add_node_moves_keys(self):
        system = fresh_storage_system(n_nodes=12, n_keys=200, seed=4)
        before = system.total_elements()
        # Insert right below a loaded node to force a transfer.
        loads = system.node_loads()
        loaded = max(loads, key=lambda n: loads[n])
        pred = system.overlay.predecessor_id(loaded)
        new_id = (pred + loaded) // 2 if pred < loaded else loaded // 2
        if new_id in system.overlay.nodes:
            new_id += 1
        system.add_node(new_id)
        assert system.total_elements() == before
        assert system.check_placement_invariant()

    def test_add_duplicate_rejected(self):
        system = fresh_storage_system(n_nodes=8, n_keys=10)
        existing = system.overlay.node_ids()[0]
        with pytest.raises(DuplicateNodeError):
            system.add_node(existing)

    def test_remove_node_keeps_elements(self):
        system = fresh_storage_system(n_nodes=12, n_keys=200, seed=6)
        before = system.total_elements()
        system.remove_node(system.overlay.node_ids()[3])
        assert system.total_elements() == before
        assert system.check_placement_invariant()

    def test_queries_survive_churn(self):
        system = fresh_storage_system(n_nodes=16, n_keys=150, seed=7)
        want = len(system.brute_force_matches("(comp*, *)"))
        system.remove_node(system.overlay.node_ids()[0])
        system.add_node(12345)
        got = system.query("(comp*, *)", rng=0).match_count
        assert got == want


class TestChangeNodeId:
    def test_shrink_hands_keys_to_successor(self):
        system = fresh_storage_system(n_nodes=12, n_keys=300, seed=9)
        loads = system.node_loads()
        # The most loaded non-wrapped node whose store is splittable.
        node = None
        for candidate in sorted(loads, key=lambda n: -loads[n]):
            pred = system.overlay.predecessor_id(candidate)
            split = system.stores[candidate].split_point_by_load()
            if pred < candidate and split is not None and split > pred:
                node = candidate
                break
        assert node is not None, "workload should offer a splittable node"
        split = system.stores[node].split_point_by_load()
        before = system.total_elements()
        moved, cost = system.change_node_id(node, split)
        assert moved >= 0 and cost >= 1
        assert system.total_elements() == before
        assert system.check_placement_invariant()

    def test_grow_absorbs_from_successor(self):
        system = fresh_storage_system(n_nodes=12, n_keys=300, seed=10)
        ids = system.overlay.node_ids()
        node, succ = ids[2], ids[3]
        target = (node + succ) // 2
        if target == node or target in system.overlay.nodes:
            pytest.skip("no room between neighbors")
        before = system.total_elements()
        system.change_node_id(node, target)
        assert system.total_elements() == before
        assert system.check_placement_invariant()

    def test_queries_exact_after_renames(self):
        system = fresh_storage_system(n_nodes=16, n_keys=200, seed=11)
        want = len(system.brute_force_matches("(c*, *)"))
        ids = system.overlay.node_ids()
        node, succ = ids[4], ids[5]
        target = (node + succ) // 2
        if target != node and target not in system.overlay.nodes:
            system.change_node_id(node, target)
        system.overlay.rebuild_all_fingers()
        assert system.query("(c*, *)", rng=1).match_count == want


class TestIntrospection:
    def test_node_loads_sum(self, storage_system):
        assert sum(storage_system.node_loads().values()) == storage_system.total_keys()

    def test_key_index_distribution(self, storage_system):
        dist = storage_system.key_index_distribution(intervals=50)
        assert dist.shape == (50,)
        assert dist.sum() == storage_system.total_keys()

    def test_distribution_is_skewed(self, storage_system):
        """Figure 18's premise: the SFC index space is non-uniformly loaded."""
        dist = storage_system.key_index_distribution(intervals=50)
        assert dist.max() > 2 * max(dist.mean(), 1)
