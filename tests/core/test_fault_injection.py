"""Fault-injection and operation-sequence stress tests.

Random interleavings of membership operations, load-balancing moves, and
crashes, with invariants checked after every step:

* conservation — graceful operations never lose elements;
* placement — every element sits at the owner of its index;
* exactness — queries equal the brute-force oracle over surviving data.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.loadbalance import neighbor_balance_round
from tests.core.conftest import fresh_storage_system


OPS = ("add", "remove", "balance", "rename")


@st.composite
def op_sequence(draw):
    seed = draw(st.integers(0, 1000))
    ops = draw(st.lists(st.sampled_from(OPS), min_size=1, max_size=12))
    return seed, ops


def apply_op(system, op, rng):
    """Apply one operation; returns False if it was skipped (not applicable)."""
    overlay = system.overlay
    ids = overlay.node_ids()
    if op == "add":
        node_id = int(rng.integers(0, overlay.space))
        if node_id in overlay.nodes:
            return False
        system.add_node(node_id)
        return True
    if op == "remove":
        if len(ids) <= 3:
            return False
        system.remove_node(ids[int(rng.integers(0, len(ids)))])
        return True
    if op == "balance":
        neighbor_balance_round(system, threshold=1.5)
        return True
    if op == "rename":
        if len(ids) < 4:
            return False
        idx = int(rng.integers(1, len(ids) - 1))
        node, succ = ids[idx], ids[idx + 1]
        target = (node + succ) // 2
        if target == node or target in overlay.nodes:
            return False
        system.change_node_id(node, target)
        return True
    raise AssertionError(op)


class TestOperationSequences:
    @given(op_sequence())
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_invariants_after_every_operation(self, scenario):
        seed, ops = scenario
        system = fresh_storage_system(n_nodes=14, n_keys=120, seed=seed, bits=12)
        rng = np.random.default_rng(seed + 1)
        total = system.total_elements()
        for op in ops:
            apply_op(system, op, rng)
            assert system.total_elements() == total
            assert system.check_placement_invariant()
        system.overlay.rebuild_all_fingers()
        want = len(system.brute_force_matches("(c*, *)"))
        assert system.query("(c*, *)", rng=0).match_count == want


class TestCrashScenarios:
    def test_surviving_data_remains_queryable(self):
        system = fresh_storage_system(n_nodes=30, n_keys=250, seed=3)
        rng = np.random.default_rng(4)
        for _ in range(8):
            ids = system.overlay.node_ids()
            victim = ids[int(rng.integers(0, len(ids)))]
            system.overlay.fail(victim)
            system.stores.pop(victim)
            # Queries over the survivors stay exact even before repair.
            want = len(system.brute_force_matches("(comp*, *)"))
            got = system.query("(comp*, *)", rng=5).match_count
            assert got == want

    @pytest.mark.parametrize("engine", ["optimized", "naive"])
    def test_ring_top_crash_no_duplicate_matches(self, engine):
        """Regression: a wrapped chain visit must prune from its scan
        window, not the node's predecessor pointer.  All node ids sit in
        the bottom of the identifier space, so every element indexed above
        the ring's top wraps to the first node at publish time.  Crashing
        every node above the two smallest leaves the first node's
        predecessor pointer naming a dead larger-id peer; the wrap prune
        used to trust that stale pointer, miss, and re-scan the tail —
        duplicating every match stored there."""
        from repro import ChordRing, KeywordSpace, SquidSystem, WordDimension

        space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=10)
        ids = [(i + 1) * 3001 for i in range(8)]  # all far below 2**20
        ring = ChordRing.build(space.dims * space.bits, ids)
        system = SquidSystem(space, ring)  # curve: process default
        rng = np.random.default_rng(17)
        from tests.core.conftest import WORDS

        keys = [
            (WORDS[rng.integers(len(WORDS))], WORDS[rng.integers(len(WORDS))])
            for _ in range(200)
        ]
        system.publish_many(keys)
        first, second = ids[0], ids[1]
        # Precondition: the first node actually stores wrapped-tail data.
        tail = [
            el for el in system.stores[first].all_elements() if el.index > ids[-1]
        ]
        assert tail, "scenario must place elements above the ring's top"
        for victim in ids[2:]:
            system.overlay.fail(victim)
            system.stores.pop(victim)
        # Stale pointer precondition: the first node still believes the dead
        # largest-id peer precedes it.
        assert system.overlay.nodes[first].predecessor == ids[-1]
        for query in ("(comp*, *)", "(*, s*)", "(*, *)"):
            want = len(system.brute_force_matches(query))
            got = system.query(query, engine=engine, rng=2).match_count
            assert got == want

    def test_crash_then_rejoin_cycle(self):
        system = fresh_storage_system(n_nodes=20, n_keys=150, seed=6)
        rng = np.random.default_rng(7)
        for round_idx in range(5):
            ids = system.overlay.node_ids()
            victim = ids[int(rng.integers(0, len(ids)))]
            system.overlay.fail(victim)
            system.stores.pop(victim)
            newcomer = int(rng.integers(0, system.overlay.space))
            if newcomer not in system.overlay.nodes:
                system.add_node(newcomer)
            assert system.check_placement_invariant()
            want = len(system.brute_force_matches("(*, s*)"))
            assert system.query("(*, s*)", rng=8).match_count == want

    def test_half_the_ring_crashes(self):
        system = fresh_storage_system(n_nodes=24, n_keys=200, seed=9)
        rng = np.random.default_rng(10)
        victims = rng.choice(system.overlay.node_ids(), size=12, replace=False)
        for victim in victims:
            system.overlay.fail(int(victim))
            system.stores.pop(int(victim))
        # Stabilize to repair routing state, then verify full exactness.
        for _ in range(20):
            for nid in system.overlay.node_ids():
                system.overlay.stabilize_node(nid, rng)
        for q in ["(comp*, *)", "(*, *)"]:
            want = len(system.brute_force_matches(q))
            assert system.query(q, rng=11).match_count == want
