"""Tests for snapshot persistence."""

import json

import pytest

from repro import CategoricalDimension, KeywordSpace, NumericDimension, SquidSystem, WordDimension
from repro.core.snapshot import (
    SnapshotError,
    load_system,
    save_system,
    system_from_dict,
    system_to_dict,
)
from tests.core.conftest import fresh_storage_system


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        system = fresh_storage_system(n_nodes=12, n_keys=120, seed=0)
        restored = system_from_dict(system_to_dict(system))
        assert restored.overlay.node_ids() == system.overlay.node_ids()
        assert restored.total_elements() == system.total_elements()
        assert restored.node_loads() == system.node_loads()

    def test_queries_identical_after_restore(self):
        system = fresh_storage_system(n_nodes=12, n_keys=120, seed=1)
        restored = system_from_dict(system_to_dict(system))
        for q in ["(comp*, *)", "(*, net*)"]:
            a = {e.key for e in system.query(q, rng=0).matches}
            b = {e.key for e in restored.query(q, rng=0).matches}
            assert a == b

    def test_file_round_trip(self, tmp_path):
        system = fresh_storage_system(n_nodes=10, n_keys=80, seed=2)
        path = tmp_path / "snapshot.json"
        save_system(system, path)
        restored = load_system(path)
        assert restored.total_elements() == system.total_elements()

    def test_payloads_preserved(self, tmp_path):
        system = fresh_storage_system(n_nodes=8, n_keys=0, seed=3)
        system.publish(("alpha", "beta"), payload={"url": "http://x", "size": 3})
        path = tmp_path / "s.json"
        save_system(system, path)
        restored = load_system(path)
        match = restored.query("(alpha, beta)", rng=0).matches[0]
        assert match.payload == {"url": "http://x", "size": 3}

    def test_mixed_dimension_space(self, tmp_path):
        space = KeywordSpace(
            [
                WordDimension("name"),
                NumericDimension("mem", 0, 1024, log_scale=False),
                CategoricalDimension("os", ["linux", "windows"]),
            ],
            bits=8,
        )
        system = SquidSystem.create(space, n_nodes=8, seed=4)
        system.publish(("host", 512, "linux"))
        path = tmp_path / "mixed.json"
        save_system(system, path)
        restored = load_system(path)
        assert restored.query("(host, *, linux)", rng=0).match_count == 1

    def test_curve_family_preserved(self):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=6)
        system = SquidSystem.create(space, n_nodes=6, curve="zorder", seed=5)
        restored = system_from_dict(system_to_dict(system))
        assert restored.curve.name == "zorder"


class TestErrors:
    def test_unknown_format(self):
        with pytest.raises(SnapshotError):
            system_from_dict({"format": 99})

    def test_unknown_dimension_type(self):
        data = system_to_dict(fresh_storage_system(n_nodes=6, n_keys=5, seed=6))
        data["space"]["dimensions"][0]["type"] = "alien"
        with pytest.raises(SnapshotError):
            system_from_dict(data)

    def test_non_json_payload_rejected(self, tmp_path):
        system = fresh_storage_system(n_nodes=6, n_keys=0, seed=7)
        system.publish(("alpha", "beta"), payload=object())
        with pytest.raises(SnapshotError):
            save_system(system, tmp_path / "bad.json")

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_system(tmp_path / "nope.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SnapshotError):
            load_system(path)
