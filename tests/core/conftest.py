"""Shared fixtures for core tests: small populated systems."""

import numpy as np
import pytest

from repro import KeywordSpace, NumericDimension, SquidSystem, WordDimension

WORDS = [
    "computer", "computation", "company", "compute", "network", "net",
    "storage", "store", "system", "data", "database", "grid", "peer",
    "node", "cloud", "cluster", "memory", "cpu", "disk", "search",
]


@pytest.fixture(scope="module")
def storage_system():
    """2-D word system with a reproducible workload (module-scoped: read-only)."""
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=10)
    system = SquidSystem.create(space, n_nodes=48, seed=42)
    rng = np.random.default_rng(7)
    keys = [
        (WORDS[rng.integers(len(WORDS))], WORDS[rng.integers(len(WORDS))])
        for _ in range(400)
    ]
    system.publish_many(keys, payloads=list(range(len(keys))))
    return system


@pytest.fixture(scope="module")
def hilbert_storage_system():
    """:func:`storage_system` pinned to the paper's curve.

    For tests asserting Hilbert-calibrated cost bounds (e.g. "an exact
    query touches few peers"): those numbers are properties of the curve,
    so they must not float with the process default (``REPRO_CURVE``).
    """
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=10)
    system = SquidSystem.create(space, n_nodes=48, curve="hilbert", seed=42)
    rng = np.random.default_rng(7)
    keys = [
        (WORDS[rng.integers(len(WORDS))], WORDS[rng.integers(len(WORDS))])
        for _ in range(400)
    ]
    system.publish_many(keys, payloads=list(range(len(keys))))
    return system


@pytest.fixture(scope="module")
def grid_system():
    """3-D numeric (grid resource) system."""
    space = KeywordSpace(
        [
            NumericDimension("memory", 0, 1024),
            NumericDimension("bandwidth", 0, 1000),
            NumericDimension("cost", 0, 100),
        ],
        bits=8,
    )
    system = SquidSystem.create(space, n_nodes=64, seed=13)
    rng = np.random.default_rng(5)
    vals = rng.uniform(size=(600, 3)) * np.array([1024, 1000, 100])
    system.publish_many([tuple(v) for v in vals])
    return system


def fresh_storage_system(n_nodes=32, n_keys=300, seed=0, bits=10):
    """A mutable system for tests that change membership or move keys."""
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=bits)
    system = SquidSystem.create(space, n_nodes=n_nodes, seed=seed)
    rng = np.random.default_rng(seed + 1)
    keys = [
        (WORDS[rng.integers(len(WORDS))], WORDS[rng.integers(len(WORDS))])
        for _ in range(n_keys)
    ]
    system.publish_many(keys)
    return system
