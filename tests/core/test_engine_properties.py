"""Property-based tests of the end-to-end query guarantee.

Hypothesis generates random workloads, topologies and queries; the
distributed engines must always return exactly the brute-force match set
(the paper's central guarantee), and the cost metrics must satisfy their
structural invariants.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    KeywordSpace,
    NaiveEngine,
    NumericDimension,
    OptimizedEngine,
    SquidSystem,
    WordDimension,
)

words = st.text(alphabet="abcdef", min_size=1, max_size=6)
small_words = st.text(alphabet="abc", min_size=1, max_size=4)


def _build_word_system(keys, n_nodes, seed, bits=8):
    space = KeywordSpace([WordDimension("k1"), WordDimension("k2")], bits=bits)
    system = SquidSystem.create(space, n_nodes=n_nodes, seed=seed)
    for i, key in enumerate(keys):
        system.publish(key, payload=i)
    return system


@st.composite
def word_scenario(draw):
    keys = draw(
        st.lists(st.tuples(small_words, small_words), min_size=1, max_size=30)
    )
    n_nodes = draw(st.integers(min_value=2, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    prefix = draw(small_words)
    return keys, n_nodes, seed, prefix


class TestGuaranteeProperty:
    @given(word_scenario())
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_prefix_query_exact(self, scenario):
        keys, n_nodes, seed, prefix = scenario
        system = _build_word_system(keys, n_nodes, seed)
        query = f"({prefix}*, *)"
        got = sorted(e.payload for e in system.query(query, rng=seed).matches)
        want = sorted(e.payload for e in system.brute_force_matches(query))
        assert got == want

    @given(word_scenario())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_exact_query_finds_published_key(self, scenario):
        keys, n_nodes, seed, _ = scenario
        system = _build_word_system(keys, n_nodes, seed)
        target = keys[0]
        query = f"({target[0]}, {target[1]})"
        got = {e.key for e in system.query(query, rng=seed).matches}
        assert target in got

    @given(word_scenario())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_engines_agree(self, scenario):
        keys, n_nodes, seed, prefix = scenario
        system = _build_word_system(keys, n_nodes, seed)
        query = f"({prefix}*, *)"
        opt = sorted(e.payload for e in system.query(query, engine=OptimizedEngine(), rng=0).matches)
        naive = sorted(e.payload for e in system.query(query, engine=NaiveEngine(), rng=0).matches)
        assert opt == naive

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=25,
        ),
        st.integers(min_value=2, max_value=30),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_numeric_range_exact(self, values, n_nodes, a, b, seed):
        low, high = sorted((a, b))
        space = KeywordSpace(
            [NumericDimension("x", 0, 100), NumericDimension("y", 0, 100)], bits=7
        )
        system = SquidSystem.create(space, n_nodes=n_nodes, seed=seed)
        for i, pair in enumerate(values):
            system.publish(pair, payload=i)
        query = f"({low}-{high}, *)"
        got = sorted(e.payload for e in system.query(query, rng=seed).matches)
        want = sorted(i for i, (x, _) in enumerate(values) if low <= x <= high)
        assert got == want


class TestCostInvariants:
    @given(word_scenario())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_metric_ordering(self, scenario):
        keys, n_nodes, seed, prefix = scenario
        system = _build_word_system(keys, n_nodes, seed)
        stats = system.query(f"({prefix}*, *)", rng=seed).stats
        assert stats.data_nodes <= stats.processing_nodes
        assert stats.processing_nodes <= stats.routing_nodes
        assert stats.processing_node_count <= n_nodes
        assert stats.hops >= 0
        assert stats.messages >= 0

    @given(word_scenario())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_wildcard_all_visits_everyone(self, scenario):
        keys, n_nodes, seed, _ = scenario
        system = _build_word_system(keys, n_nodes, seed)
        stats = system.query("(*, *)", rng=seed).stats
        assert stats.processing_node_count == n_nodes

    @given(word_scenario())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_repeatable_from_same_origin(self, scenario):
        keys, n_nodes, seed, prefix = scenario
        system = _build_word_system(keys, n_nodes, seed)
        origin = system.overlay.node_ids()[0]
        a = system.query(f"({prefix}*, *)", origin=origin, rng=0).stats
        b = system.query(f"({prefix}*, *)", origin=origin, rng=0).stats
        assert a.as_row() == b.as_row()
