"""Stateful testing of the replication manager.

Hypothesis drives random interleavings of publishes, crashes (within the
degree bound), repairs, and joins; the replication invariant and total data
conservation must hold at every quiescent point.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import KeywordSpace, SquidSystem, WordDimension
from repro.core.replication import ReplicationManager

WORDS = ["ant", "bee", "cat", "dog", "eel", "fox", "gnu", "hen"]
DEGREE = 2


class ReplicationMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 500))
    def setup(self, seed):
        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=8)
        self.system = SquidSystem.create(space, n_nodes=12, seed=seed)
        self.rng = np.random.default_rng(seed + 1)
        self.published = 0
        # Publish a starter workload through the system, then attach.
        for i in range(20):
            self.system.publish(
                (WORDS[i % len(WORDS)], WORDS[(i * 3) % len(WORDS)]), payload=i
            )
            self.published += 1
        self.manager = ReplicationManager(self.system, degree=DEGREE)
        self.crashes_since_repair = 0

    @rule(w1=st.sampled_from(WORDS), w2=st.sampled_from(WORDS))
    def publish(self, w1, w2):
        self.manager.publish((w1, w2), payload=self.published)
        self.published += 1

    @precondition(
        lambda self: len(self.system.overlay) > 6 and self.crashes_since_repair < DEGREE
    )
    @rule()
    def crash(self):
        ids = self.system.overlay.node_ids()
        victim = ids[int(self.rng.integers(0, len(ids)))]
        self.manager.crash(victim)
        self.crashes_since_repair += 1

    @rule()
    def repair(self):
        self.manager.repair()
        self.crashes_since_repair = 0

    @rule()
    def join(self):
        node_id = int(self.rng.integers(0, self.system.overlay.space))
        if node_id not in self.system.overlay.nodes:
            self.manager.add_node(node_id)
            self.crashes_since_repair = 0  # add_node runs repair()

    # ------------------------------------------------------------------
    @invariant()
    def no_data_lost(self):
        # Crashes stay within the degree bound between repairs, so every
        # element must survive.
        assert self.system.total_elements() == self.published
        assert self.manager.stats.elements_lost == 0

    @invariant()
    def placement_correct(self):
        assert self.system.check_placement_invariant()

    @invariant()
    def degree_restored_after_repair(self):
        if self.crashes_since_repair == 0:
            assert self.manager.verify_degree()


ReplicationMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=10, deadline=None
)
TestReplicationMachine = ReplicationMachine.TestCase
