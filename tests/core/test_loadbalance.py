"""Tests for the three load-balancing mechanisms (paper §3.5, Figure 19)."""

import numpy as np
import pytest

from repro import KeywordSpace, SquidSystem, WordDimension
from repro.core.loadbalance import (
    VirtualNodeManager,
    grow_with_join_lb,
    neighbor_balance_round,
    run_neighbor_balancing,
    sample_join_id,
)
from repro.errors import LoadBalanceError
from repro.util.stats import coefficient_of_variation, gini_coefficient
from tests.core.conftest import WORDS, fresh_storage_system


def skewed_system(n_nodes=16, n_keys=600, seed=0):
    """A system whose keys cluster in one corner of the keyword space.

    Both keywords start with 'c', so all indices fall into a small slice of
    the curve (skew), while the following characters vary inside the
    coordinate resolution (16 bits ≈ 4 significant characters), keeping the
    hot region divisible by boundary shifts.
    """
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=16)
    system = SquidSystem.create(space, n_nodes=n_nodes, seed=seed)
    rng = np.random.default_rng(seed + 1)
    alpha = "abcdefghijklmnopqrstuvwxyz"
    keys = []
    for _ in range(n_keys):
        a = "c" + "".join(alpha[i] for i in rng.integers(0, 26, size=5))
        b = "c" + "".join(alpha[i] for i in rng.integers(0, 26, size=5))
        keys.append((a, b))
    system.publish_many(keys)
    return system


class TestSampleJoinId:
    def test_returns_unused_id_and_cost(self):
        system = skewed_system()
        node_id, cost = sample_join_id(system, samples=6, rng=3)
        assert node_id not in system.overlay.nodes
        assert cost > 0

    def test_prefers_loaded_region(self):
        """The sampled id's successor should be among the more loaded nodes."""
        system = skewed_system()
        loads = system.node_loads()
        median_load = float(np.median(list(loads.values())))
        hits = 0
        trials = 20
        for seed in range(trials):
            node_id, _ = sample_join_id(system, samples=8, rng=seed)
            succ = system.overlay.owner(node_id)
            if loads[succ] >= median_load:
                hits += 1
        assert hits > trials * 0.7

    def test_rejects_bad_samples(self):
        with pytest.raises(LoadBalanceError):
            sample_join_id(skewed_system(), samples=0)


class TestGrowWithJoinLB:
    def test_reaches_target(self):
        system = skewed_system(n_nodes=8)
        cost = grow_with_join_lb(system, 24, samples=6, rng=5)
        assert len(system.overlay) == 24
        assert cost > 0
        assert system.check_placement_invariant()

    def test_improves_balance_over_random_growth(self):
        """Join-time LB must yield better balance than uniform random ids."""
        lb = skewed_system(n_nodes=8, seed=2)
        grow_with_join_lb(lb, 48, samples=8, rng=7)
        random_sys = skewed_system(n_nodes=48, seed=2)
        lb_gini = gini_coefficient(list(lb.node_loads().values()))
        random_gini = gini_coefficient(list(random_sys.node_loads().values()))
        assert lb_gini < random_gini

    def test_queries_still_exact_after_growth(self):
        system = skewed_system(n_nodes=8, seed=3)
        grow_with_join_lb(system, 20, samples=4, rng=9)
        want = len(system.brute_force_matches("(comp*, *)"))
        assert system.query("(comp*, *)", rng=1).match_count == want


class TestNeighborBalancing:
    def test_round_reduces_imbalance(self):
        system = skewed_system(n_nodes=24, seed=4)
        before = coefficient_of_variation(list(system.node_loads().values()))
        shifts, cost = run_neighbor_balancing(system, rounds=8, threshold=1.5)
        after = coefficient_of_variation(list(system.node_loads().values()))
        assert shifts > 0
        assert cost > 0
        assert after < before
        assert system.check_placement_invariant()

    def test_preserves_all_elements(self):
        system = skewed_system(n_nodes=24, seed=5)
        before = system.total_elements()
        run_neighbor_balancing(system, rounds=6, threshold=1.5)
        assert system.total_elements() == before

    def test_queries_exact_after_balancing(self):
        system = skewed_system(n_nodes=24, seed=6)
        run_neighbor_balancing(system, rounds=6, threshold=1.5)
        system.overlay.rebuild_all_fingers()
        for q in ["(comp*, *)", "(*, net*)", "(*, *)"]:
            want = len(system.brute_force_matches(q))
            assert system.query(q, rng=2).match_count == want

    def test_threshold_validation(self):
        with pytest.raises(LoadBalanceError):
            neighbor_balance_round(skewed_system(), threshold=0.5)

    def test_balanced_system_is_quiescent(self):
        system = skewed_system(n_nodes=24, seed=7)
        run_neighbor_balancing(system, rounds=10, threshold=1.5)
        shifts, _ = neighbor_balance_round(system, threshold=3.0)
        # After convergence, a looser threshold triggers nothing.
        assert shifts == 0


class TestVirtualNodes:
    def test_adopt_assigns_hosts(self):
        system = skewed_system(n_nodes=12, seed=8)
        manager = VirtualNodeManager.adopt(system, virtuals_per_peer=3)
        assert len(manager.physical_peers()) == 4
        assert sum(len(manager.virtuals_of(p)) for p in manager.physical_peers()) == 12

    def test_adopt_validation(self):
        with pytest.raises(LoadBalanceError):
            VirtualNodeManager.adopt(skewed_system(), virtuals_per_peer=0)

    def test_physical_loads_sum_to_total(self):
        system = skewed_system(n_nodes=12, seed=9)
        manager = VirtualNodeManager.adopt(system, virtuals_per_peer=2)
        assert sum(manager.physical_loads().values()) == system.total_keys()

    def test_split_reduces_max_virtual_load(self):
        system = skewed_system(n_nodes=12, seed=10)
        manager = VirtualNodeManager.adopt(system, virtuals_per_peer=2)
        peak_before = max(manager.virtual_loads().values())
        splits = manager.split_overloaded(threshold_keys=max(1, peak_before // 2))
        assert splits > 0
        assert max(manager.virtual_loads().values()) <= peak_before
        assert system.check_placement_invariant()

    def test_split_keeps_host(self):
        system = skewed_system(n_nodes=12, seed=11)
        manager = VirtualNodeManager.adopt(system, virtuals_per_peer=2)
        loads = manager.virtual_loads()
        heavy = max(loads, key=lambda v: loads[v])
        host = manager.host_of[heavy]
        new_id = manager.split_virtual(heavy)
        if new_id is not None:
            assert manager.host_of[new_id] == host

    def test_migration_improves_physical_balance(self):
        system = skewed_system(n_nodes=24, seed=12)
        manager = VirtualNodeManager.adopt(system, virtuals_per_peer=4)
        before = coefficient_of_variation(list(manager.physical_loads().values()))
        moves = manager.rebalance()
        after = coefficient_of_variation(list(manager.physical_loads().values()))
        assert moves > 0
        assert after <= before

    def test_migration_never_empties_a_peer(self):
        system = skewed_system(n_nodes=24, seed=13)
        manager = VirtualNodeManager.adopt(system, virtuals_per_peer=4)
        manager.rebalance()
        for peer in manager.physical_peers():
            assert len(manager.virtuals_of(peer)) >= 1

    def test_unknown_virtual_split_rejected(self):
        system = skewed_system(n_nodes=8, seed=14)
        manager = VirtualNodeManager.adopt(system)
        with pytest.raises(LoadBalanceError):
            manager.split_virtual(999999999)


class TestCombinedPipeline:
    def test_join_plus_runtime_beats_either(self):
        """Figure 19's story: join-LB helps, join-LB + runtime LB is best."""
        base = skewed_system(n_nodes=40, seed=15)
        base_cov = coefficient_of_variation(list(base.node_loads().values()))

        join_only = skewed_system(n_nodes=10, seed=15)
        grow_with_join_lb(join_only, 40, samples=8, rng=16)
        join_cov = coefficient_of_variation(list(join_only.node_loads().values()))

        combined = skewed_system(n_nodes=10, seed=15)
        grow_with_join_lb(combined, 40, samples=8, rng=16)
        run_neighbor_balancing(combined, rounds=8, threshold=1.3)
        combined_cov = coefficient_of_variation(list(combined.node_loads().values()))

        assert join_cov < base_cov
        assert combined_cov < join_cov
