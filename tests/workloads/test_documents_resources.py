"""Tests for document and resource workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.keywords.query import Exact, Prefix, Query, Wildcard
from repro.workloads.documents import DocumentWorkload, storage_space
from repro.workloads.resources import GRID_ATTRIBUTES, ResourceWorkload, grid_space


class TestStorageSpace:
    def test_dims(self):
        space = storage_space(3, bits=12)
        assert space.dims == 3
        assert space.bits == 12

    def test_validation(self):
        with pytest.raises(WorkloadError):
            storage_space(0)


class TestDocumentWorkload:
    def test_key_count_and_uniqueness(self):
        wl = DocumentWorkload.generate(2, 500, vocabulary_size=800, rng=0)
        assert len(wl.keys) == 500
        assert len(set(wl.keys)) == 500

    def test_keys_match_dims(self):
        wl = DocumentWorkload.generate(3, 200, rng=1)
        assert all(len(k) == 3 for k in wl.keys)

    def test_deterministic(self):
        a = DocumentWorkload.generate(2, 300, rng=9)
        b = DocumentWorkload.generate(2, 300, rng=9)
        assert a.keys == b.keys

    def test_keys_are_publishable(self):
        wl = DocumentWorkload.generate(2, 100, rng=2)
        for key in wl.keys[:20]:
            coords = wl.space.coordinates(key)
            assert len(coords) == 2

    def test_popularity_skew_in_keys(self):
        """Zipf sampling concentrates keys on popular first words."""
        wl = DocumentWorkload.generate(2, 2000, vocabulary_size=1000, rng=3)
        counts = {}
        for key in wl.keys:
            counts[key[0]] = counts.get(key[0], 0) + 1
        assert max(counts.values()) >= 20

    def test_count_matching(self):
        wl = DocumentWorkload.generate(2, 300, rng=4)
        word = wl.keys[0][0]
        q = Query((Exact(word), Wildcard()))
        count = wl.count_matching(q)
        assert count >= 1
        assert count == sum(1 for k in wl.keys if k[0] == word)

    def test_popular_word(self):
        wl = DocumentWorkload.generate(2, 100, rng=5)
        assert wl.popular_word(0) == wl.vocabulary.words[0]


class TestGridSpace:
    def test_default(self):
        space = grid_space()
        assert space.dims == 3
        assert [d.name for d in space.dimensions] == ["memory", "cpu", "bandwidth"]

    def test_custom(self):
        space = grid_space(["storage", "cost"], bits=10)
        assert space.dims == 2

    def test_unknown_attribute(self):
        with pytest.raises(WorkloadError):
            grid_space(["gpu"])


class TestResourceWorkload:
    def test_generation(self):
        wl = ResourceWorkload.generate(500, rng=0)
        assert len(wl.keys) == 500
        assert all(len(k) == 3 for k in wl.keys)

    def test_values_in_domain(self):
        wl = ResourceWorkload.generate(300, rng=1)
        for key in wl.keys:
            for attr, value in zip(wl.attributes, key):
                lo, hi, _ = GRID_ATTRIBUTES[attr]
                assert lo <= value <= hi

    def test_values_cluster_at_configurations(self):
        wl = ResourceWorkload.generate(1000, jitter=0.01, rng=2)
        memory = np.array([k[0] for k in wl.keys])
        configs = np.array(GRID_ATTRIBUTES["memory"][2], dtype=float)
        # Every value within 1% of some standard configuration.
        rel = np.min(
            np.abs(memory[:, None] - configs[None, :]) / configs[None, :], axis=1
        )
        assert np.all(rel <= 0.011)

    def test_deterministic(self):
        a = ResourceWorkload.generate(100, rng=7)
        b = ResourceWorkload.generate(100, rng=7)
        assert a.keys == b.keys

    def test_count_matching(self):
        wl = ResourceWorkload.generate(400, rng=3)
        count = wl.count_matching("(*, *, *)")
        assert count == 400

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ResourceWorkload.generate(0)
