"""Tests for trace-replay workloads: loaders, mapping, synthesis, replay."""

import pytest

from repro.core.resultcache import ResultCache
from repro.core.system import SquidSystem
from repro.errors import WorkloadError
from repro.keywords.dimensions import WordDimension
from repro.keywords.space import KeywordSpace
from repro.workloads.trace import (
    Trace,
    TraceOp,
    load_aol_trace,
    load_msmarco_trace,
    replay,
    synthetic_trace,
    text_to_query,
)


@pytest.fixture
def space():
    return KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=8)


class TestTextToQuery:
    def test_long_tokens_become_prefixes(self, space):
        q = text_to_query("Computers Networking", space)
        assert str(q) == "(comp*, netw*)"

    def test_short_tokens_stay_exact(self, space):
        q = text_to_query("cpu ram", space)
        assert str(q) == "(cpu, ram)"

    def test_leftover_dimensions_wildcarded(self, space):
        q = text_to_query("storage", space)
        assert str(q) == "(stor*, *)"

    def test_extra_tokens_dropped(self, space):
        q = text_to_query("one two three four", space)
        assert str(q) == "(one, two)"

    def test_punctuation_and_case_normalized(self, space):
        q = text_to_query('  "Memory!"   GRID? ', space)
        assert str(q) == "(memo*, grid)"

    def test_untranslatable_text_returns_none(self, space):
        assert text_to_query("   ", space) is None
        assert text_to_query("!!! ...", space) is None


class TestLoaders:
    def test_aol_format_with_header_and_junk(self, space):
        lines = [
            "AnonID\tQuery\tQueryTime",
            "142\tdistributed storage\t2006-03-01 07:17:12",
            "malformed-line-without-tabs",
            "142\t\t2006-03-01 07:18:00",  # empty query
            "217\tgrid computing\t2006-03-04 11:02:43\thttp://x",  # clickthrough
        ]
        queries = load_aol_trace(lines, space)
        assert [str(q) for q in queries] == ["(dist*, stor*)", "(grid, comp*)"]

    def test_aol_limit(self, space):
        lines = [f"1\tquery {i} words\tt" for i in range(10)]
        assert len(load_aol_trace(lines, space, limit=3)) == 3

    def test_msmarco_format(self, space):
        lines = ["1048585\twhat is a distributed hash table", "2\t   "]
        queries = load_msmarco_trace(lines, space)
        assert [str(q) for q in queries] == ["(what, is)"]

    def test_loader_from_file(self, tmp_path, space):
        path = tmp_path / "log.tsv"
        path.write_text("7\tpeer discovery\tt\n", encoding="utf-8")
        assert [str(q) for q in load_aol_trace(path, space)] == ["(peer, disc*)"]


class TestSyntheticTrace:
    def _pool(self, space):
        return [text_to_query(w, space) for w in ("alpha", "beta", "gamma", "delta")]

    def test_length_and_kinds(self, space):
        trace = synthetic_trace(self._pool(space), 50, rng=1)
        assert len(trace) == 50
        assert trace.query_count == 50 and trace.update_count == 0

    def test_determinism(self, space):
        pool = self._pool(space)
        a = synthetic_trace(pool, 40, zipf_exponent=1.2, burstiness=0.3, rng=7)
        b = synthetic_trace(pool, 40, zipf_exponent=1.2, burstiness=0.3, rng=7)
        assert [str(op.query) for op in a] == [str(op.query) for op in b]

    def test_skew_concentrates_popularity(self, space):
        pool = self._pool(space)
        skewed = synthetic_trace(pool, 400, zipf_exponent=2.5, rng=3)
        top = str(pool[0])
        share = sum(1 for op in skewed if str(op.query) == top) / 400
        assert share > 0.5
        assert skewed.distinct_queries() <= len(pool)

    def test_publish_mix_inserts_updates(self, space):
        pool = self._pool(space)
        trace = synthetic_trace(
            pool, 200, publish_mix=0.2, publish_keys=[("alpha", "beta")], rng=5
        )
        publishes = [op for op in trace if op.kind == "publish"]
        assert 0 < len(publishes) < 100
        assert trace.update_count == len(publishes)
        assert all(op.key == ("alpha", "beta") for op in publishes)
        # deterministic payload counter: replays insert identical elements
        assert [op.payload for op in publishes] == [
            f"trace-pub-{i}" for i in range(len(publishes))
        ]

    def test_validation(self, space):
        pool = self._pool(space)
        with pytest.raises(WorkloadError):
            synthetic_trace(pool, -1)
        with pytest.raises(WorkloadError):
            synthetic_trace([], 5)
        with pytest.raises(WorkloadError):
            synthetic_trace(pool, 5, burstiness=1.0)
        with pytest.raises(WorkloadError):
            synthetic_trace(pool, 5, publish_mix=0.5)  # no publish_keys
        with pytest.raises(WorkloadError):
            TraceOp("nonsense")
        with pytest.raises(WorkloadError):
            TraceOp("query")
        with pytest.raises(WorkloadError):
            TraceOp("publish")


class TestReplay:
    def test_replay_executes_ops_in_order(self, space):
        system = SquidSystem.create(space, n_nodes=8, seed=3)
        system.publish(("alpha", "beta"), payload="seed")
        trace = Trace(
            [
                TraceOp("query", query=text_to_query("alpha beta", space)),
                TraceOp("publish", key=("alpha", "beta"), payload="added"),
                TraceOp("query", query=text_to_query("alpha beta", space)),
                TraceOp("unpublish", key=("alpha", "beta"), payload="added"),
                TraceOp("query", query=text_to_query("alpha beta", space)),
            ]
        )
        results = replay(system, trace, seed=1)
        assert [r is None for r in results] == [False, True, False, True, False]
        assert len(results[0].matches) == 1
        assert len(results[2].matches) == 2
        assert len(results[4].matches) == 1

    def test_replay_drives_the_result_cache(self, space):
        system = SquidSystem.create(
            space, n_nodes=8, seed=3, result_cache=ResultCache(capacity=8)
        )
        system.publish(("alpha", "beta"), payload="seed")
        q = text_to_query("alpha beta", space)
        trace = Trace.from_queries([q, q, q])
        results = replay(system, trace, seed=1)
        assert [r.stats.result_cache_hit for r in results] == [False, True, True]
        assert system.result_cache.hit_rate == pytest.approx(2 / 3)
