"""Tests for Zipf query streams."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.streams import ZipfQueryStream

POOL = [f"(q{i}*, *)" for i in range(10)]


class TestValidation:
    def test_empty_pool(self):
        with pytest.raises(WorkloadError):
            ZipfQueryStream([])

    def test_bad_locality(self):
        with pytest.raises(WorkloadError):
            ZipfQueryStream(POOL, locality=1.0)
        with pytest.raises(WorkloadError):
            ZipfQueryStream(POOL, locality=-0.1)

    def test_bad_window(self):
        with pytest.raises(WorkloadError):
            ZipfQueryStream(POOL, window=0)

    def test_negative_length(self):
        with pytest.raises(WorkloadError):
            ZipfQueryStream(POOL).generate(-1)


class TestGeneration:
    def test_length(self):
        stream = ZipfQueryStream(POOL).generate(100, rng=0)
        assert len(stream) == 100
        assert all(q in POOL for q in stream)

    def test_deterministic(self):
        s = ZipfQueryStream(POOL)
        assert s.generate(50, rng=7) == s.generate(50, rng=7)

    def test_zipf_skew(self):
        s = ZipfQueryStream(POOL, exponent=1.2)
        counts = s.popularity_counts(s.generate(2000, rng=1))
        ranked = [counts[q] for q in POOL]
        # The head query dominates the tail.
        assert ranked[0] > 3 * ranked[-1]

    def test_zero_exponent_near_uniform(self):
        s = ZipfQueryStream(POOL, exponent=0.0)
        counts = s.popularity_counts(s.generate(5000, rng=2))
        assert max(counts.values()) < 2 * min(counts.values())

    def test_locality_increases_repeats(self):
        def repeat_rate(locality):
            s = ZipfQueryStream(POOL, exponent=0.0, locality=locality, window=1)
            stream = s.generate(3000, rng=3)
            return sum(1 for a, b in zip(stream, stream[1:]) if a == b) / len(stream)

        assert repeat_rate(0.8) > repeat_rate(0.0) + 0.3

    def test_expected_top_share(self):
        s = ZipfQueryStream(POOL, exponent=1.0)
        share = s.expected_top_share(1000)
        counts = s.popularity_counts(s.generate(5000, rng=4))
        observed = counts[POOL[0]] / 5000
        assert observed == pytest.approx(share, abs=0.05)
