"""Tests for the synthetic corpus."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.corpus import COMMON_STEMS, Vocabulary, zipf_weights


class TestZipfWeights:
    def test_normalized(self):
        w = zipf_weights(100)
        assert w.sum() == pytest.approx(1.0)

    def test_decreasing(self):
        w = zipf_weights(50, exponent=1.2)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_zero_exponent_uniform(self):
        w = zipf_weights(10, exponent=0.0)
        assert np.allclose(w, 0.1)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0)
        with pytest.raises(WorkloadError):
            zipf_weights(10, exponent=-1)


class TestVocabulary:
    def test_size_and_uniqueness(self):
        vocab = Vocabulary(size=500, rng=0)
        assert len(vocab) == 500
        assert len(set(vocab.words)) == 500

    def test_all_lowercase_alpha(self):
        vocab = Vocabulary(size=300, rng=1)
        assert all(w.isalpha() and w.islower() for w in vocab.words)

    def test_deterministic(self):
        a = Vocabulary(size=200, rng=7)
        b = Vocabulary(size=200, rng=7)
        assert a.words == b.words

    def test_prefix_families_exist(self):
        """Real-corpus property: many words share 4-char prefixes."""
        vocab = Vocabulary(size=2000, rng=2)
        prefixes = {}
        for w in vocab.words:
            prefixes.setdefault(w[:4], []).append(w)
        families = [v for v in prefixes.values() if len(v) >= 3]
        assert len(families) > 50

    def test_sampling_is_skewed(self):
        vocab = Vocabulary(size=500, exponent=1.0, rng=3)
        sample = vocab.sample(5000, rng=4)
        counts = {}
        for w in sample:
            counts[w] = counts.get(w, 0) + 1
        top = max(counts.values())
        assert top > 5000 / 500 * 5  # far above uniform expectation

    def test_popular(self):
        vocab = Vocabulary(size=100, rng=5)
        assert vocab.popular(3) == vocab.words[:3]

    def test_rank_of(self):
        vocab = Vocabulary(size=100, rng=6)
        assert vocab.rank_of(vocab.words[7]) == 7
        with pytest.raises(WorkloadError):
            vocab.rank_of("notaword123")

    def test_validation(self):
        with pytest.raises(WorkloadError):
            Vocabulary(size=0)

    def test_large_vocabulary(self):
        vocab = Vocabulary(size=6000, rng=8)
        assert len(set(vocab.words)) == 6000


class TestStems:
    def test_stems_sorted_and_unique(self):
        assert len(set(COMMON_STEMS)) == len(COMMON_STEMS)
        assert all(s.isalpha() and s.islower() for s in COMMON_STEMS)
