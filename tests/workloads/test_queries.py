"""Tests for Q1/Q2/Q3 query generators."""

import pytest

from repro.errors import WorkloadError
from repro.keywords.query import Exact, NumericRange, Prefix, Wildcard
from repro.workloads.documents import DocumentWorkload
from repro.workloads.queries import (
    q1_queries,
    q2_queries,
    q3_full_range_queries,
    q3_keyword_range_queries,
)
from repro.workloads.resources import ResourceWorkload


@pytest.fixture(scope="module")
def docs2d():
    return DocumentWorkload.generate(2, 800, rng=0)


@pytest.fixture(scope="module")
def docs3d():
    return DocumentWorkload.generate(3, 800, rng=1)


@pytest.fixture(scope="module")
def resources():
    return ResourceWorkload.generate(600, rng=2)


class TestQ1:
    def test_shape(self, docs2d):
        queries = q1_queries(docs2d, count=6, rng=3)
        assert len(queries) == 6
        for q in queries:
            assert q.dims == 2
            assert isinstance(q.terms[0], (Exact, Prefix))
            assert all(isinstance(t, Wildcard) for t in q.terms[1:])

    def test_3d(self, docs3d):
        for q in q1_queries(docs3d, count=4, rng=4):
            assert q.dims == 3

    def test_queries_have_matches(self, docs2d):
        queries = q1_queries(docs2d, count=10, rng=5)
        match_counts = [docs2d.count_matching(q) for q in queries]
        assert all(c >= 1 for c in match_counts)
        # The paper: "each query resulted in a different number of matches".
        assert len(set(match_counts)) > 1

    def test_deterministic(self, docs2d):
        assert q1_queries(docs2d, rng=6) == q1_queries(docs2d, rng=6)


class TestQ2:
    def test_shape(self, docs3d):
        queries = q2_queries(docs3d, count=5, rng=7)
        for q in queries:
            assert q.dims == 3
            specified = [t for t in q.terms if not isinstance(t, Wildcard)]
            assert len(specified) == 2
            assert any(isinstance(t, Prefix) for t in q.terms)

    def test_queries_have_matches(self, docs2d):
        for q in q2_queries(docs2d, count=5, rng=8):
            assert docs2d.count_matching(q) >= 1

    def test_needs_two_dims(self):
        wl = DocumentWorkload.generate(1, 50, rng=9)
        with pytest.raises(WorkloadError):
            q2_queries(wl)


class TestQ3:
    def test_keyword_range_shape(self, resources):
        queries = q3_keyword_range_queries(resources, count=4, rng=10)
        for q in queries:
            assert isinstance(q.terms[0], Exact)
            assert isinstance(q.terms[1], NumericRange)
            assert isinstance(q.terms[2], Wildcard)

    def test_full_range_shape(self, resources):
        for q in q3_full_range_queries(resources, count=5, rng=11):
            assert all(isinstance(t, NumericRange) for t in q.terms)

    def test_ranges_contain_anchor(self, resources):
        """Each generated query matches at least its anchor resource."""
        for q in q3_full_range_queries(resources, count=8, rng=12):
            assert resources.count_matching(q) >= 1

    def test_keyword_range_has_matches(self, resources):
        for q in q3_keyword_range_queries(resources, count=6, rng=13):
            assert resources.count_matching(q) >= 1
