"""Route-cache exactness: cached routes must equal uncached greedy routing,
including across churn (joins, graceful leaves, crashes, stabilization).
ISSUE acceptance criterion: zero stale-route misses after a churn burst."""

from __future__ import annotations

import random

import pytest

from repro.obs import collecting
from repro.overlay.chord import ChordRing, RouteCache


def _uncached_path(ring: ChordRing, source: int, key: int) -> tuple[int, ...]:
    """The greedy route computed with the cache disabled."""
    saved = ring.route_cache
    ring.route_cache = None
    try:
        return ring.route(source, key).path
    finally:
        ring.route_cache = saved


def _assert_routes_exact(ring: ChordRing, keys, sources=None) -> None:
    """Every cached route equals the uncached one and ends at the owner."""
    sources = sources if sources is not None else ring.node_ids()
    for source in sources:
        for key in keys:
            cached = ring.route(source, key)
            assert cached.path == _uncached_path(ring, source, key)
            assert cached.destination == ring.owner(key)


@pytest.fixture
def ring():
    return ChordRing.build(10, [3, 97, 205, 330, 471, 512, 640, 777, 880, 1000])


def test_cache_unit_behaviour():
    cache = RouteCache(maxsize=2)
    assert cache.get(1, 2) is None
    cache.put(1, 2, (1, 5, 2))
    assert cache.get(1, 2) == (1, 5, 2)
    assert len(cache) == 1
    cache.put(3, 4, (3, 4))
    cache.put(5, 6, (5, 6))  # exceeds maxsize: cleared, then inserted
    assert len(cache) == 1
    assert cache.get(1, 2) is None
    cache.invalidate()
    assert len(cache) == 0


def test_cached_routes_match_uncached_on_static_ring(ring):
    keys = list(range(0, 1024, 37))
    _assert_routes_exact(ring, keys)
    # Second pass is served from the cache; still identical.
    assert len(ring.route_cache) > 0
    _assert_routes_exact(ring, keys)


def test_repeat_route_hits_cache(ring):
    with collecting() as registry:
        first = ring.route(3, 500)
        second = ring.route(3, 500)
    assert first.path == second.path
    counters = registry.snapshot()["counters"]
    assert counters["overlay.route_cache.misses"] == 1
    assert counters["overlay.route_cache.hits"] == 1
    # Cache hits still report routing traffic, so query stats are unchanged.
    assert counters["overlay.routes"] == 2


def test_keys_sharing_an_owner_share_a_cache_entry(ring):
    owner = ring.owner(100)
    keys = [k for k in range(60, 140) if ring.owner(k) == owner]
    assert len(keys) > 1
    for key in keys:
        ring.route(3, key)
    assert len(ring.route_cache) == 1


def test_mutations_invalidate_the_cache(ring):
    ring.route(3, 500)
    assert len(ring.route_cache) > 0
    ring.join(222)
    assert len(ring.route_cache) == 0
    ring.route(3, 500)
    ring.leave(222)
    assert len(ring.route_cache) == 0
    ring.route(3, 500)
    ring.fail(880)
    assert len(ring.route_cache) == 0


def test_zero_stale_routes_after_churn_burst(ring):
    """A randomized join/leave/crash burst with stabilization interleaved:
    after every event, cached routes must match uncached greedy routing."""
    rng = random.Random(9)
    keys = list(range(0, 1024, 61))
    _assert_routes_exact(ring, keys)  # warm the cache pre-churn
    for _ in range(30):
        action = rng.random()
        live = ring.node_ids()
        if action < 0.4 or len(live) < 4:
            candidate = rng.randrange(1024)
            if candidate not in live:
                ring.join(candidate)
        elif action < 0.7:
            ring.leave(rng.choice(live))
        else:
            ring.fail(rng.choice(live))
            # Crashes leave stale state; repair as stabilization would.
            for node in ring.node_ids():
                ring.stabilize_node(node)
        _assert_routes_exact(ring, keys, sources=ring.node_ids()[:4])
    # Full sweep at the end: every source, every key, zero stale routes.
    _assert_routes_exact(ring, keys)


def test_cache_disabled_ring_still_routes(ring):
    ring.route_cache = None
    result = ring.route(3, 500)
    assert result.destination == ring.owner(500)
