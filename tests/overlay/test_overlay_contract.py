"""Contract tests: every overlay family honors the same interface.

The query engine and baselines are written against
:class:`repro.overlay.base.Overlay`; this suite runs one identical battery
over Chord, PNS-Chord, Pastry, and CAN so a regression in any family's
owner/route agreement is caught in one place.
"""

import numpy as np
import pytest

from repro.overlay import (
    CanOverlay,
    ChordRing,
    LatencyModel,
    PastryOverlay,
    ProximityChordRing,
)

BITS = 14
N_NODES = 64


def make_chord():
    return ChordRing.with_random_ids(BITS, N_NODES, rng=1)


def make_pns():
    plain = ChordRing.with_random_ids(BITS, N_NODES, rng=2)
    ids = plain.node_ids()
    return ProximityChordRing.build_with_model(
        BITS, ids, model=LatencyModel.random(ids, rng=3)
    )


def make_pastry():
    return PastryOverlay.with_random_ids(BITS, N_NODES, digit_bits=2, rng=4)


def make_can():
    can = CanOverlay(BITS, can_dims=2)
    rng = np.random.default_rng(5)
    for _ in range(N_NODES):
        can.join(rng)
    return can


FAMILIES = {
    "chord": make_chord,
    "pns": make_pns,
    "pastry": make_pastry,
    "can": make_can,
}


@pytest.fixture(scope="module", params=sorted(FAMILIES), name="overlay")
def overlay_fixture(request):
    return FAMILIES[request.param]()


class TestOverlayContract:
    def test_node_ids_sorted_unique(self, overlay):
        ids = overlay.node_ids()
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)
        assert len(ids) == N_NODES

    def test_every_key_has_exactly_one_owner(self, overlay):
        rng = np.random.default_rng(10)
        ids = set(overlay.node_ids())
        for key in rng.integers(0, overlay.space, size=100):
            owner = overlay.owner(int(key))
            assert owner in ids

    def test_owner_is_deterministic(self, overlay):
        rng = np.random.default_rng(11)
        for key in rng.integers(0, overlay.space, size=50):
            assert overlay.owner(int(key)) == overlay.owner(int(key))

    def test_route_agrees_with_owner(self, overlay):
        rng = np.random.default_rng(12)
        ids = overlay.node_ids()
        for _ in range(120):
            source = ids[rng.integers(0, len(ids))]
            key = int(rng.integers(0, overlay.space))
            result = overlay.route(source, key)
            assert result.destination == overlay.owner(key)
            assert result.path[0] == source
            assert result.hops == len(result.path) - 1

    def test_path_nodes_are_members(self, overlay):
        rng = np.random.default_rng(13)
        ids = overlay.node_ids()
        members = set(ids)
        for _ in range(40):
            source = ids[rng.integers(0, len(ids))]
            key = int(rng.integers(0, overlay.space))
            assert set(overlay.route(source, key).path) <= members

    def test_route_to_owned_key_is_local(self, overlay):
        """Routing to a key a node owns must not leave that node."""
        ids = overlay.node_ids()
        for source in ids[:10]:
            # Find a key this node owns (its own id maps to itself for the
            # ring families; for CAN probe a few keys).
            rng = np.random.default_rng(source % 1000)
            for _ in range(50):
                key = int(rng.integers(0, overlay.space))
                if overlay.owner(key) == source:
                    assert overlay.route(source, key).path == (source,)
                    break

    def test_hops_bounded(self, overlay):
        rng = np.random.default_rng(14)
        ids = overlay.node_ids()
        worst = 0
        for _ in range(100):
            source = ids[rng.integers(0, len(ids))]
            key = int(rng.integers(0, overlay.space))
            worst = max(worst, overlay.route(source, key).hops)
        # Generous family-agnostic bound: even CAN's O(sqrt N) fits.
        assert worst <= 6 * int(np.sqrt(N_NODES)) + 4
