"""Tests for proximity neighbor selection (geographic-locality extension)."""

import numpy as np
import pytest

from repro.errors import NodeNotFoundError, OverlayError
from repro.overlay.chord import ChordRing
from repro.overlay.proximity import LatencyModel, ProximityChordRing


def build_pair(n_nodes=200, bits=16, seed=0, candidates=8):
    """A plain ring and a PNS ring over the same ids and latency model."""
    plain = ChordRing.with_random_ids(bits, n_nodes, rng=seed)
    ids = plain.node_ids()
    model = LatencyModel.random(ids, rng=seed + 1)
    pns = ProximityChordRing.build_with_model(
        bits, ids, model=model, candidates=candidates
    )
    return plain, pns, model


class TestLatencyModel:
    def test_symmetric(self):
        model = LatencyModel.random([1, 2, 3], rng=0)
        assert model.latency(1, 2) == model.latency(2, 1)

    def test_self_latency_zero(self):
        model = LatencyModel.random([1, 2], rng=0)
        assert model.latency(1, 1) == 0.0

    def test_triangle_inequality(self):
        model = LatencyModel.random([1, 2, 3], rng=1)
        assert model.latency(1, 3) <= model.latency(1, 2) + model.latency(2, 3) + 1e-9

    def test_unknown_node(self):
        model = LatencyModel.random([1], rng=0)
        with pytest.raises(NodeNotFoundError):
            model.latency(1, 99)

    def test_path_latency(self):
        model = LatencyModel({1: (0, 0), 2: (3, 4), 3: (3, 0)})
        assert model.path_latency((1, 2, 3)) == pytest.approx(5.0 + 4.0)

    def test_add_node(self):
        model = LatencyModel.random([1], rng=0)
        model.add_node(2, rng=1)
        assert model.latency(1, 2) >= 0


class TestProximityRing:
    def test_candidates_validation(self):
        model = LatencyModel.random([1], rng=0)
        with pytest.raises(OverlayError):
            ProximityChordRing(8, model, candidates=0)

    def test_routing_still_correct(self):
        _, pns, _ = build_pair(n_nodes=150, seed=2)
        rng = np.random.default_rng(3)
        ids = pns.node_ids()
        for _ in range(100):
            source = ids[rng.integers(0, len(ids))]
            key = int(rng.integers(0, pns.space))
            assert pns.route(source, key).destination == pns.owner(key)

    def test_fingers_live_in_valid_intervals(self):
        """Each PNS finger must still 'succeed n by at least 2^i'."""
        from repro.overlay.base import ring_contains_open_closed

        _, pns, _ = build_pair(n_nodes=100, seed=4)
        for node in pns.nodes.values():
            for i, finger in enumerate(node.fingers):
                target = (node.id + (1 << i)) % pns.space
                # finger is at or after the classic target on the ring.
                assert finger == pns.owner(target) or ring_contains_open_closed(
                    target, node.id, finger, pns.space
                )

    def test_hop_counts_comparable(self):
        plain, pns, _ = build_pair(n_nodes=250, seed=5)
        rng = np.random.default_rng(6)
        ids = plain.node_ids()
        plain_hops, pns_hops = [], []
        for _ in range(150):
            source = ids[rng.integers(0, len(ids))]
            key = int(rng.integers(0, plain.space))
            plain_hops.append(plain.route(source, key).hops)
            pns_hops.append(pns.route(source, key).hops)
        # PNS trades a bounded number of extra hops for latency.
        assert np.mean(pns_hops) <= 2.0 * np.mean(plain_hops) + 1

    def test_pns_reduces_latency(self):
        plain, pns, model = build_pair(n_nodes=250, seed=7)
        rng = np.random.default_rng(8)
        ids = plain.node_ids()
        plain_lat, pns_lat = 0.0, 0.0
        for _ in range(200):
            source = ids[rng.integers(0, len(ids))]
            key = int(rng.integers(0, plain.space))
            plain_lat += model.path_latency(plain.route(source, key).path)
            pns_lat += model.path_latency(pns.route(source, key).path)
        assert pns_lat < plain_lat

    def test_route_latency_helper(self):
        _, pns, model = build_pair(n_nodes=50, seed=9)
        ids = pns.node_ids()
        latency, hops = pns.route_latency(ids[0], 12345)
        assert latency >= 0
        assert hops >= 0

    def test_more_candidates_no_worse(self):
        """A larger candidate pool can only improve expected finger latency."""
        plain, pns1, model = build_pair(n_nodes=200, seed=10, candidates=2)
        pns2 = ProximityChordRing.build_with_model(
            16, plain.node_ids(), model=model, candidates=16
        )
        rng = np.random.default_rng(11)
        ids = plain.node_ids()
        lat1 = lat2 = 0.0
        for _ in range(150):
            source = ids[rng.integers(0, len(ids))]
            key = int(rng.integers(0, plain.space))
            lat1 += model.path_latency(pns1.route(source, key).path)
            lat2 += model.path_latency(pns2.route(source, key).path)
        assert lat2 <= lat1 * 1.1  # allow small noise; trend must hold
