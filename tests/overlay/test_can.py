"""Tests for the CAN overlay."""

import numpy as np
import pytest

from repro.errors import (
    DuplicateNodeError,
    EmptyOverlayError,
    NodeNotFoundError,
    OverlayError,
)
from repro.overlay.can import CanOverlay, Zone


def grown_overlay(n=20, seed=0, bits=12, can_dims=2):
    can = CanOverlay(bits, can_dims)
    rng = np.random.default_rng(seed)
    for _ in range(n):
        can.join(rng)
    return can


class TestZone:
    def test_contains(self):
        z = Zone((0, 0), (3, 3))
        assert z.contains((0, 0)) and z.contains((3, 3))
        assert not z.contains((4, 0))

    def test_volume(self):
        assert Zone((0, 0), (3, 1)).volume() == 8

    def test_distance(self):
        z = Zone((2, 2), (4, 4))
        assert z.distance_to((3, 3)) == 0
        assert z.distance_to((0, 3)) == 2
        assert z.distance_to((6, 6)) == 4

    def test_touches_face(self):
        a = Zone((0, 0), (1, 3))
        b = Zone((2, 0), (3, 3))
        assert a.touches(b) and b.touches(a)

    def test_corner_contact_is_not_face(self):
        a = Zone((0, 0), (1, 1))
        b = Zone((2, 2), (3, 3))
        assert not a.touches(b)

    def test_separated(self):
        a = Zone((0, 0), (1, 1))
        b = Zone((5, 0), (6, 1))
        assert not a.touches(b)

    def test_split(self):
        z = Zone((0, 0), (3, 3))
        lower, upper = z.split(0)
        assert lower == Zone((0, 0), (1, 3))
        assert upper == Zone((2, 0), (3, 3))

    def test_split_too_thin(self):
        with pytest.raises(OverlayError):
            Zone((0, 0), (0, 3)).split(0)


class TestConstruction:
    def test_bits_divisibility(self):
        with pytest.raises(OverlayError):
            CanOverlay(13, 2)

    def test_bad_dims(self):
        with pytest.raises(OverlayError):
            CanOverlay(12, 0)

    def test_bootstrap(self):
        can = CanOverlay(8, 2)
        nid = can.bootstrap()
        assert can.node_ids() == [nid]
        assert can.owner(0) == nid
        assert can.owner(255) == nid

    def test_double_bootstrap_rejected(self):
        can = CanOverlay(8, 2)
        can.bootstrap()
        with pytest.raises(DuplicateNodeError):
            can.bootstrap()

    def test_empty_owner(self):
        with pytest.raises(EmptyOverlayError):
            CanOverlay(8, 2).owner(1)


class TestJoin:
    def test_zones_tile_space(self):
        can = grown_overlay(n=30, bits=12)
        total = sum(z.volume() for zl in can.zones.values() for z in zl)
        assert total == 1 << 12

    def test_zones_disjoint(self):
        can = grown_overlay(n=15, bits=10)
        rng = np.random.default_rng(1)
        for _ in range(200):
            point = tuple(int(x) for x in rng.integers(0, 32, size=2))
            owners = [
                nid
                for nid, zl in can.zones.items()
                for z in zl
                if z.contains(point)
            ]
            assert len(owners) == 1

    def test_join_at_point_splits_target(self):
        can = CanOverlay(8, 2)
        first = can.bootstrap()
        second = can.join_at_point((0, 0))
        assert len(can.zones[first]) == 1
        assert len(can.zones[second]) == 1
        assert can.zones[first][0].volume() == 128


class TestOwnerAndRouting:
    def test_every_key_has_owner(self):
        can = grown_overlay(n=25)
        rng = np.random.default_rng(2)
        for key in rng.integers(0, can.space, size=100):
            assert can.owner(int(key)) in can.zones

    def test_route_reaches_owner(self):
        can = grown_overlay(n=40)
        rng = np.random.default_rng(3)
        ids = can.node_ids()
        for _ in range(100):
            source = ids[rng.integers(0, len(ids))]
            key = int(rng.integers(0, can.space))
            result = can.route(source, key)
            assert result.destination == can.owner(key)
            assert result.path[0] == source

    def test_route_hops_scale(self):
        """CAN routes in O(d * N^(1/d)) hops: far more than Chord's O(log N)."""
        can = grown_overlay(n=100, bits=16)
        rng = np.random.default_rng(4)
        ids = can.node_ids()
        hops = [
            can.route(
                ids[rng.integers(0, len(ids))], int(rng.integers(0, can.space))
            ).hops
            for _ in range(50)
        ]
        n = len(ids)
        assert np.mean(hops) < 4 * 2 * np.sqrt(n)

    def test_route_from_unknown(self):
        with pytest.raises(NodeNotFoundError):
            grown_overlay(5).route(999, 0)


class TestNeighbors:
    def test_symmetry(self):
        can = grown_overlay(n=20)
        for nid in can.node_ids():
            for other in can.neighbors(nid):
                assert nid in can.neighbors(other)

    def test_no_self_neighbor(self):
        can = grown_overlay(n=20)
        for nid in can.node_ids():
            assert nid not in can.neighbors(nid)


class TestLeave:
    def test_leave_preserves_tiling(self):
        can = grown_overlay(n=20, bits=10)
        ids = can.node_ids()
        can.leave(ids[3])
        can.leave(ids[7])
        total = sum(z.volume() for zl in can.zones.values() for z in zl)
        assert total == 1 << 10
        assert len(can.node_ids()) == 18

    def test_leave_then_route(self):
        can = grown_overlay(n=20, bits=10)
        can.leave(can.node_ids()[0])
        rng = np.random.default_rng(5)
        ids = can.node_ids()
        for _ in range(50):
            source = ids[rng.integers(0, len(ids))]
            key = int(rng.integers(0, can.space))
            assert can.route(source, key).destination == can.owner(key)

    def test_leave_unknown(self):
        with pytest.raises(NodeNotFoundError):
            grown_overlay(5).leave(12345)

    def test_leave_last(self):
        can = CanOverlay(8, 2)
        nid = can.bootstrap()
        can.leave(nid)
        assert can.node_ids() == []


class TestJoinCost:
    def test_bootstrap_cost(self):
        can = CanOverlay(8, 2)
        assert can.join_cost((0, 0)) == 1

    def test_cost_components(self):
        can = grown_overlay(n=25, bits=12)
        point = (3, 3)
        entry = can.node_ids()[0]
        cost = can.join_cost(point, entry=entry)
        route = can.route_to_point(entry, point)
        assert cost == route.hops + 1 + len(can.neighbors(route.destination))

    def test_cost_positive_and_bounded(self):
        can = grown_overlay(n=30, bits=12)
        rng = np.random.default_rng(9)
        for _ in range(20):
            point = tuple(int(x) for x in rng.integers(0, 64, size=2))
            cost = can.join_cost(point)
            assert 1 <= cost <= len(can.node_ids()) * 2
