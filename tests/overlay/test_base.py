"""Tests for ring interval arithmetic and RouteResult."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.overlay.base import (
    RouteResult,
    ring_contains_open_closed,
    ring_contains_open_open,
)

SPACE = 16


class TestOpenClosed:
    def test_simple_interval(self):
        assert ring_contains_open_closed(5, 3, 8, SPACE)
        assert ring_contains_open_closed(8, 3, 8, SPACE)
        assert not ring_contains_open_closed(3, 3, 8, SPACE)
        assert not ring_contains_open_closed(9, 3, 8, SPACE)

    def test_wrapping_interval(self):
        assert ring_contains_open_closed(15, 12, 4, SPACE)
        assert ring_contains_open_closed(0, 12, 4, SPACE)
        assert ring_contains_open_closed(4, 12, 4, SPACE)
        assert not ring_contains_open_closed(12, 12, 4, SPACE)
        assert not ring_contains_open_closed(8, 12, 4, SPACE)

    def test_degenerate_full_ring(self):
        for v in range(SPACE):
            assert ring_contains_open_closed(v, 7, 7, SPACE)

    def test_values_reduced_mod_space(self):
        assert ring_contains_open_closed(5 + SPACE, 3, 8, SPACE)

    @given(
        st.integers(0, SPACE - 1), st.integers(0, SPACE - 1), st.integers(0, SPACE - 1)
    )
    def test_partition_property(self, v, a, b):
        """Every point is in exactly one of (a, b] and (b, a] when a != b."""
        if a == b:
            return
        in_ab = ring_contains_open_closed(v, a, b, SPACE)
        in_ba = ring_contains_open_closed(v, b, a, SPACE)
        assert in_ab != in_ba


class TestOpenOpen:
    def test_simple(self):
        assert ring_contains_open_open(5, 3, 8, SPACE)
        assert not ring_contains_open_open(8, 3, 8, SPACE)
        assert not ring_contains_open_open(3, 3, 8, SPACE)

    def test_wrapping(self):
        assert ring_contains_open_open(0, 12, 4, SPACE)
        assert not ring_contains_open_open(4, 12, 4, SPACE)

    def test_degenerate(self):
        assert ring_contains_open_open(5, 7, 7, SPACE)
        assert not ring_contains_open_open(7, 7, 7, SPACE)


class TestRouteResult:
    def test_properties(self):
        r = RouteResult(key=9, path=(1, 5, 8))
        assert r.source == 1
        assert r.destination == 8
        assert r.hops == 2

    def test_self_delivery(self):
        r = RouteResult(key=3, path=(4,))
        assert r.source == r.destination == 4
        assert r.hops == 0
