"""Tests for the Chord ring: ownership, routing, membership, stabilization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DuplicateNodeError,
    EmptyOverlayError,
    NodeNotFoundError,
    OverlayError,
)
from repro.overlay.base import ring_contains_open_closed
from repro.overlay.chord import ChordRing

BITS = 10


def small_ring():
    return ChordRing.build(BITS, [10, 100, 300, 500, 800, 1000])


class TestBuild:
    def test_node_ids_sorted(self):
        ring = ChordRing.build(BITS, [500, 10, 300])
        assert ring.node_ids() == [10, 300, 500]

    def test_rejects_duplicates(self):
        with pytest.raises(DuplicateNodeError):
            ChordRing.build(BITS, [5, 5])

    def test_rejects_out_of_range(self):
        with pytest.raises(OverlayError):
            ChordRing.build(BITS, [5000])

    def test_random_ids(self):
        ring = ChordRing.with_random_ids(16, 50, rng=0)
        assert len(ring) == 50
        assert ring.node_ids() == sorted(ring.node_ids())

    def test_random_ids_deterministic(self):
        a = ChordRing.with_random_ids(16, 30, rng=5).node_ids()
        b = ChordRing.with_random_ids(16, 30, rng=5).node_ids()
        assert a == b

    def test_fingers_correct_after_build(self):
        ring = small_ring()
        for node in ring.nodes.values():
            for i, finger in enumerate(node.fingers):
                target = (node.id + (1 << i)) % ring.space
                assert finger == ring.owner(target)

    def test_successor_predecessor_links(self):
        ring = small_ring()
        ids = ring.node_ids()
        for i, nid in enumerate(ids):
            node = ring.nodes[nid]
            assert node.successor == ids[(i + 1) % len(ids)]
            assert node.predecessor == ids[i - 1]


class TestOwner:
    def test_paper_example(self):
        """Paper Figure 4: ring 0..16, 5 nodes; keys 6, 7, 8 map to node 8."""
        ring = ChordRing.build(4, [1, 3, 8, 12, 15])
        for key in (6, 7, 8):
            assert ring.owner(key) == 8

    def test_wraparound(self):
        ring = ChordRing.build(4, [3, 8, 12])
        assert ring.owner(13) == 3
        assert ring.owner(0) == 3

    def test_exact_id(self):
        ring = small_ring()
        assert ring.owner(300) == 300

    def test_empty_ring(self):
        with pytest.raises(EmptyOverlayError):
            ChordRing(BITS).owner(5)

    def test_owner_range(self):
        ring = small_ring()
        pred, node = ring.owner_range(300)
        assert pred == 100 and node == 300

    @given(st.integers(0, (1 << BITS) - 1))
    def test_owner_consistent_with_range(self, key):
        ring = small_ring()
        owner = ring.owner(key)
        pred = ring.predecessor_id(owner)
        assert ring_contains_open_closed(key, pred, owner, ring.space)


class TestRouting:
    @given(st.integers(0, (1 << BITS) - 1), st.integers(0, 5))
    @settings(max_examples=200)
    def test_route_reaches_owner(self, key, source_idx):
        ring = small_ring()
        source = ring.node_ids()[source_idx]
        result = ring.route(source, key)
        assert result.destination == ring.owner(key)
        assert result.path[0] == source

    def test_route_to_own_key_is_free(self):
        ring = small_ring()
        result = ring.route(300, 200)  # 200 in (100, 300]
        assert result.path == (300,)
        assert result.hops == 0

    def test_route_hops_logarithmic(self):
        ring = ChordRing.with_random_ids(20, 1000, rng=1)
        rng = np.random.default_rng(2)
        ids = ring.node_ids()
        hops = []
        for _ in range(100):
            source = ids[rng.integers(0, len(ids))]
            key = int(rng.integers(0, ring.space))
            hops.append(ring.route(source, key).hops)
        # O(log N): average about 0.5*log2(N) ~ 5 for N=1000; allow slack.
        assert np.mean(hops) < 2 * np.log2(len(ids))
        assert max(hops) <= 4 * np.log2(len(ids))

    def test_route_from_unknown_node(self):
        with pytest.raises(NodeNotFoundError):
            small_ring().route(999, 5)

    def test_path_nodes_are_live(self):
        ring = small_ring()
        result = ring.route(10, 999)
        assert all(nid in ring.nodes for nid in result.path)

    def test_single_node_ring(self):
        ring = ChordRing.build(BITS, [42])
        result = ring.route(42, 7)
        assert result.path == (42,)


class TestJoinLeave:
    def test_join_updates_membership(self):
        ring = small_ring()
        cost = ring.join(600)
        assert 600 in ring.nodes
        assert cost >= 1
        assert ring.owner(550) == 600

    def test_join_duplicate_rejected(self):
        ring = small_ring()
        with pytest.raises(DuplicateNodeError):
            ring.join(300)

    def test_join_empty_ring(self):
        ring = ChordRing(BITS)
        ring.join(5)
        assert ring.node_ids() == [5]

    def test_join_keeps_fingers_correct(self):
        ring = small_ring()
        ring.join(256)
        for node in ring.nodes.values():
            for i, finger in enumerate(node.fingers):
                assert finger == ring.owner((node.id + (1 << i)) % ring.space)

    def test_leave_transfers_ownership(self):
        ring = small_ring()
        ring.leave(300)
        assert ring.owner(250) == 500

    def test_leave_unknown(self):
        with pytest.raises(NodeNotFoundError):
            small_ring().leave(7)

    def test_leave_keeps_fingers_correct(self):
        ring = small_ring()
        ring.leave(500)
        for node in ring.nodes.values():
            for i, finger in enumerate(node.fingers):
                assert finger == ring.owner((node.id + (1 << i)) % ring.space)

    def test_leave_last_node(self):
        ring = ChordRing.build(BITS, [5])
        ring.leave(5)
        assert len(ring) == 0

    def test_incremental_join_matches_bulk_build(self):
        ids = [10, 100, 300, 500, 800]
        incremental = ChordRing(BITS)
        for nid in ids:
            incremental.join(nid)
        bulk = ChordRing.build(BITS, ids)
        for nid in ids:
            assert incremental.nodes[nid].fingers == bulk.nodes[nid].fingers
            assert incremental.nodes[nid].successor == bulk.nodes[nid].successor


class TestFailureAndStabilization:
    def test_fail_leaves_stale_fingers(self):
        ring = small_ring()
        ring.fail(300)
        assert ring.stale_finger_fraction() > 0

    def test_routing_survives_failures(self):
        ring = ChordRing.with_random_ids(16, 200, rng=3)
        rng = np.random.default_rng(4)
        ids = ring.node_ids()
        for nid in rng.choice(ids, size=20, replace=False):
            ring.fail(int(nid))
        live = ring.node_ids()
        for _ in range(50):
            source = live[rng.integers(0, len(live))]
            key = int(rng.integers(0, ring.space))
            result = ring.route(source, key)
            assert result.destination == ring.owner(key)

    def test_stabilization_repairs_state(self):
        ring = ChordRing.with_random_ids(12, 60, rng=5)
        rng = np.random.default_rng(6)
        for nid in list(ring.node_ids())[::6]:
            ring.fail(nid)
        before = ring.stale_finger_fraction()
        assert before > 0
        for _ in range(40):  # several stabilization rounds at every node
            for nid in ring.node_ids():
                ring.stabilize_node(nid, rng)
        after = ring.stale_finger_fraction()
        assert after < before

    def test_stabilize_cost_nonnegative(self):
        ring = small_ring()
        assert ring.stabilize_node(10, rng=0) >= 0


class TestSuccessorList:
    def test_populated_on_build(self):
        ring = small_ring()
        for node in ring.nodes.values():
            assert len(node.successor_list) == min(
                node.SUCCESSOR_LIST_SIZE, len(ring) - 1
            )
            assert node.successor_list[0] == node.successor

    def test_fallback_survives_successor_crash(self):
        ring = ChordRing.with_random_ids(16, 100, rng=20)
        ids = ring.node_ids()
        source = ids[0]
        # Crash the source's immediate successor without any repair.
        victim = ring.nodes[source].successor
        ring.fail(victim)
        key = (victim - 1) % ring.space  # a key the victim used to own... route anywhere
        result = ring.route(source, (source + 1) % ring.space)
        assert result.destination == ring.owner((source + 1) % ring.space)

    def test_fallback_survives_multiple_adjacent_crashes(self):
        ring = ChordRing.with_random_ids(16, 120, rng=21)
        ids = ring.node_ids()
        source = ids[5]
        node = ring.nodes[source]
        # Crash the successor and the first two backups (3 < list size 4).
        victims = [node.successor] + node.successor_list[1:3]
        for victim in victims:
            if victim in ring.nodes and victim != source:
                ring.fail(victim)
        key = (source + 1) % ring.space
        assert ring.route(source, key).destination == ring.owner(key)

    def test_stabilization_refreshes_list(self):
        ring = ChordRing.with_random_ids(14, 60, rng=22)
        ids = ring.node_ids()
        observer = ids[10]
        victim = ring.nodes[observer].successor
        ring.fail(victim)
        assert victim in ring.nodes[observer].successor_list or True
        import numpy as np

        rng = np.random.default_rng(23)
        for _ in range(10):
            ring.stabilize_node(observer, rng)
        assert victim not in ring.nodes[observer].successor_list
        assert ring.nodes[observer].successor == ring.successor_id(observer)
