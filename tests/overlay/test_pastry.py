"""Tests for the Pastry overlay."""

import numpy as np
import pytest

from repro.errors import (
    DuplicateNodeError,
    EmptyOverlayError,
    NodeNotFoundError,
    OverlayError,
)
from repro.overlay.pastry import PastryOverlay


def overlay(n=100, bits=16, seed=0, **kwargs):
    return PastryOverlay.with_random_ids(bits, n, rng=seed, **kwargs)


class TestConstruction:
    def test_bits_digit_compatibility(self):
        with pytest.raises(OverlayError):
            PastryOverlay(10, digit_bits=4)

    def test_leaf_size_validation(self):
        with pytest.raises(OverlayError):
            PastryOverlay(16, leaf_size=3)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DuplicateNodeError):
            PastryOverlay.build(16, [5, 5])

    def test_out_of_range_rejected(self):
        with pytest.raises(OverlayError):
            PastryOverlay.build(8, [300])

    def test_random_build(self):
        net = overlay(50)
        assert len(net) == 50


class TestDigits:
    def test_digit_extraction(self):
        net = PastryOverlay(16, digit_bits=4)
        assert net.digit(0xABCD, 0) == 0xA
        assert net.digit(0xABCD, 1) == 0xB
        assert net.digit(0xABCD, 3) == 0xD

    def test_shared_prefix(self):
        net = PastryOverlay(16, digit_bits=4)
        assert net.shared_prefix_len(0xABCD, 0xABFF) == 2
        assert net.shared_prefix_len(0xABCD, 0xABCD) == 4
        assert net.shared_prefix_len(0xABCD, 0x1BCD) == 0

    def test_circular_distance(self):
        net = PastryOverlay(8, digit_bits=4)
        assert net.circular_distance(0, 255) == 1
        assert net.circular_distance(10, 20) == 10


class TestOwner:
    def test_numerically_closest(self):
        net = PastryOverlay.build(8, [10, 100, 200], digit_bits=4, leaf_size=2)
        assert net.owner(50) == 10
        assert net.owner(60) == 100
        assert net.owner(160) == 200

    def test_wraparound_closeness(self):
        net = PastryOverlay.build(8, [5, 250], digit_bits=4, leaf_size=2)
        assert net.owner(0) == 5
        assert net.owner(254) == 250
        assert net.owner(130) in (5, 250)

    def test_brute_force_agreement(self):
        net = overlay(60, bits=12, seed=1)
        ids = net.node_ids()
        rng = np.random.default_rng(2)
        for key in rng.integers(0, net.space, size=200):
            key = int(key)
            want = min(ids, key=lambda nid: (net.circular_distance(key, nid), nid))
            assert net.owner(key) == want

    def test_empty(self):
        with pytest.raises(EmptyOverlayError):
            PastryOverlay(16).owner(3)


class TestRouting:
    def test_reaches_owner_from_everywhere(self):
        net = overlay(80, bits=16, seed=3)
        rng = np.random.default_rng(4)
        ids = net.node_ids()
        for _ in range(300):
            source = ids[rng.integers(0, len(ids))]
            key = int(rng.integers(0, net.space))
            result = net.route(source, key)
            assert result.destination == net.owner(key)
            assert result.path[0] == source

    def test_self_delivery(self):
        net = overlay(30, seed=5)
        nid = net.node_ids()[0]
        assert net.route(nid, nid).path == (nid,)

    def test_logarithmic_hops(self):
        net = overlay(400, bits=20, seed=6)
        rng = np.random.default_rng(7)
        ids = net.node_ids()
        hops = [
            net.route(ids[rng.integers(0, len(ids))], int(rng.integers(0, net.space))).hops
            for _ in range(200)
        ]
        # O(log_16 N): ~2.2 for N=400; generous bound.
        assert np.mean(hops) <= 2 * np.log(len(ids)) / np.log(net.cols) + 2

    def test_unknown_source(self):
        with pytest.raises(NodeNotFoundError):
            overlay(10).route(12345678, 1)


class TestState:
    def test_state_size_logarithmic(self):
        small, large = overlay(50, bits=20, seed=8), overlay(800, bits=20, seed=9)

        def mean_state(net):
            return np.mean([net.state_size(n) for n in net.node_ids()])

        # 16x more nodes: state grows slowly (one routing row per digit).
        assert mean_state(large) < mean_state(small) * 4

    def test_state_unknown_node(self):
        with pytest.raises(NodeNotFoundError):
            overlay(10).state_size(999999999)

    def test_leaf_sets_symmetricish(self):
        net = overlay(60, seed=10)
        for nid in net.node_ids()[:10]:
            node = net.nodes[nid]
            assert len(node.leaf_set) <= net.leaf_size
            assert nid not in node.leaf_set

    def test_routing_table_entries_share_prefix(self):
        net = overlay(100, seed=11)
        for nid in net.node_ids()[:10]:
            node = net.nodes[nid]
            for row_idx, row in enumerate(node.routing_table):
                for col_idx, entry in enumerate(row):
                    if entry is None:
                        continue
                    assert net.shared_prefix_len(nid, entry) == row_idx
                    assert net.digit(entry, row_idx) == col_idx
