"""Meta-tests: the documentation deliverable is enforced, not aspirational.

Every public module, class, and function in the library must carry a
docstring; the repo-level documents must exist and reference each other
consistently.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).resolve().parent.parent.parent


def _walk_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        out.append(info.name)
    return sorted(out)


ALL_MODULES = _walk_modules()


class TestDocstrings:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name, None)
            if obj is None or not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if obj.__module__ != module_name:
                continue  # re-export; documented at its home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, f"{module_name}: undocumented public API {undocumented}"

    def test_public_methods_documented(self):
        """Spot-check the main entry points' methods."""
        from repro import KeywordSpace, SquidSystem
        from repro.core.engine import OptimizedEngine
        from repro.overlay.chord import ChordRing

        for cls in (SquidSystem, KeywordSpace, ChordRing, OptimizedEngine):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert member.__doc__, f"{cls.__name__}.{name} lacks a docstring"


class TestRepoDocuments:
    @pytest.mark.parametrize(
        "filename",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGELOG.md",
         "docs/protocol.md", "docs/api.md", "docs/internals.md",
         "docs/resilience.md", "docs/serving.md", "docs/overload.md"],
    )
    def test_document_exists(self, filename):
        path = REPO_ROOT / filename
        assert path.exists(), f"{filename} missing"
        assert len(path.read_text(encoding="utf-8")) > 500

    def test_design_covers_every_figure(self):
        text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for i in range(9, 20):
            assert f"fig{i:02d}" in text, f"DESIGN.md misses fig{i:02d}"

    def test_experiments_covers_every_figure_and_extension(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for i in range(9, 20):
            assert f"| {i} " in text or f"fig{i:02d}" in text
        for ext in ("extA", "extB", "extC", "extD", "extE", "extF"):
            assert ext in text

    def test_readme_points_at_experiments(self):
        text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "EXPERIMENTS.md" in text
        assert "DESIGN.md" in text
