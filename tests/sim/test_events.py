"""Tests for the discrete-event simulation core."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator


class TestSchedule:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5, 4.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at(self):
        sim = Simulator()
        hits = []
        sim.schedule_at(5.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [5.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]


class TestCancel:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda: log.append("x"))
        sim.cancel(event)
        sim.run()
        assert log == []

    def test_cancel_one_of_many(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("keep"))
        event = sim.schedule(2.0, lambda: log.append("drop"))
        sim.schedule(3.0, lambda: log.append("keep2"))
        sim.cancel(event)
        sim.run()
        assert log == ["keep", "keep2"]


class TestRunUntil:
    def test_stops_at_horizon(self):
        sim = Simulator()
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: log.append(t))
        ran = sim.run_until(2.0)
        assert ran == 2
        assert log == [1.0, 2.0]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_backwards_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(2.0)

    def test_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run_until(10.0)
        assert sim.now == 10.0


class TestPeriodic:
    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        hits = []
        sim.schedule_periodic(1.0, lambda: hits.append(sim.now))
        sim.run_until(5.5)
        assert hits == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_function(self):
        sim = Simulator()
        hits = []
        stop = sim.schedule_periodic(1.0, lambda: hits.append(sim.now))
        sim.run_until(2.5)
        stop()
        sim.run_until(10.0)
        assert hits == [1.0, 2.0]

    def test_jitter_applied(self):
        sim = Simulator()
        hits = []
        sim.schedule_periodic(1.0, lambda: hits.append(sim.now), jitter=lambda: 0.5)
        sim.run_until(4.0)
        # Period is 1.5 after the first firing at t=1.0.
        assert hits == [1.0, 2.5, 4.0]

    def test_bad_interval(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_periodic(0, lambda: None)


class TestRunawayGuard:
    def test_run_raises_on_infinite_chain(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_executed_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t + 1), lambda: None)
        sim.run()
        assert sim.events_executed == 5
