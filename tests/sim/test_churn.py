"""Tests for churn and stabilization processes on a live system."""

import numpy as np
import pytest

from repro import KeywordSpace, SquidSystem, WordDimension
from repro.sim import ChurnConfig, ChurnProcess, Simulator, StabilizationProcess


def small_system(n_nodes=24, n_keys=150, seed=0):
    space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=10)
    system = SquidSystem.create(space, n_nodes=n_nodes, seed=seed)
    rng = np.random.default_rng(seed + 1)
    alpha = "abcdefghijklmnopqrstuvwxyz"
    keys = [
        (
            "".join(alpha[i] for i in rng.integers(0, 26, size=5)),
            "".join(alpha[i] for i in rng.integers(0, 26, size=5)),
        )
        for _ in range(n_keys)
    ]
    system.publish_many(keys)
    return system


class TestChurnProcess:
    def test_join_churn_grows_system(self):
        system = small_system()
        sim = Simulator()
        churn = ChurnProcess(sim, system, ChurnConfig(join_rate=1.0), rng=1)
        sim.run_until(30.0)
        assert churn.stats.joins > 10
        assert len(system.overlay) > 24
        assert system.check_placement_invariant()

    def test_leave_churn_preserves_elements(self):
        system = small_system()
        before = system.total_elements()
        sim = Simulator()
        churn = ChurnProcess(sim, system, ChurnConfig(leave_rate=1.0, min_nodes=5), rng=2)
        sim.run_until(15.0)
        assert churn.stats.leaves > 0
        assert system.total_elements() == before  # graceful leaves keep data
        assert len(system.overlay) >= 5

    def test_crash_churn_loses_keys_but_system_survives(self):
        system = small_system()
        before = system.total_elements()
        sim = Simulator()
        churn = ChurnProcess(sim, system, ChurnConfig(crash_rate=1.0, min_nodes=8), rng=3)
        sim.run_until(10.0)
        assert churn.stats.crashes > 0
        assert system.total_elements() < before
        # Routing still works on survivors.
        ids = system.overlay.node_ids()
        result = system.overlay.route(ids[0], 123)
        assert result.destination == system.overlay.owner(123)

    def test_crash_hook_routes_crashes_through_fault_plane(self):
        from repro.core.replication import ReplicationManager
        from repro.faults import FaultPlane

        system = small_system()
        before = system.total_elements()
        manager = ReplicationManager(system, degree=2)
        plane = FaultPlane().attach_system(system, replication=manager, min_live=8)
        sim = Simulator()
        churn = ChurnProcess(
            sim,
            system,
            ChurnConfig(crash_rate=1.0, min_nodes=8),
            rng=3,
            crash_hook=plane.crash_node,
        )
        sim.run_until(10.0)
        assert churn.stats.crashes > 0
        assert churn.stats.crashes == plane.stats.crashed
        assert churn.stats.crashes == len(plane.stats.crashed_nodes)
        # Crashes went through the replication protocol: nothing lost.
        assert system.total_elements() == before
        assert manager.stats.elements_lost == 0

    def test_crash_hook_veto_is_not_counted(self):
        system = small_system()
        sim = Simulator()
        churn = ChurnProcess(
            sim,
            system,
            ChurnConfig(crash_rate=1.0, min_nodes=2),
            rng=3,
            crash_hook=lambda victim: False,  # veto everything
        )
        sim.run_until(10.0)
        assert churn.stats.crashes == 0
        assert len(system.overlay) == 24  # nobody actually crashed

    def test_mixed_churn_queries_remain_exact(self):
        system = small_system(n_nodes=30, n_keys=200, seed=4)
        sim = Simulator()
        ChurnProcess(
            sim,
            system,
            ChurnConfig(join_rate=0.5, leave_rate=0.5, min_nodes=10),
            rng=5,
        )
        for horizon in (5.0, 10.0, 15.0):
            sim.run_until(horizon)
            want = len(system.brute_force_matches("(a*, *)"))
            got = system.query("(a*, *)", rng=6).match_count
            assert got == want

    def test_min_nodes_respected(self):
        system = small_system(n_nodes=5, n_keys=20)
        sim = Simulator()
        ChurnProcess(sim, system, ChurnConfig(leave_rate=5.0, min_nodes=4), rng=7)
        sim.run_until(20.0)
        assert len(system.overlay) >= 4


class TestStabilization:
    def test_repairs_after_crashes(self):
        system = small_system(n_nodes=40, n_keys=100, seed=8)
        rng = np.random.default_rng(9)
        for victim in rng.choice(system.overlay.node_ids(), size=8, replace=False):
            system.overlay.fail(int(victim))
            system.stores.pop(int(victim))
        stale_before = system.overlay.stale_finger_fraction()
        assert stale_before > 0
        sim = Simulator()
        proc = StabilizationProcess(sim, system, interval=1.0, rng=10)
        sim.run_until(60.0)
        assert proc.messages > 0
        assert system.overlay.stale_finger_fraction() < stale_before

    def test_stop(self):
        system = small_system(n_nodes=10, n_keys=20)
        sim = Simulator()
        proc = StabilizationProcess(sim, system, interval=1.0, rng=11)
        sim.run_until(3.0)
        msgs = proc.messages
        proc.stop()
        sim.run_until(30.0)
        # A few in-flight ticks may still run, but the process winds down.
        assert proc.messages == msgs


class TestLoadBalanceProcess:
    def _skewed_system(self, seed=20):
        from repro import KeywordSpace, SquidSystem, WordDimension

        space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=16)
        system = SquidSystem.create(space, n_nodes=24, seed=seed)
        rng = np.random.default_rng(seed + 1)
        alpha = "abcdefghijklmnopqrstuvwxyz"
        keys = [
            (
                "c" + "".join(alpha[i] for i in rng.integers(0, 26, 5)),
                "c" + "".join(alpha[i] for i in rng.integers(0, 26, 5)),
            )
            for _ in range(500)
        ]
        system.publish_many(keys)
        return system

    def test_periodic_balancing_improves_load(self):
        from repro.sim import LoadBalanceProcess, Simulator
        from repro.util.stats import coefficient_of_variation

        system = self._skewed_system()
        before = coefficient_of_variation(list(system.node_loads().values()))
        sim = Simulator()
        proc = LoadBalanceProcess(sim, system, interval=5.0, threshold=1.3, rng=0)
        sim.run_until(60.0)
        after = coefficient_of_variation(list(system.node_loads().values()))
        assert proc.rounds >= 10
        assert proc.shifts > 0
        assert after < before
        assert system.check_placement_invariant()

    def test_stop(self):
        from repro.sim import LoadBalanceProcess, Simulator

        system = self._skewed_system(seed=21)
        sim = Simulator()
        proc = LoadBalanceProcess(sim, system, interval=1.0, rng=1)
        sim.run_until(3.5)
        proc.stop()
        rounds = proc.rounds
        sim.run_until(30.0)
        assert proc.rounds == rounds

    def test_combined_with_churn_preserves_data(self):
        from repro.sim import ChurnConfig, ChurnProcess, LoadBalanceProcess, Simulator

        system = self._skewed_system(seed=22)
        total = system.total_elements()
        sim = Simulator()
        ChurnProcess(
            sim, system, ChurnConfig(join_rate=1.0, leave_rate=0.5, min_nodes=10), rng=2
        )
        LoadBalanceProcess(sim, system, interval=4.0, rng=3)
        sim.run_until(40.0)
        assert system.total_elements() == total
        assert system.check_placement_invariant()
        want = len(system.brute_force_matches("(c*, *)"))
        system.overlay.rebuild_all_fingers()
        assert system.query("(c*, *)", rng=4).match_count == want
