#!/usr/bin/env python3
"""Bulletin-board / interest-group discovery.

The paper's third use case: "to query interest groups in a bulletin-board
news system" — messages are posted under (category, topic, region) interest
profiles; subscribers discover everything matching their profile, including
partial-keyword profiles like "all comp.* topics".

Run:  python examples/newsgroups.py
"""

from repro import CategoricalDimension, KeywordSpace, SquidSystem, WordDimension

CATEGORIES = ["alt", "comp", "misc", "news", "rec", "sci", "soc", "talk"]
REGIONS = ["america", "asia", "europe", "oceania"]

POSTS = [
    (("comp", "architecture", "europe"), "RFC: on-chip mesh routers"),
    (("comp", "archives", "america"), "mirror list updated"),
    (("comp", "compilers", "asia"), "register allocation question"),
    (("sci", "astronomy", "europe"), "comet visible this week"),
    (("sci", "archaeology", "america"), "dig season report"),
    (("rec", "arts", "europe"), "gallery openings"),
    (("talk", "architecture", "america"), "brutalism appreciation"),
    (("comp", "networking", "oceania"), "undersea cable maintenance"),
]


def main() -> None:
    space = KeywordSpace(
        [
            CategoricalDimension("category", CATEGORIES),
            WordDimension("topic"),
            CategoricalDimension("region", REGIONS),
        ],
        bits=12,
    )
    board = SquidSystem.create(space, n_nodes=48, seed=21)
    for profile, body in POSTS:
        board.publish(profile, payload=body)
    print(f"{len(POSTS)} posts published across {len(board.overlay)} peers\n")

    subscriptions = [
        ("everything in comp.*", ("comp", "*", "*")),
        ("arch* topics in any category", ("*", "arch*", "*")),
        ("European comp posts", ("comp", "*", "europe")),
        ("science, anywhere", ("sci", "*", "*")),
    ]
    for label, profile in subscriptions:
        query = "(" + ", ".join(profile) + ")"
        result = board.query(query, rng=1)
        print(f"subscription: {label}   {query}")
        for post in sorted(result.matches, key=lambda e: e.payload):
            category, topic, region = post.key
            print(f"    [{category}.{topic} @ {region}] {post.payload}")
        print(f"    ({result.stats.messages} messages, "
              f"{result.stats.processing_node_count} peers involved)\n")

    # Guarantee: a subscriber misses nothing.
    result = board.query("(comp, *, *)", rng=1)
    assert {e.payload for e in result.matches} == {
        body for profile, body in POSTS if profile[0] == "comp"
    }
    print("subscription completeness check  ✓")


if __name__ == "__main__":
    main()
