#!/usr/bin/env python3
"""Grid resource discovery with range queries.

Reproduces the paper's second use case — "a complement for current resource
discovery mechanisms in Computational Grids (to enhance them with range
queries)": machines advertise (memory, CPU, bandwidth) attributes; clients
ask for resources inside attribute ranges, e.g. the paper's example
"(256-512MB, *, 10Mbps-*)" — at least 256MB but no more than 512MB of
memory, any CPU, at least 10Mbps of bandwidth.

Run:  python examples/grid_resource_discovery.py
"""

from repro import SquidSystem
from repro.workloads.resources import ResourceWorkload

N_PEERS = 200
N_RESOURCES = 5000


def main() -> None:
    print(f"advertising {N_RESOURCES} grid resources (memory, cpu, bandwidth)...")
    inventory = ResourceWorkload.generate(N_RESOURCES, jitter=0.0, rng=11)
    system = SquidSystem.create(inventory.space, n_nodes=N_PEERS, seed=12)
    system.publish_many(inventory.keys)
    print(f"indexed on {len(system.overlay)} peers\n")

    requests = [
        ("the paper's example request", "(256-512, *, 10-*)"),
        ("a beefy compute node", "(2048-*, 2400-*, *)"),
        ("cheap-and-cheerful", "(*-256, *-800, *)"),
        ("exact standard config", "(1024, 1600, 155)"),
        ("high-bandwidth transfer host", "(*, *, 622-*)"),
    ]
    for label, request in requests:
        result = system.query(request, rng=13)
        oracle = inventory.count_matching(request)
        stats = result.stats
        print(f"{label}: {request}")
        print(
            f"    {result.match_count} resources found "
            f"(oracle: {oracle}) using {stats.messages} messages over "
            f"{stats.processing_node_count} peers"
        )
        assert result.match_count == oracle
        if result.matches:
            sample = sorted(result.matches, key=lambda e: e.key)[0]
            memory, cpu, bandwidth = sample.key
            print(
                f"    e.g. memory={memory:.0f}MB cpu={cpu:.0f}MHz "
                f"bandwidth={bandwidth:.0f}Mbps"
            )
        print()

    print("all range queries returned exactly the advertised matches  ✓")


if __name__ == "__main__":
    main()
