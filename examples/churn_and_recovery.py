#!/usr/bin/env python3
"""Dynamics: node churn, crash failures, and stabilization.

The paper's overlay layer (§3.2) handles joins, departures and failures
with periodic stabilization.  This example runs the discrete-event
simulator: peers join and leave under Poisson churn while queries keep
executing, then a burst of crashes corrupts routing state and periodic
stabilization repairs it.

Run:  python examples/churn_and_recovery.py
"""

import numpy as np

from repro import KeywordSpace, SquidSystem, WordDimension
from repro.sim import ChurnConfig, ChurnProcess, Simulator, StabilizationProcess
from repro.workloads.documents import DocumentWorkload


def main() -> None:
    workload = DocumentWorkload.generate(2, 2000, vocabulary_size=800, bits=16, rng=0)
    system = SquidSystem.create(workload.space, n_nodes=100, seed=1)
    system.publish_many(workload.keys)
    query = "(comp*, *)"

    # Phase 1: graceful churn — joins and departures at 2 events/unit each.
    sim = Simulator()
    churn = ChurnProcess(
        sim, system, ChurnConfig(join_rate=2.0, leave_rate=2.0, min_nodes=50), rng=2
    )
    print("phase 1: graceful churn with live queries")
    for horizon in (10.0, 20.0, 30.0):
        sim.run_until(horizon)
        want = len(system.brute_force_matches(query))
        got = system.query(query, rng=3).match_count
        status = "exact" if got == want else f"MISSED {want - got}"
        print(
            f"  t={horizon:5.1f}  peers={len(system.overlay):4d} "
            f"joins={churn.stats.joins:3d} leaves={churn.stats.leaves:3d} "
            f"query -> {got}/{want} matches ({status})"
        )

    # Phase 2: a crash burst leaves stale fingers behind.
    print("\nphase 2: crash burst")
    rng = np.random.default_rng(4)
    victims = rng.choice(system.overlay.node_ids(), size=15, replace=False)
    for victim in victims:
        system.overlay.fail(int(victim))
        system.stores.pop(int(victim))
    stale = system.overlay.stale_finger_fraction()
    print(f"  15 peers crashed; {stale:.1%} of finger entries now stale")

    # Phase 3: periodic stabilization repairs routing state.
    print("\nphase 3: periodic stabilization")
    stab = StabilizationProcess(sim, system, interval=1.0, rng=5)
    for extra in (10.0, 30.0, 60.0):
        sim.run_until(30.0 + extra)
        print(
            f"  t={sim.now:5.1f}  stale fingers: "
            f"{system.overlay.stale_finger_fraction():.1%} "
            f"({stab.messages} repair messages so far)"
        )

    # Queries remain exact over the surviving data.
    want = len(system.brute_force_matches(query))
    got = system.query(query, rng=6).match_count
    print(f"\nfinal query over surviving data: {got}/{want} matches "
          f"({'exact' if got == want else 'MISSED'})")


if __name__ == "__main__":
    main()
