#!/usr/bin/env python3
"""Attack and defense: query-dropping adversaries vs Squid's guarantees.

The paper lists "resistance to attacks" among its future directions.  This
example stages the classic routing-layer attack — malicious peers silently
discard the sub-queries they receive — and layers on the standard defenses:
timeout-retry around unresponsive peers, and successor-list replication so
the retried peer can serve the dropped peer's data.

Run:  python examples/attack_and_defense.py
"""

import numpy as np

from repro import SquidSystem
from repro.core.adversary import run_attack_experiment
from repro.workloads.documents import DocumentWorkload
from repro.workloads.queries import q1_queries

N_PEERS = 150
N_DOCS = 3000


def main() -> None:
    workload = DocumentWorkload.generate(2, N_DOCS, vocabulary_size=1000, rng=0)
    queries = [str(q) for q in q1_queries(workload, count=5, rng=1)]
    print(
        f"{N_DOCS} documents on {N_PEERS} peers; "
        f"recall of {len(queries)} keyword queries under attack\n"
    )

    configs = [
        ("no mitigation", False, 0),
        ("timeout-retry", True, 0),
        ("retry + replication (degree 2)", True, 2),
    ]
    print(f"{'droppers':>9s}  " + "".join(f"{label:>32s}" for label, _, _ in configs))
    for fraction in (0.0, 0.1, 0.2, 0.3):
        cells = []
        for _, retry, degree in configs:
            system = SquidSystem.create(workload.space, n_nodes=N_PEERS, seed=2)
            system.publish_many(workload.keys)
            measured = run_attack_experiment(
                system,
                queries,
                dropper_fraction=fraction,
                retry=retry,
                replication_degree=degree,
                rng=3,
            )
            cells.append(measured["recall"])
        print(
            f"{fraction:8.0%}  " + "".join(f"{recall:31.0%} " for recall in cells)
        )

    print(
        "\ndroppers silently violate the completeness guarantee; routing "
        "around them restores the fan-out, and replication restores the "
        "data they hide."
    )


if __name__ == "__main__":
    main()
