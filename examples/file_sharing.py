#!/usr/bin/env python3
"""P2P file-sharing scenario: keyword search over a realistic corpus.

Reproduces the paper's headline use case — "index and locate content in P2P
storage and sharing systems (using keywords)" — at laptop scale: a
Zipf-distributed document corpus on a load-balanced ring, compared against
a Gnutella-style flooding network on the same corpus.

Run:  python examples/file_sharing.py
"""

import numpy as np

from repro import SquidSystem
from repro.baselines import FloodingNetwork
from repro.core.loadbalance import grow_with_join_lb, run_neighbor_balancing
from repro.util.stats import coefficient_of_variation
from repro.workloads.documents import DocumentWorkload
from repro.workloads.queries import q1_queries, q2_queries

N_PEERS = 300
N_DOCS = 8000


def main() -> None:
    print(f"generating a {N_DOCS}-document corpus (2 keywords per document)...")
    workload = DocumentWorkload.generate(2, N_DOCS, vocabulary_size=1500, rng=7)

    # Grow the Squid ring the way a deployment would: bootstrap peers, then
    # joins with the paper's join-time load balancing, then a few runtime
    # balancing rounds.
    print(f"growing a load-balanced Squid ring to {N_PEERS} peers...")
    squid = SquidSystem.create(workload.space, n_nodes=16, seed=1)
    squid.publish_many(workload.keys)
    grow_with_join_lb(squid, N_PEERS, samples=6, rng=2)
    run_neighbor_balancing(squid, rounds=5, threshold=1.5)
    squid.overlay.rebuild_all_fingers()
    loads = list(squid.node_loads().values())
    print(
        f"  load balance: mean {np.mean(loads):.1f} keys/peer, "
        f"max {max(loads)}, CoV {coefficient_of_variation(loads):.2f}\n"
    )

    # The flooding strawman holds the same corpus on random peers.
    flood = FloodingNetwork(workload.space, n_nodes=N_PEERS, degree=4, rng=3)
    flood.publish_many(workload.keys)

    queries = q1_queries(workload, count=3, rng=4) + q2_queries(workload, count=2, rng=5)
    print(f"{'query':34s} {'matches':>7s} {'squid msgs':>10s} {'flood msgs':>10s} {'flood recall@ttl3':>18s}")
    for query in queries:
        squid_result = squid.query(query, rng=6)
        flood_full = flood.query(query, ttl=None)
        flood_ttl = flood.query(query, ttl=3)
        print(
            f"{str(query):34s} {squid_result.match_count:7d} "
            f"{squid_result.stats.messages:10d} {flood_full.messages:10d} "
            f"{flood_ttl.recall:17.0%}"
        )
        assert squid_result.match_count == flood_full.matches_found

    print(
        "\nSquid answers every query completely; flooding needs "
        f"~{N_PEERS * 4} messages for the same guarantee, or loses recall "
        "under a TTL."
    )


if __name__ == "__main__":
    main()
