#!/usr/bin/env python3
"""Tracing a query: reconstruct the distributed refinement tree.

The paper's query engine resolves a flexible query by recursively refining
SFC clusters across the overlay (§3.4).  With a tracer attached, every
sub-query becomes a span in a tree mirroring that recursion: which node
refined which cluster, where branches were pruned, where sibling
sub-queries were batched.  The trace is a lossless decomposition of the
query's cost statistics — the per-span counts sum exactly to
``result.stats``.

Run:  python examples/tracing_a_query.py
"""

from repro import KeywordSpace, SquidSystem, WordDimension
from repro.obs import Aggregated, MessageSent, Pruned, collecting

N_PEERS = 64


def main() -> None:
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=16)
    # `engine` takes a string name, symmetric with `curve=`.
    system = SquidSystem.create(space, n_nodes=N_PEERS, seed=42, engine="optimized")
    documents = [
        (("computer", "network"), "intro-to-networking.pdf"),
        (("computer", "netbook"), "netbook-review.txt"),
        (("computation", "theory"), "complexity.ps"),
        (("compiler", "design"), "dragon-book-notes.md"),
        (("database", "network"), "distributed-db.pdf"),
    ]
    for key, payload in documents:
        system.publish(key, payload=payload)

    # 1. Attach a tracer and collect metrics for the duration of one query.
    system.attach_tracer()
    with collecting() as registry:
        result = system.query("(comp*, *)", rng=0)
    trace = result.trace
    assert trace is not None

    # 2. The refinement tree, rendered: one line per sub-query span.
    print(trace.render())
    print()

    # 3. Typed events support programmatic analysis of the resolution.
    pruned = trace.events_of(Pruned)
    batches = trace.events_of(Aggregated)
    messages = trace.events_of(MessageSent)
    print(f"{len(messages)} messages on the wire, "
          f"{len(pruned)} branches pruned, "
          f"{len(batches)} sibling batches aggregated")

    # 4. The trace decomposes the stats exactly.
    totals = trace.totals()
    stats = result.stats
    assert totals["messages"] == stats.messages
    assert totals["hops"] == stats.hops
    assert totals["processing_nodes"] == stats.processing_nodes
    assert totals["pruned_branches"] == stats.pruned_branches
    print("trace totals == query stats  ✓")
    print()

    # 5. The metrics registry aggregated the same query process-wide.
    print(registry.to_text())

    # 6. Detached again, tracing costs nothing and result.trace is None.
    system.detach_tracer()
    assert system.query("(comp*, *)", rng=0).trace is None


if __name__ == "__main__":
    main()
