#!/usr/bin/env python3
"""Overlay topologies compared: Chord, Pastry, CAN — and proximity fingers.

The paper builds Squid on Chord and lists "other network topologies" and
"maintenance of geographical locality" as future work.  This example runs
the same lookup workload over all three overlay families and then shows
proximity neighbor selection (PNS) cutting real query latency end-to-end.

Run:  python examples/topologies.py
"""

import numpy as np

from repro import (
    KeywordSpace,
    LatencyModel,
    OptimizedEngine,
    ProximityChordRing,
    SquidSystem,
    WordDimension,
)
from repro.overlay import CanOverlay, ChordRing, PastryOverlay
from repro.workloads.documents import DocumentWorkload

N_NODES = 256
BITS = 16
LOOKUPS = 200


def mean_hops(overlay, rng):
    ids = overlay.node_ids()
    hops = []
    for _ in range(LOOKUPS):
        source = ids[rng.integers(0, len(ids))]
        key = int(rng.integers(0, overlay.space))
        result = overlay.route(source, key)
        assert result.destination == overlay.owner(key)
        hops.append(result.hops)
    return float(np.mean(hops))


def main() -> None:
    print(f"routing {LOOKUPS} random lookups over {N_NODES}-node overlays\n")

    chord = ChordRing.with_random_ids(BITS, N_NODES, rng=0)
    pastry = PastryOverlay.with_random_ids(BITS, N_NODES, rng=1)
    can = CanOverlay(BITS, can_dims=2)
    can_rng = np.random.default_rng(2)
    for _ in range(N_NODES):
        can.join(can_rng)

    rows = [
        ("Chord (binary fingers)", mean_hops(chord, np.random.default_rng(3)), "O(log N)"),
        ("Pastry (base-16 prefixes)", mean_hops(pastry, np.random.default_rng(4)), "O(log16 N)"),
        ("CAN (2-D zones)", mean_hops(can, np.random.default_rng(5)), "O(sqrt N)"),
    ]
    print(f"{'overlay':28s} {'mean hops':>9s}   asymptotic")
    for name, hops, asym in rows:
        print(f"{name:28s} {hops:9.1f}   {asym}")

    # --- PNS: the same Squid workload, classic vs proximity fingers -----
    print("\nproximity neighbor selection on a 100x100 latency plane:")
    space = KeywordSpace([WordDimension("a"), WordDimension("b")], bits=12)
    workload = DocumentWorkload.generate(2, 2000, vocabulary_size=800, bits=12, rng=6)
    base = SquidSystem.create(space, n_nodes=200, seed=7)
    ids = base.overlay.node_ids()
    model = LatencyModel.random(ids, rng=8)
    pns_ring = ProximityChordRing.build_with_model(base.overlay.bits, ids, model=model)
    pns = SquidSystem(space, pns_ring, curve=base.curve)
    base.publish_many(workload.keys)
    pns.publish_many(workload.keys)

    engine = OptimizedEngine(latency_model=model)
    queries = [f"({workload.keys[i][0][:3]}*, *)" for i in (0, 50, 100)]
    classic_time = pns_time = 0.0
    for q in queries:
        classic_time += base.query(q, engine=engine, origin=ids[0], rng=0).stats.completion_time
        pns_time += pns.query(q, engine=engine, origin=ids[0], rng=0).stats.completion_time
    saving = 1 - pns_time / classic_time
    print(f"  query completion time: classic {classic_time:.0f} -> PNS {pns_time:.0f} "
          f"({saving:.0%} saved)")


if __name__ == "__main__":
    main()
