#!/usr/bin/env python3
"""Quickstart: build a small Squid system, publish documents, run every
flavour of flexible query the paper supports.

Run:  python examples/quickstart.py
"""

from repro import KeywordSpace, SquidSystem, WordDimension


def main() -> None:
    # 1. Define the keyword space: each document is described by two
    #    keywords (paper Figure 1a).  bits=16 gives each axis 2^16 cells.
    space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=16)

    # 2. Create a 64-peer system.  Node identifiers live in the Hilbert
    #    index space of the keyword grid, so data placement is locality
    #    preserving.
    system = SquidSystem.create(space, n_nodes=64, seed=42)

    # 3. Publish some documents (keyword tuple + payload).
    documents = [
        (("computer", "network"), "intro-to-networking.pdf"),
        (("computer", "netbook"), "netbook-review.txt"),
        (("computation", "theory"), "complexity.ps"),
        (("compiler", "design"), "dragon-book-notes.md"),
        (("database", "network"), "distributed-db.pdf"),
        (("music", "jazz"), "playlist.m3u"),
    ]
    for key, payload in documents:
        system.publish(key, payload=payload)
    print(f"published {system.total_elements()} documents on {len(system.overlay)} peers\n")

    # 4. Flexible queries: exact keywords, partial keywords, wildcards.
    for query in [
        "(computer, network)",   # exact: a point lookup
        "(comp*, *)",            # partial keyword + wildcard
        "(comp*, net*)",         # two partial keywords
        "(*, network)",          # wildcard first dimension
    ]:
        result = system.query(query, rng=0)
        stats = result.stats
        print(f"query {query}")
        for element in sorted(result.matches, key=lambda e: e.payload):
            print(f"    match: {element.key} -> {element.payload}")
        print(
            f"    cost: {stats.messages} messages, "
            f"{stats.processing_node_count} processing nodes, "
            f"{stats.data_node_count} data nodes "
            f"(of {len(system.overlay)} peers)\n"
        )

    # 5. The guarantee: everything that matches is found.
    result = system.query("(comp*, *)", rng=0)
    oracle = system.brute_force_matches("(comp*, *)")
    assert {e.payload for e in result.matches} == {e.payload for e in oracle}
    print("guarantee check: distributed query == exhaustive scan  ✓")


if __name__ == "__main__":
    main()
