"""Ablation: load-balancing schemes off / join / join+neighbor / virtual.

DESIGN.md design choice: the SFC index is skewed, so Squid needs §3.5's
balancing.  This bench quantifies each scheme's contribution.
"""

import numpy as np

from repro import KeywordSpace, SquidSystem, WordDimension
from repro.core.loadbalance import (
    VirtualNodeManager,
    grow_with_join_lb,
    run_neighbor_balancing,
)
from repro.util.stats import coefficient_of_variation
from repro.workloads.documents import DocumentWorkload


def _workload():
    return DocumentWorkload.generate(2, 8000, vocabulary_size=1500, bits=16, rng=0)


def _baseline(workload, n_nodes, seed):
    system = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=seed)
    system.publish_many(workload.keys)
    return system


def _join_lb(workload, n_nodes, seed):
    system = SquidSystem.create(workload.space, n_nodes=max(8, n_nodes // 20), seed=seed)
    system.publish_many(workload.keys)
    grow_with_join_lb(system, n_nodes, samples=6, rng=seed)
    return system


def test_lb_scheme_ladder(benchmark):
    """off > join-only > join+neighbor in load imbalance (CoV)."""
    workload = _workload()
    n_nodes = 200

    def measure():
        off = coefficient_of_variation(
            list(_baseline(workload, n_nodes, seed=1).node_loads().values())
        )
        join_sys = _join_lb(workload, n_nodes, seed=1)
        join = coefficient_of_variation(list(join_sys.node_loads().values()))
        run_neighbor_balancing(join_sys, rounds=8, threshold=1.3)
        combined = coefficient_of_variation(list(join_sys.node_loads().values()))
        return off, join, combined

    off, join, combined = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nload CoV: off={off:.2f} join={join:.2f} join+neighbor={combined:.2f}")
    assert join < off
    assert combined < join


def test_virtual_nodes_balance_physical_peers(benchmark):
    """Virtual-node split + migration evens load across physical peers."""
    workload = _workload()

    def measure():
        system = _join_lb(workload, 160, seed=2)
        manager = VirtualNodeManager.adopt(system, virtuals_per_peer=4)
        before = coefficient_of_variation(list(manager.physical_loads().values()))
        peak = max(manager.virtual_loads().values())
        manager.split_overloaded(threshold_keys=max(peak // 2, 1))
        manager.rebalance()
        after = coefficient_of_variation(list(manager.physical_loads().values()))
        return before, after

    before, after = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nphysical-load CoV: before={before:.2f} after={after:.2f}")
    assert after <= before


def test_lb_improves_query_cost(benchmark):
    """Balanced nodes follow the data, improving pruning (fewer empty
    processing nodes per data node)."""
    workload = _workload()
    from repro.workloads.queries import q1_queries

    queries = q1_queries(workload, count=6, rng=5)

    def ratio(system):
        rows = [system.query(q, rng=6).stats for q in queries]
        data = sum(s.data_node_count for s in rows)
        proc = sum(s.processing_node_count for s in rows)
        return data / max(proc, 1)

    def measure():
        return (
            ratio(_baseline(workload, 200, seed=3)),
            ratio(_join_lb(workload, 200, seed=3)),
        )

    unbalanced, balanced = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\ndata/processing ratio: unbalanced={unbalanced:.2f} balanced={balanced:.2f}")
    assert balanced >= 0.8 * unbalanced
