"""Benchmark: Figure 18 — key distribution over the index space."""

import numpy as np

from repro.experiments import fig18_key_distribution


def test_fig18_key_distribution(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig18_key_distribution.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    for note in result.notes:
        print("fig18:", note)

    counts = np.array(result.series("keys"), dtype=float)
    assert len(counts) == 500  # the paper's 500 intervals

    # The paper's point: "the original distribution is not uniform".
    assert counts.max() > 5 * counts.mean()
    # Dense and empty regions coexist.
    assert np.sum(counts == 0) > 10
    # Sanity: the histogram accounts for every key.
    assert counts.sum() > 0
