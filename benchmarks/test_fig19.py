"""Benchmark: Figure 19 — load distribution under the balancing schemes."""

import numpy as np

from repro.experiments import fig19_load_balance
from repro.util.stats import coefficient_of_variation


def test_fig19_load_balance(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig19_load_balance.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    for note in result.notes:
        print("fig19:", note)

    loads = {
        variant: [
            row["load"] for row in result.rows if row["variant"] == variant
        ]
        for variant in fig19_load_balance.VARIANTS
    }
    cov = {v: coefficient_of_variation(l) for v, l in loads.items()}

    # Total keys conserved across variants.
    totals = {v: sum(l) for v, l in loads.items()}
    assert len(set(totals.values())) == 1

    # Paper Figure 19: join-time balancing clearly improves on the raw
    # distribution, and adding runtime balancing improves it further,
    # approaching an even distribution.
    assert cov["join"] < cov["none"]
    assert cov["join+runtime"] < cov["join"]
    assert max(loads["join+runtime"]) < max(loads["none"])
