"""Ablation: Hilbert vs. Z-order mapping.

DESIGN.md design choice: the locality-preserving Hilbert curve is what
keeps query regions in few clusters and hence few peers.  Replacing it with
the Z-order (Morton) curve — which satisfies digital causality but not
adjacency — should fragment queries into more clusters and touch more
processing nodes for the same workload.
"""

import numpy as np

from repro.sfc import HilbertCurve, MortonCurve
from repro.sfc.analysis import average_cluster_count
from repro.workloads.documents import DocumentWorkload
from repro.workloads.queries import q1_queries
from repro import SquidSystem


def _mean_processing(curve_name, workload, queries, n_nodes, seed):
    system = SquidSystem.create(workload.space, n_nodes=n_nodes, curve=curve_name, seed=seed)
    system.publish_many(workload.keys)
    vals = []
    for q in queries:
        vals.append(system.query(q, rng=seed).stats.processing_node_count)
    return float(np.mean(vals))


def test_cluster_counts_hilbert_vs_zorder(benchmark):
    """Random box queries decompose into fewer clusters on the Hilbert curve."""

    def measure():
        h = average_cluster_count(HilbertCurve(2, 7), extent=12, samples=30, rng=0)
        m = average_cluster_count(MortonCurve(2, 7), extent=12, samples=30, rng=0)
        return h, m

    hilbert_clusters, morton_clusters = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nmean clusters per box query: hilbert={hilbert_clusters:.1f} "
          f"zorder={morton_clusters:.1f}")
    assert hilbert_clusters < morton_clusters


def test_system_cost_hilbert_vs_zorder(benchmark):
    """End-to-end: the same Q1 workload costs more peers on Z-order."""
    workload = DocumentWorkload.generate(2, 4000, vocabulary_size=1200, bits=16, rng=3)
    queries = q1_queries(workload, count=6, rng=4)

    def measure():
        hilbert = _mean_processing("hilbert", workload, queries, 300, seed=5)
        zorder = _mean_processing("zorder", workload, queries, 300, seed=5)
        return hilbert, zorder

    hilbert_cost, zorder_cost = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nmean processing nodes: hilbert={hilbert_cost:.1f} zorder={zorder_cost:.1f}")
    assert hilbert_cost <= zorder_cost
