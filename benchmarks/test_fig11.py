"""Benchmark: Figure 11 — Q2 queries, 2-D keyword space."""

from benchmarks.conftest import assert_metric_ordering, by_query
from repro.experiments import fig09_q1_2d, fig11_q2_2d


def test_fig11_q2_2d(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig11_q2_2d.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    assert_metric_ordering(result.rows)
    assert len(by_query(result)) == 5  # the paper's five Q2 queries

    # Paper: "the results are significantly better than those for type Q1
    # queries" — compare mean processing nodes at the largest system size.
    q1 = fig09_q1_2d.run(scale=bench_scale)
    largest = max(r["nodes"] for r in result.rows)
    q2_proc = [r["processing_nodes"] for r in result.rows if r["nodes"] == largest]
    q1_proc = [r["processing_nodes"] for r in q1.rows if r["nodes"] == largest]
    assert sum(q2_proc) / len(q2_proc) < sum(q1_proc) / len(q1_proc)
