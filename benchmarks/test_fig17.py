"""Benchmark: Figure 17 — (range, range, range) queries."""

from benchmarks.conftest import assert_metric_ordering, by_query
from repro.experiments import fig17_range_rrr


def test_fig17_full_range(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig17_range_rrr.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    assert_metric_ordering(result.rows)
    groups = by_query(result)
    assert len(groups) == 5  # the paper's five queries
    for rows in groups.values():
        assert all(r["matches"] >= 1 for r in rows)
        # The processing fraction stays bounded as the system grows.
        for r in rows:
            assert r["processing_nodes"] <= 0.6 * r["nodes"] + 8
