"""Benchmark: Figure 15 — (keyword, range, *) range queries."""

import numpy as np

from benchmarks.conftest import assert_metric_ordering, by_query
from repro.experiments import fig15_range_kr


def test_fig15_keyword_range(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig15_range_kr.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    assert_metric_ordering(result.rows)
    groups = by_query(result)
    assert len(groups) == 4  # the paper's four queries

    # Every query finds matches (ranges are anchored on real resources).
    for rows in groups.values():
        assert all(r["matches"] >= 1 for r in rows)

    # Paper: cost depends on matches/data distribution, not on range width.
    # Check the weaker, testable implication: processing nodes are not
    # proportional to range width — correlation between the range width
    # embedded in the query text and processing nodes may be weak/negative,
    # while matches and data nodes correlate strongly.
    largest = max(r["nodes"] for r in result.rows)
    final = [r for r in result.rows if r["nodes"] == largest]
    matches = np.array([r["matches"] for r in final], dtype=float)
    data_nodes = np.array([r["data_nodes"] for r in final], dtype=float)
    if len(set(matches)) > 1 and len(set(data_nodes)) > 1:
        corr = np.corrcoef(matches, data_nodes)[0, 1]
        assert corr > 0
