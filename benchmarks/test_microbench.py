"""Micro-benchmarks of the hot paths (real timing, multiple rounds).

These are the paths the guides' profiling methodology identified as hot:
bulk Hilbert indexing (vectorized NumPy), Chord routing, cluster
resolution, and end-to-end query execution.  Unlike the figure benchmarks
(single-shot regenerations), these run repeated rounds for stable timing.
"""

import numpy as np
import pytest

from repro import SquidSystem
from repro.sfc import HilbertCurve, Region, resolve_clusters
from repro.sfc.hilbert_vec import hilbert_encode_vec
from repro.overlay.chord import ChordRing
from repro.workloads.documents import DocumentWorkload


@pytest.fixture(scope="module")
def big_ring():
    return ChordRing.with_random_ids(40, 2000, rng=0)


@pytest.fixture(scope="module")
def populated_system():
    workload = DocumentWorkload.generate(2, 20_000, vocabulary_size=2000, bits=20, rng=1)
    system = SquidSystem.create(workload.space, n_nodes=1000, seed=2)
    system.publish_many(workload.keys)
    return system, workload


def test_bulk_hilbert_encode_100k(benchmark):
    rng = np.random.default_rng(3)
    points = rng.integers(0, 1 << 20, size=(100_000, 3))
    out = benchmark(hilbert_encode_vec, points, 3, 20)
    assert out.shape == (100_000,)


def test_scalar_hilbert_encode(benchmark):
    curve = HilbertCurve(3, 20)
    result = benchmark(curve.encode, (123456, 654321, 424242))
    assert curve.decode(result) == (123456, 654321, 424242)


def test_chord_route(benchmark, big_ring):
    ids = big_ring.node_ids()

    def route_batch():
        total = 0
        for i in range(50):
            total += big_ring.route(ids[i % len(ids)], (i * 7919) % big_ring.space).hops
        return total

    hops = benchmark(route_batch)
    assert hops > 0
    assert hops / 50 < 2 * np.log2(len(ids))


def test_chord_bulk_build(benchmark):
    ring = benchmark(ChordRing.with_random_ids, 40, 2000, 7)
    assert len(ring) == 2000


def test_cluster_resolution(benchmark):
    curve = HilbertCurve(2, 12)
    region = Region.from_bounds([(100, 900), (2000, 3500)])
    ranges = benchmark(resolve_clusters, curve, region)
    assert ranges


def test_end_to_end_query(benchmark, populated_system):
    system, workload = populated_system
    query = f"({workload.keys[0][0][:4]}*, *)"

    def run():
        return system.query(query, origin=system.overlay.node_ids()[0], rng=0)

    result = benchmark(run)
    assert result.match_count == len(system.brute_force_matches(query))


def test_bulk_publish_10k(benchmark, populated_system):
    _, workload = populated_system

    def publish():
        system = SquidSystem.create(workload.space, n_nodes=500, seed=9)
        return system.publish_many(workload.keys[:10_000])

    count = benchmark.pedantic(publish, rounds=2, iterations=1)
    assert count == 10_000
