"""Benchmark: Figure 12 — Q1 queries, 3-D keyword space.

Also checks the paper's 2-D vs 3-D comparison: "results for the 3D case for
all the metrics have the same pattern as the 2D case but a larger
magnitude ... larger by two to three times".
"""

from benchmarks.conftest import (
    assert_metric_ordering,
    assert_small_fraction,
    by_query,
)
from repro.experiments import fig09_q1_2d, fig12_q1_3d


def test_fig12_q1_3d(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig12_q1_3d.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    assert_metric_ordering(result.rows)
    assert_small_fraction(result.rows, limit=0.6)
    assert len(by_query(result)) == 6

    # 3-D magnitudes exceed 2-D ones for comparable workloads (more, smaller
    # clusters on a longer curve).  Compare mean processing nodes per match
    # at the largest size.
    q1_2d = fig09_q1_2d.run(scale=bench_scale)
    largest = max(r["nodes"] for r in result.rows)

    def mean_processing(rows):
        vals = [r["processing_nodes"] for r in rows if r["nodes"] == largest]
        return sum(vals) / len(vals)

    assert mean_processing(result.rows) > 0.8 * mean_processing(q1_2d.rows)
