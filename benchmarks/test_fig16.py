"""Benchmark: Figure 16 — all metrics for range queries, two snapshots."""

from benchmarks.conftest import assert_metric_ordering
from repro.experiments import fig16_metrics_range


def test_fig16_metrics_range(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig16_metrics_range.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    assert_metric_ordering(result.rows)
    assert len({row["nodes"] for row in result.rows}) == 2
    for row in result.rows:
        assert row["routing_nodes"] < row["nodes"]
        assert row["processing_nodes"] < row["nodes"] / 2
