"""Baseline comparison: Squid vs flooding vs inverted index vs iSFC/CAN.

Quantifies the paper's §2/§4 comparisons:

* Gnutella-style flooding needs O(N·degree) messages for guaranteed recall,
  or loses recall under a TTL; Squid guarantees recall at a fraction of the
  cost.
* A Chord inverted index handles exact keywords but cannot express partial
  keywords or ranges at all.
* Andrzejak & Xu's inverse-SFC/CAN system answers single-attribute ranges;
  Squid does the same *and* multi-attribute combinations.
"""

import numpy as np
import pytest

from repro import NumericDimension, SquidSystem
from repro.baselines import (
    FloodingNetwork,
    InverseSfcCanSystem,
    InvertedIndexSystem,
    UnsupportedQueryError,
)
from repro.workloads.documents import DocumentWorkload
from repro.workloads.queries import q1_queries
from repro.workloads.resources import ResourceWorkload


def test_squid_vs_flooding(benchmark):
    workload = DocumentWorkload.generate(2, 4000, vocabulary_size=1200, bits=16, rng=0)
    queries = q1_queries(workload, count=5, rng=1)
    n_nodes = 200

    def measure():
        squid = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=2)
        squid.publish_many(workload.keys)
        flood = FloodingNetwork(workload.space, n_nodes=n_nodes, degree=4, rng=3)
        flood.publish_many(workload.keys)
        squid_msgs, flood_msgs, ttl_recalls = [], [], []
        for q in queries:
            squid_msgs.append(squid.query(q, rng=4).stats.messages)
            flood_msgs.append(flood.query(q, ttl=None).messages)
            ttl_recalls.append(flood.query(q, ttl=3).recall)
        return (
            float(np.mean(squid_msgs)),
            float(np.mean(flood_msgs)),
            float(np.mean(ttl_recalls)),
        )

    squid_msgs, flood_msgs, ttl_recall = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nmean messages: squid={squid_msgs:.0f} flooding={flood_msgs:.0f}; "
          f"flooding recall at ttl=3: {ttl_recall:.2f}")
    # Squid guarantees full recall at far below flooding's full-recall cost.
    assert squid_msgs < flood_msgs / 2


def test_squid_vs_inverted_index(benchmark):
    workload = DocumentWorkload.generate(2, 3000, vocabulary_size=1000, bits=16, rng=5)

    def measure():
        squid = SquidSystem.create(workload.space, n_nodes=150, seed=6)
        squid.publish_many(workload.keys)
        inverted = InvertedIndexSystem(workload.space, n_nodes=150, rng=7)
        inverted.publish_many(workload.keys)
        key = workload.keys[0]
        exact_query = f"({key[0]}, {key[1]})"
        squid_result = squid.query(exact_query, rng=8)
        inv_matches, inv_stats = inverted.query(exact_query)
        unsupported = 0
        for q in ["(comp*, *)", "(*, dat*)"]:
            try:
                inverted.query(q)
            except UnsupportedQueryError:
                unsupported += 1
        return squid_result.match_count, len(inv_matches), inv_stats, unsupported

    squid_matches, inv_matches, inv_stats, unsupported = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print(f"\nexact query matches: squid={squid_matches} inverted={inv_matches}; "
          f"inverted transferred {inv_stats.entries_transferred} posting entries")
    # Both answer exact queries; only Squid handles the flexible ones.
    assert squid_matches == inv_matches
    assert unsupported == 2
    # Squid retrieves only elements matching all keywords — the inverted
    # index ships posting lists at least as large as the final answer.
    assert inv_stats.entries_transferred >= inv_matches


def test_inverted_index_vs_keyword_sets(benchmark):
    """The two structured keyword-search baselines against each other:
    KSS pre-intersects pair posting lists (cheaper multi-keyword queries)
    at a combinatorial storage/publish cost."""
    from repro.baselines import KeywordSetSystem

    workload = DocumentWorkload.generate(2, 2000, vocabulary_size=900, bits=16, rng=20)

    def measure():
        inverted = InvertedIndexSystem(workload.space, n_nodes=100, rng=21)
        inv_publish = inverted.publish_many(workload.keys)
        kss = KeywordSetSystem(workload.space, n_nodes=100, set_size=2, rng=21)
        kss_publish = kss.publish_many(workload.keys)
        inv_entries = kss_entries = 0
        for key in workload.keys[:30]:
            q = f"({key[0]}, {key[1]})"
            inv_matches, inv_stats = inverted.query(q)
            kss_matches, kss_stats = kss.query(q)
            assert sorted(inv_matches) == sorted(kss_matches)
            inv_entries += inv_stats.entries_transferred
            kss_entries += kss_stats.entries_transferred
        return inv_publish, kss_publish, inv_entries, kss_entries

    inv_pub, kss_pub, inv_entries, kss_entries = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print(
        f"\npublish messages: inverted={inv_pub} kss={kss_pub}; "
        f"entries transferred for 30 two-keyword queries: "
        f"inverted={inv_entries} kss={kss_entries}"
    )
    assert kss_pub > inv_pub          # KSS pays at publish time...
    assert kss_entries < inv_entries  # ...and saves at query time.


def test_squid_vs_isfc_can_ranges(benchmark):
    rng = np.random.default_rng(9)
    values = rng.uniform(0, 4096, size=3000)

    def measure():
        attr = NumericDimension("memory", 0, 4096)
        isfc = InverseSfcCanSystem(attr, n_nodes=100, bits=16, can_dims=2, rng=10)
        for v in values:
            isfc.publish(float(v))

        from repro.keywords.space import KeywordSpace

        space = KeywordSpace([NumericDimension("memory", 0, 4096)], bits=16)
        squid = SquidSystem.create(space, n_nodes=100, seed=11)
        squid.publish_many([(float(v),) for v in values])

        lo, hi = 1000.0, 1400.0
        isfc_matches, isfc_stats = isfc.query_range(lo, hi)
        squid_result = squid.query(f"({lo}-{hi},)".replace(",)", ")"), rng=12)
        return len(isfc_matches), squid_result.match_count, isfc_stats.nodes_visited, squid_result.stats.processing_node_count

    isfc_n, squid_n, isfc_nodes, squid_nodes = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print(f"\nrange matches: isfc/can={isfc_n} squid={squid_n}; "
          f"nodes: isfc/can={isfc_nodes} squid={squid_nodes}")
    # Both find the complete answer on a single attribute.
    assert isfc_n == squid_n


def test_squid_multi_attribute_beyond_isfc(benchmark):
    """Squid answers multi-attribute range combinations the single-attribute
    iSFC deployment cannot express at all."""
    workload = ResourceWorkload.generate(3000, jitter=0.0, rng=13)

    def measure():
        squid = SquidSystem.create(workload.space, n_nodes=150, seed=14)
        squid.publish_many(workload.keys)
        result = squid.query("(1024-4096, 800-2400, 100-*)", rng=15)
        want = workload.count_matching("(1024-4096, 800-2400, 100-*)")
        return result.match_count, want

    got, want = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nmulti-attribute range matches: {got} (oracle {want})")
    assert got == want
    assert got > 0
