"""Overlay maintenance costs (paper §3.2: joins/departures are O(log N)).

Measures the message cost of joins, graceful departures, and stabilization
rounds across ring sizes, asserting the paper's logarithmic scaling claims.
"""

import numpy as np

from repro.overlay.chord import ChordRing


def _mean_join_cost(n_nodes, bits, n_joins, seed):
    ring = ChordRing.with_random_ids(bits, n_nodes, rng=seed)
    rng = np.random.default_rng(seed + 1)
    costs = []
    while len(costs) < n_joins:
        node_id = int(rng.integers(0, ring.space))
        if node_id in ring.nodes:
            continue
        costs.append(ring.join(node_id))
    return float(np.mean(costs))


def _mean_leave_cost(n_nodes, bits, n_leaves, seed):
    ring = ChordRing.with_random_ids(bits, n_nodes, rng=seed)
    rng = np.random.default_rng(seed + 1)
    costs = []
    for _ in range(n_leaves):
        ids = ring.node_ids()
        costs.append(ring.leave(ids[int(rng.integers(0, len(ids)))]))
    return float(np.mean(costs))


def test_join_cost_scales_logarithmically(benchmark):
    def measure():
        return [_mean_join_cost(n, 24, 30, seed=0) for n in (100, 400, 1600)]

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nmean join cost at N=100/400/1600: {[f'{c:.1f}' for c in costs]}")
    # 16x more nodes: cost grows far slower than linearly (paper: O(log N)
    # routing plus the affected finger entries).
    assert costs[2] < costs[0] * 6


def test_leave_cost_scales_logarithmically(benchmark):
    def measure():
        return [_mean_leave_cost(n, 24, 30, seed=1) for n in (100, 400, 1600)]

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nmean leave cost at N=100/400/1600: {[f'{c:.1f}' for c in costs]}")
    assert costs[2] < costs[0] * 6


def test_stabilization_cost_bounded(benchmark):
    """One stabilization step per node costs O(log N) messages."""

    def measure():
        ring = ChordRing.with_random_ids(20, 500, rng=2)
        rng = np.random.default_rng(3)
        # Knock out some nodes to give stabilization real work.
        for victim in rng.choice(ring.node_ids(), size=50, replace=False):
            ring.fail(int(victim))
        total = 0
        for node_id in ring.node_ids():
            total += ring.stabilize_node(node_id, rng)
        return total / len(ring)

    per_node = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nmean stabilization cost per node: {per_node:.2f} messages")
    assert per_node < 2 * np.log2(450)
