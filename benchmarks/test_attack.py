"""Extension bench: attack resistance (extE) — the mitigation ladder."""

from repro import SquidSystem
from repro.core.adversary import run_attack_experiment
from repro.workloads.documents import DocumentWorkload
from repro.workloads.queries import q1_queries


def test_attack_mitigation_ladder(benchmark):
    workload = DocumentWorkload.generate(2, 3000, vocabulary_size=1000, rng=0)
    queries = [str(q) for q in q1_queries(workload, count=5, rng=1)]

    def measure():
        out = {}
        for label, retry, degree in (
            ("none", False, 0),
            ("retry", True, 0),
            ("retry+repl", True, 2),
        ):
            system = SquidSystem.create(workload.space, n_nodes=150, seed=2)
            system.publish_many(workload.keys)
            out[label] = run_attack_experiment(
                system,
                queries,
                dropper_fraction=0.2,
                retry=retry,
                replication_degree=degree,
                rng=3,
            )["recall"]
        return out

    recalls = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nrecall at 20% droppers: none={recalls['none']:.2f} "
        f"retry={recalls['retry']:.2f} retry+repl={recalls['retry+repl']:.2f}"
    )
    assert recalls["none"] < recalls["retry"] <= recalls["retry+repl"]
    assert recalls["retry+repl"] > 0.9
