"""Benchmark: Figure 9 — Q1 queries, 2-D keyword space.

Regenerates the paper's series (matches / processing nodes / data nodes per
query vs. system size) and asserts its shape claims.
"""

from benchmarks.conftest import (
    assert_metric_ordering,
    assert_small_fraction,
    assert_sublinear_growth,
    by_query,
)
from repro.experiments import fig09_q1_2d


def test_fig09_q1_2d(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig09_q1_2d.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    assert_metric_ordering(result.rows)
    assert_small_fraction(result.rows)

    groups = by_query(result)
    assert len(groups) == 6  # the paper's six Q1 queries
    sublinear_hits = 0
    for rows in groups.values():
        nodes = [r["nodes"] for r in rows]
        assert nodes == sorted(nodes)
        # Paper: processing/data nodes "increase at a slower rate than the
        # system size".
        proc = [r["processing_nodes"] for r in rows]
        if proc[0] > 0 and proc[-1] / proc[0] <= 0.9 * (nodes[-1] / nodes[0]) + 1.0:
            sublinear_hits += 1
    assert sublinear_hits >= 4  # holds for (nearly) all queries

    # Paper: processing cost is not monotone in the number of matches.
    final = [rows[-1] for rows in groups.values()]
    order_by_matches = sorted(final, key=lambda r: r["matches"])
    proc_in_match_order = [r["processing_nodes"] for r in order_by_matches]
    assert proc_in_match_order != sorted(proc_in_match_order) or len(set(proc_in_match_order)) == 1
