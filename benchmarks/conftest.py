"""Shared helpers for the figure benchmarks.

Every benchmark regenerates one of the paper's evaluation figures (at the
``small`` scale preset by default — set ``REPRO_BENCH_SCALE=medium|full``
to rerun at larger sizes) and asserts the *shape* properties the paper
reports.  Absolute magnitudes are not asserted: the substrate is a
simulator, not the authors' testbed.
"""

import os

import pytest

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


def by_query(result):
    """Group a sweep's rows by query id."""
    groups = {}
    for row in result.rows:
        groups.setdefault(row["query_id"], []).append(row)
    return groups


def assert_metric_ordering(rows):
    """data <= processing <= routing for every row, and messages sane."""
    for row in rows:
        assert row["data_nodes"] <= row["processing_nodes"], row
        assert row["processing_nodes"] <= row["routing_nodes"], row
        assert row["messages"] >= 1, row


def assert_small_fraction(rows, limit=0.5):
    """Processing nodes are a small fraction of the system."""
    for row in rows:
        assert row["processing_nodes"] <= max(limit * row["nodes"], 8), row


def assert_sublinear_growth(series_nodes, series_values, factor=0.9):
    """values grow more slowly than the node count across the sweep."""
    n_growth = series_nodes[-1] / series_nodes[0]
    if series_values[0] <= 0:
        return
    v_growth = series_values[-1] / series_values[0]
    assert v_growth <= factor * n_growth + 1.0, (series_nodes, series_values)
