"""Extension bench: hot-spot mitigation via result caching (paper §5).

Measures a Zipf-repeating query stream with and without the caching layer:
total messages, hottest-node load, and hit rate.
"""

import numpy as np

from repro.core.hotspots import CachingQueryLayer, HotspotMonitor
from repro import SquidSystem
from repro.workloads.documents import DocumentWorkload
from repro.workloads.queries import q1_queries


def test_hotspot_caching(benchmark):
    workload = DocumentWorkload.generate(2, 5000, vocabulary_size=1200, bits=16, rng=0)
    system = SquidSystem.create(workload.space, n_nodes=200, seed=1)
    system.publish_many(workload.keys)
    base_queries = [str(q) for q in q1_queries(workload, count=8, rng=2)]
    rng = np.random.default_rng(3)
    weights = np.array([1 / (i + 1) for i in range(len(base_queries))])
    weights /= weights.sum()
    stream = [base_queries[i] for i in rng.choice(len(base_queries), size=150, p=weights)]

    def measure():
        plain_monitor = HotspotMonitor()
        plain_msgs = 0
        for q in stream:
            result = system.query(q, rng=4)
            plain_monitor.record(result.stats)
            plain_msgs += result.stats.messages

        layer = CachingQueryLayer(system)
        cached_msgs = 0
        for q in stream:
            cached_msgs += layer.query(q, rng=4).stats.messages
        return (
            plain_msgs,
            cached_msgs,
            plain_monitor.max_load(),
            layer.monitor.max_load(),
            layer.stats.hit_rate,
        )

    plain_msgs, cached_msgs, plain_hot, cached_hot, hit_rate = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print(
        f"\n150-query Zipf stream: messages {plain_msgs} -> {cached_msgs} "
        f"(hit rate {hit_rate:.0%}); hottest node load {plain_hot} -> {cached_hot}"
    )
    assert hit_rate > 0.8
    assert cached_msgs < plain_msgs / 2
    assert cached_hot <= plain_hot
