"""Benchmark: Figure 13 — all metrics, 3-D, two system snapshots."""

from benchmarks.conftest import assert_metric_ordering
from repro.experiments import fig13_metrics_3d


def test_fig13_metrics_3d(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig13_metrics_3d.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    assert_metric_ordering(result.rows)
    assert len({row["nodes"] for row in result.rows}) == 2
    for row in result.rows:
        assert row["routing_nodes"] < row["nodes"]
        assert row["messages"] <= 6 * max(row["processing_nodes"], 1)
