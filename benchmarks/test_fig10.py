"""Benchmark: Figure 10 — all metrics, 2-D, two system snapshots."""

from benchmarks.conftest import assert_metric_ordering
from repro.experiments import fig10_metrics_2d


def test_fig10_metrics_2d(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig10_metrics_2d.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    assert_metric_ordering(result.rows)
    snapshots = {row["nodes"] for row in result.rows}
    assert len(snapshots) == 2  # the paper's two bar charts

    for row in result.rows:
        # Paper: "the processing nodes are a small fraction of the routing
        # nodes, and a very small fraction of the entire system".
        assert row["processing_nodes"] < row["nodes"] / 2
        assert row["routing_nodes"] < row["nodes"]
        # Paper: "the number of messages used is almost twice the number of
        # processing nodes" — allow generous slack around the 2x claim.
        assert row["messages"] <= 6 * max(row["processing_nodes"], 1)
        assert row["messages"] >= max(row["processing_nodes"] - 2, 0)
