"""Extension bench: successor-list replication under crash bursts (paper §5
fault-tolerance future work).

Compares data survival with and without replication while a fraction of the
ring crashes, and reports the replication overhead.
"""

import numpy as np

from repro.core.replication import ReplicationManager
from repro import SquidSystem
from repro.workloads.documents import DocumentWorkload

CRASH_FRACTION = 0.15


def _crash_burst(system, manager, rng):
    victims = rng.choice(
        system.overlay.node_ids(),
        size=int(CRASH_FRACTION * len(system.overlay)),
        replace=False,
    )
    for victim in victims:
        if manager is None:
            system.overlay.fail(int(victim))
            system.stores.pop(int(victim))
        else:
            successor = system.overlay.successor_id(int(victim))
            manager.crash(int(victim))
            manager.repair_around(successor)


def test_replication_survives_crash_burst(benchmark):
    workload = DocumentWorkload.generate(2, 3000, vocabulary_size=1000, bits=16, rng=0)

    def measure():
        plain = SquidSystem.create(workload.space, n_nodes=120, seed=1)
        plain.publish_many(workload.keys)
        total = plain.total_elements()
        _crash_burst(plain, None, np.random.default_rng(2))
        lost_plain = total - plain.total_elements()

        replicated = SquidSystem.create(workload.space, n_nodes=120, seed=1)
        replicated.publish_many(workload.keys)
        manager = ReplicationManager(replicated, degree=2)
        overhead = manager.replica_count()
        _crash_burst(replicated, manager, np.random.default_rng(2))
        lost_replicated = total - replicated.total_elements()
        return total, lost_plain, lost_replicated, overhead

    total, lost_plain, lost_repl, overhead = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print(
        f"\ncrash burst ({CRASH_FRACTION:.0%} of peers): without replication "
        f"{lost_plain}/{total} elements lost; with degree-2 replication "
        f"{lost_repl}/{total} lost (storage overhead {overhead} replicas)"
    )
    assert lost_plain > 0
    assert lost_repl == 0
    assert overhead == 2 * total
