"""Benchmark: Figure 14 — Q2 queries, 3-D keyword space."""

from benchmarks.conftest import assert_metric_ordering, by_query
from repro.experiments import fig12_q1_3d, fig14_q2_3d


def test_fig14_q2_3d(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig14_q2_3d.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    assert_metric_ordering(result.rows)
    assert len(by_query(result)) == 5

    # Q2 beats Q1 in 3-D as well (pruning works when more keywords are known).
    q1 = fig12_q1_3d.run(scale=bench_scale)
    largest = max(r["nodes"] for r in result.rows)
    q2_proc = [r["processing_nodes"] for r in result.rows if r["nodes"] == largest]
    q1_proc = [r["processing_nodes"] for r in q1.rows if r["nodes"] == largest]
    assert sum(q2_proc) / len(q2_proc) < sum(q1_proc) / len(q1_proc)
