"""Ablation: Chord vs. CAN as the overlay carrying the 1-d index space.

The paper uses Chord and names "other network topologies" as future work;
its reference-[1] competitor uses CAN.  Both overlays here expose the same
key space, so their routing economics are directly comparable: Chord
resolves lookups in O(log N) hops with O(log N) state per node, CAN in
O(d · N^(1/d)) hops with O(d) neighbors.
"""

import numpy as np

from repro.overlay import CanOverlay, ChordRing, PastryOverlay


def _mean_hops_chord(bits, n_nodes, n_lookups, seed):
    ring = ChordRing.with_random_ids(bits, n_nodes, rng=seed)
    rng = np.random.default_rng(seed + 1)
    ids = ring.node_ids()
    hops = []
    for _ in range(n_lookups):
        source = ids[rng.integers(0, len(ids))]
        key = int(rng.integers(0, ring.space))
        hops.append(ring.route(source, key).hops)
    return float(np.mean(hops))


def _mean_hops_can(bits, n_nodes, n_lookups, seed):
    can = CanOverlay(bits, can_dims=2)
    rng = np.random.default_rng(seed)
    for _ in range(n_nodes):
        can.join(rng)
    ids = can.node_ids()
    hops = []
    for _ in range(n_lookups):
        source = ids[rng.integers(0, len(ids))]
        key = int(rng.integers(0, can.space))
        hops.append(can.route(source, key).hops)
    return float(np.mean(hops))


def test_chord_vs_can_routing(benchmark):
    bits, n_nodes, lookups = 16, 256, 150

    def measure():
        return (
            _mean_hops_chord(bits, n_nodes, lookups, seed=0),
            _mean_hops_can(bits, n_nodes, lookups, seed=1),
        )

    chord_hops, can_hops = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nmean lookup hops at N={n_nodes}: chord={chord_hops:.1f} can={can_hops:.1f}")
    # Chord's O(log N) beats CAN's O(sqrt N) at this size.
    assert chord_hops < can_hops
    assert chord_hops <= 2 * np.log2(n_nodes)


def test_chord_hops_scale_logarithmically(benchmark):
    def measure():
        return [
            _mean_hops_chord(18, n, 100, seed=2) for n in (64, 256, 1024)
        ]

    hops = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nchord mean hops at N=64/256/1024: {[f'{h:.1f}' for h in hops]}")
    # 16x more nodes adds only a constant number of hops.
    assert hops[2] - hops[0] < 4


def _mean_hops_pastry(bits, n_nodes, n_lookups, seed):
    net = PastryOverlay.with_random_ids(bits, n_nodes, rng=seed)
    rng = np.random.default_rng(seed + 1)
    ids = net.node_ids()
    hops = []
    for _ in range(n_lookups):
        source = ids[rng.integers(0, len(ids))]
        key = int(rng.integers(0, net.space))
        hops.append(net.route(source, key).hops)
    return float(np.mean(hops))


def test_three_way_topology_comparison(benchmark):
    """Chord vs Pastry vs CAN carrying the same identifier space.

    Pastry's base-16 prefix routing takes the fewest hops, Chord's binary
    fingers follow, CAN's O(sqrt N) greedy walk trails both.
    """
    bits, n_nodes, lookups = 16, 256, 150

    def measure():
        return (
            _mean_hops_chord(bits, n_nodes, lookups, seed=3),
            _mean_hops_pastry(bits, n_nodes, lookups, seed=4),
            _mean_hops_can(bits, n_nodes, lookups, seed=5),
        )

    chord_hops, pastry_hops, can_hops = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nmean lookup hops at N={n_nodes}: chord={chord_hops:.1f} "
        f"pastry={pastry_hops:.1f} can={can_hops:.1f}"
    )
    assert pastry_hops < chord_hops < can_hops
