"""Extension bench: proximity neighbor selection (geographic locality, §5).

Compares lookup latency and hop counts between classic Chord fingers and
PNS fingers over the same membership and latency model.
"""

import numpy as np

from repro.overlay.chord import ChordRing
from repro.overlay.proximity import LatencyModel, ProximityChordRing


def test_pns_latency_saving(benchmark):
    bits, n_nodes, lookups = 18, 500, 300

    def measure():
        plain = ChordRing.with_random_ids(bits, n_nodes, rng=0)
        ids = plain.node_ids()
        model = LatencyModel.random(ids, rng=1)
        pns = ProximityChordRing.build_with_model(bits, ids, model=model, candidates=8)
        rng = np.random.default_rng(2)
        plain_lat = pns_lat = 0.0
        plain_hops = pns_hops = 0
        for _ in range(lookups):
            source = ids[rng.integers(0, len(ids))]
            key = int(rng.integers(0, plain.space))
            p = plain.route(source, key)
            q = pns.route(source, key)
            assert p.destination == q.destination
            plain_lat += model.path_latency(p.path)
            pns_lat += model.path_latency(q.path)
            plain_hops += p.hops
            pns_hops += q.hops
        return plain_lat / lookups, pns_lat / lookups, plain_hops / lookups, pns_hops / lookups

    plain_lat, pns_lat, plain_hops, pns_hops = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print(
        f"\nmean lookup latency: chord={plain_lat:.1f} pns={pns_lat:.1f} "
        f"({1 - pns_lat / plain_lat:.0%} saved); hops {plain_hops:.1f} -> {pns_hops:.1f}"
    )
    assert pns_lat < plain_lat * 0.9  # at least 10% latency saving
    assert pns_hops <= 2 * plain_hops + 1
