"""Ablation: optimized (distributed refinement) vs. naive query engine, and
the aggregation optimization.

Paper §3.4: sending one message per cluster "is not a scalable solution";
distributed refinement with pruning restricts work to nodes that can hold
matches, and sibling aggregation batches fine sub-queries.
"""

import numpy as np

from repro import NaiveEngine, OptimizedEngine, SquidSystem
from repro.workloads.documents import DocumentWorkload
from repro.workloads.queries import q1_queries


def _build(seed=0, n_nodes=300, n_keys=5000):
    workload = DocumentWorkload.generate(2, n_keys, vocabulary_size=1500, bits=16, rng=seed)
    system = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=seed + 1)
    system.publish_many(workload.keys)
    queries = q1_queries(workload, count=6, rng=seed + 2)
    return system, queries


def test_optimized_vs_naive(benchmark):
    system, queries = _build()

    def measure():
        opt = [system.query(q, engine=OptimizedEngine(), rng=7).stats for q in queries]
        naive = [system.query(q, engine=NaiveEngine(), rng=7).stats for q in queries]
        return (
            float(np.mean([s.messages for s in opt])),
            float(np.mean([s.messages for s in naive])),
            float(np.mean([s.processing_node_count for s in opt])),
            float(np.mean([s.processing_node_count for s in naive])),
        )

    opt_msgs, naive_msgs, opt_proc, naive_proc = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print(f"\nmessages: optimized={opt_msgs:.1f} naive={naive_msgs:.1f}")
    print(f"processing nodes: optimized={opt_proc:.1f} naive={naive_proc:.1f}")
    # The paper's motivation: one message per fully resolved cluster does
    # not scale; distributed refinement sends far fewer.
    assert opt_msgs < naive_msgs


def test_aggregation_ablation(benchmark):
    system, queries = _build(seed=3)

    def measure():
        agg = [
            system.query(q, engine=OptimizedEngine(aggregate=True, local_depth=5), rng=9).stats
            for q in queries
        ]
        noagg = [
            system.query(q, engine=OptimizedEngine(aggregate=False, local_depth=5), rng=9).stats
            for q in queries
        ]
        return (
            float(np.mean([s.hops for s in agg])),
            float(np.mean([s.hops for s in noagg])),
        )

    agg_hops, noagg_hops = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nwire hops with deep refinement: aggregated={agg_hops:.1f} "
          f"unaggregated={noagg_hops:.1f}")
    # With fine sub-queries, batching by destination saves wire traffic.
    assert agg_hops <= noagg_hops


def test_local_depth_sweep(benchmark):
    """Deeper per-node refinement trades messages for pruning precision.

    The sweep shows the trend the engine's local_depth knob controls:
    processing nodes shrink (finer sub-queries prune better) while
    unaggregated message counts grow.
    """
    system, queries = _build(seed=7)

    def measure():
        rows = []
        for depth in (1, 2, 4, 6):
            engine_stats = [
                system.query(
                    q,
                    engine=OptimizedEngine(aggregate=False, local_depth=depth),
                    rng=11,
                ).stats
                for q in queries
            ]
            rows.append(
                (
                    depth,
                    float(np.mean([s.processing_node_count for s in engine_stats])),
                    float(np.mean([s.messages for s in engine_stats])),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nlocal_depth sweep (depth, processing, messages):")
    for depth, proc, msgs in rows:
        print(f"  depth={depth}: processing={proc:.1f} messages={msgs:.1f}")
    # Processing never grows with depth; message counts never shrink much.
    procs = [r[1] for r in rows]
    assert procs[-1] <= procs[0] + 1
