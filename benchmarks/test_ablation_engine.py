"""Ablation: optimized (distributed refinement) vs. naive query engine, and
the aggregation optimization.

Paper §3.4: sending one message per cluster "is not a scalable solution";
distributed refinement with pruning restricts work to nodes that can hold
matches, and sibling aggregation batches fine sub-queries.
"""

import numpy as np

from repro import OptimizedEngine, SquidSystem
from repro.workloads.documents import DocumentWorkload
from repro.workloads.queries import q1_queries


def _build(seed=0, n_nodes=300, n_keys=5000):
    workload = DocumentWorkload.generate(2, n_keys, vocabulary_size=1500, bits=16, rng=seed)
    system = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=seed + 1)
    system.publish_many(workload.keys)
    queries = q1_queries(workload, count=6, rng=seed + 2)
    return system, queries


def _mean_row(stats_list):
    """Mean of the canonical QueryStats.as_row() columns over a query set."""
    rows = [s.as_row() for s in stats_list]
    return {col: float(np.mean([r[col] for r in rows])) for col in rows[0]}


def test_optimized_vs_naive(benchmark):
    system, queries = _build()

    def measure():
        return {
            name: _mean_row([system.query(q, engine=name, rng=7).stats for q in queries])
            for name in ("optimized", "naive")
        }

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    opt, naive = rows["optimized"], rows["naive"]
    print(f"\nmessages: optimized={opt['messages']:.1f} naive={naive['messages']:.1f}")
    print(
        f"processing nodes: optimized={opt['processing_nodes']:.1f} "
        f"naive={naive['processing_nodes']:.1f}"
    )
    # The paper's motivation: one message per fully resolved cluster does
    # not scale; distributed refinement sends far fewer.
    assert opt["messages"] < naive["messages"]


def test_aggregation_ablation(benchmark):
    system, queries = _build(seed=3)

    def measure():
        return {
            label: _mean_row(
                [
                    system.query(
                        q,
                        engine=OptimizedEngine(aggregate=aggregate, local_depth=5),
                        rng=9,
                    ).stats
                    for q in queries
                ]
            )
            for label, aggregate in (("aggregated", True), ("unaggregated", False))
        }

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    agg_hops = rows["aggregated"]["hops"]
    noagg_hops = rows["unaggregated"]["hops"]
    print(f"\nwire hops with deep refinement: aggregated={agg_hops:.1f} "
          f"unaggregated={noagg_hops:.1f}")
    # With fine sub-queries, batching by destination saves wire traffic.
    assert agg_hops <= noagg_hops


def test_local_depth_sweep(benchmark):
    """Deeper per-node refinement trades messages for pruning precision.

    The sweep shows the trend the engine's local_depth knob controls:
    processing nodes shrink (finer sub-queries prune better) while
    unaggregated message counts grow.
    """
    system, queries = _build(seed=7)

    def measure():
        rows = []
        for depth in (1, 2, 4, 6):
            engine_stats = [
                system.query(
                    q,
                    engine=OptimizedEngine(aggregate=False, local_depth=depth),
                    rng=11,
                ).stats
                for q in queries
            ]
            rows.append({"depth": depth, **_mean_row(engine_stats)})
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nlocal_depth sweep (depth, processing, messages):")
    for row in rows:
        print(
            f"  depth={row['depth']}: processing={row['processing_nodes']:.1f} "
            f"messages={row['messages']:.1f}"
        )
    # Processing never grows with depth; message counts never shrink much.
    procs = [r["processing_nodes"] for r in rows]
    assert procs[-1] <= procs[0] + 1
