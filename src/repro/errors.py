"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to discriminate the failure domain (SFC math, keyword
encoding, overlay routing, query processing, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SFCError",
    "DimensionMismatchError",
    "CoordinateRangeError",
    "IndexRangeError",
    "KeywordError",
    "QueryParseError",
    "OverlayError",
    "EmptyOverlayError",
    "NodeNotFoundError",
    "DuplicateNodeError",
    "StoreError",
    "ConfigError",
    "EngineError",
    "LoadBalanceError",
    "WorkloadError",
    "SimulationError",
    "FaultError",
    "GuardError",
    "ServingError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SFCError(ReproError):
    """Base class for space-filling-curve related errors."""


class DimensionMismatchError(SFCError):
    """A point/region has the wrong number of dimensions for the curve."""

    def __init__(self, expected: int, got: int) -> None:
        super().__init__(f"expected {expected} dimensions, got {got}")
        self.expected = expected
        self.got = got


class CoordinateRangeError(SFCError):
    """A coordinate lies outside ``[0, 2**order)``."""


class IndexRangeError(SFCError):
    """A 1-d curve index lies outside ``[0, 2**(dims*order))``."""


class KeywordError(ReproError):
    """Base class for keyword-space encoding errors."""


class QueryParseError(KeywordError):
    """A textual query could not be parsed into a query plan."""


class OverlayError(ReproError):
    """Base class for overlay-network errors."""


class EmptyOverlayError(OverlayError):
    """An operation that needs at least one node was run on an empty overlay."""


class NodeNotFoundError(OverlayError):
    """Referenced node identifier is not part of the overlay."""


class DuplicateNodeError(OverlayError):
    """A node with the given identifier already exists in the overlay."""


class StoreError(ReproError):
    """Local data store errors."""


class ConfigError(ReproError):
    """A by-name component selection named something the registry lacks."""


class EngineError(ReproError):
    """Query engine processing errors."""


class LoadBalanceError(ReproError):
    """Load balancing errors."""


class WorkloadError(ReproError):
    """Workload generation errors."""


class SimulationError(ReproError):
    """Discrete-event simulation errors."""


class FaultError(ReproError):
    """Fault-injection plane configuration or wiring errors."""


class GuardError(ReproError):
    """Overload-guard plane configuration or priority-class errors."""


class ServingError(ReproError):
    """Serving-layer (HTTP server / client / load generator) errors."""
