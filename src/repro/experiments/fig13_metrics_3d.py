"""Figure 13 — all metrics, 3-D keyword space, two system snapshots.

Paper: "(a) for 3000 node system and 6·10^4 keys, (b) for 5300 node system
and 10^5 keys."  Same shape expectations as Figure 10, larger magnitudes.
"""

from __future__ import annotations

from repro.experiments import fig12_q1_3d
from repro.experiments.runner import SCALES, FigureResult
from repro.experiments.sweeps import snapshot_runs

__all__ = ["run"]


def run(scale: str = "small", seed: int = 12) -> FigureResult:
    """Regenerate fig13 at the given scale preset (see module docstring)."""
    preset = SCALES[scale]
    sweep = fig12_q1_3d.run(scale=scale, seed=seed)
    pairs = preset.paired()
    return snapshot_runs(
        figure="fig13",
        title="All metrics, 3-D keyword space (two system snapshots)",
        sweep=sweep,
        snapshots=[pairs[2], pairs[4]],
    )
