"""Experiment framework: results, tables, and scaling presets.

Every figure of the paper's evaluation section has a module in this package
exposing ``run(scale=..., seed=...) -> FigureResult``.  A
:class:`FigureResult` holds the same rows/series the paper plots, renders as
an aligned text table, and carries the shape assertions the benchmarks
check.

Scales
------
``full``  — the paper's sizes (1000–5400 nodes, 2·10^4–10^5 keys).
``medium``— one quarter of the paper's sizes (CI-friendly minutes).
``small`` — one tenth (seconds; used by the benchmark suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = ["SCALES", "ScalePreset", "FigureResult", "format_table"]


@dataclass(frozen=True)
class ScalePreset:
    """System/workload sizes for one experiment scale."""

    name: str
    node_counts: tuple[int, ...]
    key_counts: tuple[int, ...]
    vocabulary_size: int

    def paired(self) -> list[tuple[int, int]]:
        """(nodes, keys) growth steps, paired as in the paper's sweeps."""
        return list(zip(self.node_counts, self.key_counts))


SCALES: dict[str, ScalePreset] = {
    # The paper: "The system size increases from 1000 nodes to 5400 nodes,
    # and the number of stored keys increases from 2*10^4 to 10^5."
    "full": ScalePreset(
        name="full",
        node_counts=(1000, 2000, 3200, 4300, 5400),
        key_counts=(20_000, 40_000, 60_000, 80_000, 100_000),
        vocabulary_size=4000,
    ),
    "medium": ScalePreset(
        name="medium",
        node_counts=(250, 500, 800, 1100, 1350),
        key_counts=(5_000, 10_000, 15_000, 20_000, 25_000),
        vocabulary_size=2000,
    ),
    "small": ScalePreset(
        name="small",
        node_counts=(100, 200, 320, 430, 540),
        key_counts=(2_000, 4_000, 6_000, 8_000, 10_000),
        vocabulary_size=1200,
    ),
}


@dataclass
class FigureResult:
    """One reproduced figure: metadata plus its data rows."""

    figure: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def series(self, column: str) -> list[Any]:
        """All values of one column, in row order (a plotted series)."""
        return [row.get(column) for row in self.rows]

    def filtered(self, **match: Any) -> "FigureResult":
        """Rows whose columns equal the given values."""
        rows = [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in match.items())
        ]
        return FigureResult(self.figure, self.title, self.columns, rows, self.notes)

    def to_text(self) -> str:
        header = f"{self.figure}: {self.title}"
        lines = [header, "=" * len(header)]
        lines.append(format_table(self.columns, self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated export of the rows (header + data lines)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns, extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: row.get(c, "") for c in self.columns})
        return buffer.getvalue()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def format_table(columns: list[str], rows: Iterable[dict[str, Any]]) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rows = list(rows)
    rendered = [[_fmt(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    out = [
        " | ".join(col.ljust(w) for col, w in zip(columns, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for r in rendered:
        out.append(" | ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(out)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)
