"""Reusable sweep implementations behind the figure modules.

The paper's evaluation repeats three experiment shapes across keyword-space
dimensionalities and query types:

* a **growth sweep** — fixed query set, system growing from 1000 to 5400
  nodes and 2·10^4 to 10^5 keys (Figures 9, 11, 12, 14, 15, 17);
* a **snapshot** — all four metrics for each query at two fixed system
  sizes (Figures 10, 13, 16);
* the **load distributions** (Figures 18, 19).

Each figure module parameterizes one of these.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.experiments.common import (
    build_document_system,
    build_resource_system,
    sweep_queries,
)
from repro.experiments.runner import FigureResult, ScalePreset
from repro.keywords.query import Query
from repro.util.rng import as_generator
from repro.workloads.documents import DocumentWorkload
from repro.workloads.resources import ResourceWorkload

__all__ = ["document_growth_sweep", "resource_growth_sweep", "snapshot_runs"]

QueryMaker = Callable[[DocumentWorkload | ResourceWorkload], Sequence[Query]]


def document_growth_sweep(
    figure: str,
    title: str,
    dims: int,
    scale: ScalePreset,
    make_queries: QueryMaker,
    seed: int = 0,
) -> FigureResult:
    """Run a fixed query set against a growing 2-D/3-D document system."""
    gen = as_generator(seed)
    workload = DocumentWorkload.generate(
        dims,
        max(scale.key_counts),
        vocabulary_size=scale.vocabulary_size,
        rng=gen,
    )
    queries = list(make_queries(workload))
    result = FigureResult(
        figure=figure,
        title=title,
        columns=[
            "nodes",
            "keys",
            "query_id",
            "query",
            "matches",
            "routing_nodes",
            "processing_nodes",
            "data_nodes",
            "messages",
            "hops",
        ],
    )
    for n_nodes, n_keys in scale.paired():
        built = build_document_system(
            dims=dims,
            n_nodes=n_nodes,
            n_keys=n_keys,
            vocabulary_size=scale.vocabulary_size,
            seed=gen,
            workload=workload,
        )
        rows = sweep_queries(
            built.system,
            queries,
            seed=gen,
            extra={"nodes": n_nodes, "keys": n_keys},
        )
        for row in rows:
            result.rows.append(row)
    result.notes.append(
        f"{len(queries)} fixed queries swept over system sizes {scale.node_counts}"
    )
    return result


def resource_growth_sweep(
    figure: str,
    title: str,
    scale: ScalePreset,
    make_queries: QueryMaker,
    seed: int = 0,
) -> FigureResult:
    """Run a fixed range-query set against a growing resource system."""
    gen = as_generator(seed)
    # jitter=0: resources advertise exact standard configurations, so the
    # paper's "(keyword, range, *)" form — an exact attribute value playing
    # the keyword role — has realistic match counts.
    workload = ResourceWorkload.generate(max(scale.key_counts), jitter=0.0, rng=gen)
    queries = list(make_queries(workload))
    result = FigureResult(
        figure=figure,
        title=title,
        columns=[
            "nodes",
            "keys",
            "query_id",
            "query",
            "matches",
            "routing_nodes",
            "processing_nodes",
            "data_nodes",
            "messages",
            "hops",
        ],
    )
    for n_nodes, n_keys in scale.paired():
        built = build_resource_system(
            n_resources=n_keys,
            n_nodes=n_nodes,
            seed=gen,
            workload=workload,
        )
        rows = sweep_queries(
            built.system,
            queries,
            seed=gen,
            extra={"nodes": n_nodes, "keys": n_keys},
        )
        result.rows.extend(rows)
    result.notes.append(
        f"{len(queries)} fixed range queries swept over sizes {scale.node_counts}"
    )
    return result


def snapshot_runs(
    figure: str,
    title: str,
    sweep: FigureResult,
    snapshots: Sequence[tuple[int, int]],
) -> FigureResult:
    """Extract the paper's bar-chart snapshots from a completed sweep.

    The paper's Figures 10/13/16 plot all metrics for each query at two
    (nodes, keys) system sizes drawn from the same experiments as the
    growth figures; we do the same rather than re-running.
    """
    result = FigureResult(
        figure=figure,
        title=title,
        columns=[
            "nodes",
            "keys",
            "query_id",
            "routing_nodes",
            "processing_nodes",
            "data_nodes",
            "messages",
            "matches",
        ],
    )
    for n_nodes, n_keys in snapshots:
        for row in sweep.filtered(nodes=n_nodes, keys=n_keys).rows:
            result.rows.append({c: row.get(c) for c in result.columns})
    result.notes.append(f"snapshots at {list(snapshots)} from {sweep.figure}")
    return result
