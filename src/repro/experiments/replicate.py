"""Multi-seed replication of experiments with summary statistics.

A single seeded run regenerates each figure deterministically, but the
paper's claims are about *typical* behaviour.  This module reruns a figure
across independent seeds and aggregates every numeric column into
mean/std/min/max — the error bars a careful reproduction reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments import run_figure
from repro.experiments.runner import FigureResult

__all__ = ["ReplicatedResult", "replicate_figure"]


@dataclass
class ReplicatedResult:
    """Aggregated statistics of one figure across seeds."""

    figure: str
    title: str
    seeds: list[int]
    #: column -> dict(mean/std/min/max) over all rows of all runs
    aggregates: dict[str, dict[str, float]] = field(default_factory=dict)
    #: per-seed totals of each numeric column (for stability checks)
    per_seed_totals: dict[str, list[float]] = field(default_factory=dict)

    def mean(self, column: str) -> float:
        return self.aggregates[column]["mean"]

    def relative_spread(self, column: str) -> float:
        """Std/mean of the per-seed column totals (0 = perfectly stable)."""
        totals = np.asarray(self.per_seed_totals[column], dtype=float)
        m = totals.mean()
        return float(totals.std() / m) if m else 0.0

    def to_text(self) -> str:
        lines = [
            f"{self.figure} over seeds {self.seeds}: {self.title}",
            f"{'column':20s} {'mean':>10s} {'std':>10s} {'min':>10s} {'max':>10s} {'seed-spread':>12s}",
        ]
        for column, agg in self.aggregates.items():
            lines.append(
                f"{column:20s} {agg['mean']:10.2f} {agg['std']:10.2f} "
                f"{agg['min']:10.2f} {agg['max']:10.2f} "
                f"{self.relative_spread(column):12.3f}"
            )
        return "\n".join(lines)


def replicate_figure(
    figure: str,
    seeds: list[int],
    scale: str = "small",
    columns: list[str] | None = None,
) -> ReplicatedResult:
    """Run ``figure`` once per seed and aggregate its numeric columns."""
    if not seeds:
        raise ValueError("at least one seed required")
    runs: list[FigureResult] = [
        run_figure(figure, scale=scale, seed=seed) for seed in seeds
    ]
    numeric = columns if columns is not None else _numeric_columns(runs[0])
    aggregates: dict[str, dict[str, float]] = {}
    per_seed_totals: dict[str, list[float]] = {c: [] for c in numeric}
    values: dict[str, list[float]] = {c: [] for c in numeric}
    for run in runs:
        for column in numeric:
            series = [
                float(v) for v in run.series(column) if isinstance(v, (int, float))
            ]
            values[column].extend(series)
            per_seed_totals[column].append(float(np.sum(series)) if series else 0.0)
    for column in numeric:
        arr = np.asarray(values[column], dtype=float)
        if arr.size == 0:
            continue
        aggregates[column] = {
            "mean": float(arr.mean()),
            "std": float(arr.std()),
            "min": float(arr.min()),
            "max": float(arr.max()),
        }
    return ReplicatedResult(
        figure=figure,
        title=runs[0].title,
        seeds=list(seeds),
        aggregates=aggregates,
        per_seed_totals=per_seed_totals,
    )


def _numeric_columns(result: FigureResult) -> list[str]:
    numeric = []
    for column in result.columns:
        sample = next(
            (row.get(column) for row in result.rows if row.get(column) is not None),
            None,
        )
        if isinstance(sample, (int, float)) and not isinstance(sample, bool):
            numeric.append(column)
    return numeric
