"""Figure 19 — load distribution at nodes under the balancing schemes.

Paper: "The distribution of the keys at nodes (a) when using only the load
balancing at node join technique, (b) when using both the load balancing at
node join technique, and the local load balancing."

Expected shape: the raw (no-LB) distribution is very uneven (Figure 18's
skew lands on uniformly-placed nodes); join-time balancing clearly improves
it; join + runtime balancing is close to even ("the load is almost evenly
distributed in this case").
"""

from __future__ import annotations

from repro.core.loadbalance import grow_with_join_lb, run_neighbor_balancing
from repro.core.system import SquidSystem
from repro.experiments.runner import SCALES, FigureResult
from repro.util.rng import as_generator
from repro.util.stats import coefficient_of_variation, gini_coefficient
from repro.workloads.documents import DocumentWorkload

__all__ = ["run", "VARIANTS"]

VARIANTS = ("none", "join", "join+runtime")


def run(scale: str = "small", seed: int = 19) -> FigureResult:
    """Regenerate fig19 at the given scale preset (see module docstring)."""
    preset = SCALES[scale]
    n_nodes = preset.node_counts[2]
    n_keys = max(preset.key_counts)
    gen = as_generator(seed)
    workload = DocumentWorkload.generate(
        3, n_keys, vocabulary_size=preset.vocabulary_size, rng=gen
    )

    result = FigureResult(
        figure="fig19",
        title="Per-node key load under the load-balancing schemes",
        columns=["variant", "node_rank", "load"],
    )
    for variant in VARIANTS:
        system = _build(variant, workload, n_nodes, seed)
        loads = sorted(system.node_loads().values(), reverse=True)
        for rank, load in enumerate(loads):
            result.add_row(variant=variant, node_rank=rank, load=load)
        result.notes.append(
            f"{variant}: nodes {len(loads)}, max {max(loads)}, "
            f"cov {coefficient_of_variation(loads):.3f}, "
            f"gini {gini_coefficient(loads):.3f}"
        )
    return result


def _build(
    variant: str, workload: DocumentWorkload, n_nodes: int, seed: int
) -> SquidSystem:
    gen = as_generator(seed + VARIANTS.index(variant))
    if variant == "none":
        system = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=gen)
        system.publish_many(workload.keys)
        return system
    bootstrap = max(8, n_nodes // 20)
    system = SquidSystem.create(workload.space, n_nodes=bootstrap, seed=gen)
    system.publish_many(workload.keys)
    grow_with_join_lb(system, n_nodes, samples=6, rng=gen)
    if variant == "join+runtime":
        run_neighbor_balancing(system, rounds=8, threshold=1.3)
    return system
