"""Generate the paper-vs-measured experiment report (EXPERIMENTS.md body).

Runs every reproduced figure at the requested scale, checks the paper's
shape claims programmatically, and emits a markdown report.  Invoked by
``python -m repro report [--scale small|medium|full]``.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.experiments import FIGURES, run_figure
from repro.experiments.runner import FigureResult
from repro.util.stats import coefficient_of_variation

__all__ = ["generate_report", "SHAPE_CHECKS"]


def _check_sweep(result: FigureResult) -> list[tuple[str, bool, str]]:
    """Shape checks shared by the growth-sweep figures."""
    checks = []
    rows = result.rows
    ordering = all(
        r["data_nodes"] <= r["processing_nodes"] <= r["routing_nodes"] for r in rows
    )
    checks.append(("data <= processing <= routing nodes", ordering, ""))
    frac = max(r["processing_nodes"] / r["nodes"] for r in rows)
    checks.append(
        (
            "processing nodes a fraction of the system",
            frac < 0.6,
            f"worst fraction {frac:.2f}",
        )
    )
    by_query: dict[str, list[dict]] = {}
    for r in rows:
        by_query.setdefault(r["query_id"], []).append(r)
    sub = 0
    for q_rows in by_query.values():
        n0, n1 = q_rows[0]["nodes"], q_rows[-1]["nodes"]
        p0, p1 = q_rows[0]["processing_nodes"], q_rows[-1]["processing_nodes"]
        if p0 == 0 or p1 / p0 <= 0.9 * (n1 / n0) + 1:
            sub += 1
    checks.append(
        (
            "processing nodes grow sublinearly in system size",
            sub >= len(by_query) - 1,
            f"{sub}/{len(by_query)} queries sublinear",
        )
    )
    return checks


def _check_snapshot(result: FigureResult) -> list[tuple[str, bool, str]]:
    rows = result.rows
    checks = []
    checks.append(
        (
            "routing >> processing ~= data, all << system size",
            all(
                r["data_nodes"] <= r["processing_nodes"] <= r["routing_nodes"] < r["nodes"]
                for r in rows
            ),
            "",
        )
    )
    ratios = [r["messages"] / max(r["processing_nodes"], 1) for r in rows]
    checks.append(
        (
            "messages ~ 2x processing nodes",
            all(0.8 <= x <= 6 for x in ratios),
            f"ratios {min(ratios):.1f}-{max(ratios):.1f}",
        )
    )
    return checks


def _check_fig18(result: FigureResult) -> list[tuple[str, bool, str]]:
    counts = np.array(result.series("keys"), dtype=float)
    return [
        (
            "key distribution strongly non-uniform",
            counts.max() > 5 * counts.mean(),
            f"peak/mean = {counts.max() / counts.mean():.1f}",
        ),
        (
            "dense and empty index regions coexist",
            bool(np.sum(counts == 0) > 10),
            f"{int(np.sum(counts == 0))} empty of 500 intervals",
        ),
    ]


def _check_fig19(result: FigureResult) -> list[tuple[str, bool, str]]:
    def cov(variant: str) -> float:
        return coefficient_of_variation(
            [r["load"] for r in result.rows if r["variant"] == variant]
        )

    none, join, both = cov("none"), cov("join"), cov("join+runtime")
    return [
        ("join-time LB improves on no LB", join < none, f"CoV {none:.2f} -> {join:.2f}"),
        (
            "join + runtime LB improves further (near even)",
            both < join,
            f"CoV {join:.2f} -> {both:.2f}",
        ),
    ]


def _check_extA(result: FigureResult) -> list[tuple[str, bool, str]]:
    by_degree = {row["degree"]: row for row in result.rows}
    return [
        ("unreplicated crash burst loses data", by_degree[0]["lost"] > 0, ""),
        (
            "any replication degree prevents loss",
            all(by_degree[d]["lost"] == 0 for d in (1, 2, 3)),
            "",
        ),
    ]


def _check_extB(result: FigureResult) -> list[tuple[str, bool, str]]:
    plain = next(r for r in result.rows if r["variant"] == "plain")
    cached = next(r for r in result.rows if r["variant"] == "cached")
    return [
        (
            "caching cuts messages and peak load",
            cached["messages"] < plain["messages"]
            and cached["hottest_node_load"] <= plain["hottest_node_load"],
            f"messages {plain['messages']} -> {cached['messages']}",
        ),
        ("high hit rate on the Zipf stream", cached["hit_rate"] > 0.7, ""),
    ]


def _check_extC(result: FigureResult) -> list[tuple[str, bool, str]]:
    largest = max(r["nodes"] for r in result.rows)
    classic = next(
        r for r in result.rows if r["nodes"] == largest and r["variant"] == "classic"
    )
    pns = next(r for r in result.rows if r["nodes"] == largest and r["variant"] == "pns")
    return [
        (
            "PNS no slower than classic fingers at the largest size",
            pns["mean_completion"] <= classic["mean_completion"] * 1.2,
            f"{classic['mean_completion']} -> {pns['mean_completion']}",
        )
    ]


def _check_extD(result: FigureResult) -> list[tuple[str, bool, str]]:
    return [
        (
            "queries stay exact over survivors at every churn rate",
            all(r["query_exact"] for r in result.rows),
            "",
        ),
        (
            "stabilization reduces stale fingers",
            all(
                next(
                    r2["stale_fingers"]
                    for r2 in result.rows
                    if r2["churn_rate"] == r["churn_rate"] and r2["stabilized"]
                )
                <= r["stale_fingers"]
                for r in result.rows
                if not r["stabilized"]
            ),
            "",
        ),
    ]


def _check_extE(result: FigureResult) -> list[tuple[str, bool, str]]:
    ladder_ok = True
    for fraction in {r["dropper_fraction"] for r in result.rows}:
        rows = {
            r["mitigation"]: r["recall"]
            for r in result.rows
            if r["dropper_fraction"] == fraction
        }
        if not rows["none"] <= rows["retry"] + 1e-9 <= rows["retry+replication"] + 2e-9:
            ladder_ok = False
    return [
        ("mitigation ladder: none <= retry <= retry+replication", ladder_ok, ""),
        (
            "unmitigated attack hurts recall",
            any(
                r["recall"] < 0.9
                for r in result.rows
                if r["dropper_fraction"] >= 0.2 and r["mitigation"] == "none"
            ),
            "",
        ),
    ]


def _check_extF(result: FigureResult) -> list[tuple[str, bool, str]]:
    by_config = {
        (r["fault_rate"], r["mitigation"]): r for r in result.rows
    }
    rates = sorted({r["fault_rate"] for r in result.rows})
    zero_exact = all(
        by_config[(0.0, m)]["recall"] == 1.0
        and by_config[(0.0, m)]["complete_fraction"] == 1.0
        for m in ("none", "retry", "retry+replication")
    )
    mitigated_exact = all(
        by_config[(rate, "retry+replication")]["recall"] == 1.0
        and by_config[(rate, "retry+replication")]["complete_fraction"] == 1.0
        for rate in rates
    )
    unmitigated_hurts = any(
        by_config[(rate, "none")]["recall"] < 0.9
        and by_config[(rate, "none")]["complete_fraction"] < 1.0
        for rate in rates
        if rate >= 0.2
    )
    ladder_ok = all(
        by_config[(rate, "none")]["recall"]
        <= by_config[(rate, "retry")]["recall"] + 1e-9
        <= by_config[(rate, "retry+replication")]["recall"] + 2e-9
        for rate in rates
    )
    return [
        ("zero fault rate: every mitigation exact and complete", zero_exact, ""),
        (
            "retry+replication: recall 1.0 and complete at every fault rate",
            mitigated_exact,
            "",
        ),
        (
            "unmitigated faults lose recall and completeness",
            unmitigated_hurts,
            "",
        ),
        ("mitigation ladder: none <= retry <= retry+replication", ladder_ok, ""),
    ]


def _check_extG(result: FigureResult) -> list[tuple[str, bool, str]]:
    def rate(skew: float, mix: float, ttl) -> float:
        return next(
            r["hit_rate"]
            for r in result.rows
            if r["skew"] == skew and r["publish_mix"] == mix and r["ttl"] == ttl
        )

    skews = sorted({r["skew"] for r in result.rows})
    mixes = sorted({r["publish_mix"] for r in result.rows})
    ttls = {r["ttl"] for r in result.rows}
    finite_ttl = next(t for t in ttls if t is not None)
    base = [rate(s, mixes[0], None) for s in skews]
    skew_helps = all(a <= b + 1e-9 for a, b in zip(base, base[1:])) and (
        base[-1] > base[0] + 0.1
    )
    updates_hurt = all(
        rate(s, mixes[-1], None) <= rate(s, mixes[0], None) + 0.02 for s in skews
    )
    ttl_costs = all(
        rate(s, m, finite_ttl) <= rate(s, m, None) + 0.02
        for s in skews
        for m in mixes
    )
    return [
        (
            "hit rate grows with query skew",
            skew_helps,
            f"{base[0]:.2f} -> {base[-1]:.2f}",
        ),
        ("publish mix costs hit rate (invalidation)", updates_hurt, ""),
        ("finite TTL never beats no-TTL", ttl_costs, ""),
        (
            "zero stale results across the whole grid",
            all(r["stale"] == 0 for r in result.rows),
            "",
        ),
    ]


def _check_extH(result: FigureResult) -> list[tuple[str, bool, str]]:
    curves = sorted({r["curve"] for r in result.rows})
    classes = sorted({r["query_class"] for r in result.rows})
    by = {(r["curve"], r["query_class"]): r for r in result.rows}
    families_ok = curves == ["gray", "hilbert", "onion", "zorder"] and all(
        (c, q) in by for c in curves for q in classes
    )
    matches_identical = all(
        len({by[(c, q)]["matches"] for c in curves}) == 1 for q in classes
    )
    cluster_ladder = all(
        by[("hilbert", q)]["mean_clusters"]
        <= by[("onion", q)]["mean_clusters"] + 1e-9
        <= by[("zorder", q)]["mean_clusters"] + 2e-9
        for q in classes
    )
    one_selected = all(
        sum(1 for c in curves if by[(c, q)]["selected"]) == 1 for q in classes
    )
    def _selected(q: str) -> str:
        return next(c for c in curves if by[(c, q)]["selected"])

    selected_cheapest = all(
        by[(_selected(q), q)]["mean_clusters"]
        <= min(by[(c, q)]["mean_clusters"] for c in curves) * 1.01 + 1e-9
        for q in classes
    )
    return [
        ("all four curve families reported per query class", families_ok, ""),
        (
            "match counts identical across curves (mapping is cost-only)",
            matches_identical,
            "",
        ),
        (
            "cluster ladder hilbert <= onion <= zorder in every class",
            cluster_ladder,
            "",
        ),
        ("exactly one adaptively selected family per class", one_selected, ""),
        (
            "selector picks the cluster-cheapest family",
            selected_cheapest,
            "",
        ),
    ]


SHAPE_CHECKS: dict[str, Callable[[FigureResult], list[tuple[str, bool, str]]]] = {
    "fig09": _check_sweep,
    "fig10": _check_snapshot,
    "fig11": _check_sweep,
    "fig12": _check_sweep,
    "fig13": _check_snapshot,
    "fig14": _check_sweep,
    "fig15": _check_sweep,
    "fig16": _check_snapshot,
    "fig17": _check_sweep,
    "fig18": _check_fig18,
    "fig19": _check_fig19,
    "extA": _check_extA,
    "extB": _check_extB,
    "extC": _check_extC,
    "extD": _check_extD,
    "extE": _check_extE,
    "extF": _check_extF,
    "extG": _check_extG,
    "extH": _check_extH,
}

_PAPER_CLAIMS = {
    "extA": "Future work (fault tolerance): replication prevents crash data loss.",
    "extB": "Future work (hot-spots): result caching absorbs repeated queries.",
    "extC": "Future work (geographic locality): PNS cuts query latency.",
    "extD": "Future work quantified (dynamism): exactness survives churn.",
    "extE": "Future work (attacks): retry + replication restore recall.",
    "extF": "Robustness: retry + replication keep queries exact and complete "
    "under injected message faults; unmitigated faults are reported honestly.",
    "extG": "Perf: an initiator-side result cache absorbs skewed query streams "
    "without ever serving a stale answer (interval invalidation + TTL).",
    "extH": "§3.2 generalized: the curve mapping determines clustering and "
    "hence message cost per query class; answers never depend on it, and the "
    "adaptive selector picks the cheapest family for a sampled workload.",
    "fig09": "Q1 2D: processing/data nodes are a small, sublinearly growing "
    "fraction of the system; data tracks processing; cost not monotone in matches.",
    "fig10": "All metrics 2D: routing >> processing ~= data; messages ~ 2x processing.",
    "fig11": "Q2 2D: significantly cheaper than Q1 (pruning works with 2 keywords).",
    "fig12": "Q1 3D: same pattern as 2D, magnitude 2-3x larger.",
    "fig13": "All metrics 3D: same shape as fig10, larger magnitude.",
    "fig14": "Q2 3D: cheaper than Q1 3D.",
    "fig15": "(keyword, range, *): cost tracks matches/data distribution, not range width.",
    "fig16": "All metrics, range queries: same shape as fig10/13.",
    "fig17": "(range, range, range): as fig15 with all dimensions ranged.",
    "fig18": "Raw key distribution over the index space is highly skewed.",
    "fig19": "Join-time LB clearly helps; join + runtime LB nearly even.",
}


def generate_report(
    scale: str = "small",
    figures: list[str] | None = None,
    profile: bool = False,
) -> str:
    """Run the selected figures and return the markdown report.

    With ``profile=True`` the hot SFC/engine phases are timed while the
    figures run (see :mod:`repro.obs.profile`) and a closing "Profile"
    section reports per-phase call counts and wall time.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs import profile as obs_profile

    names = figures if figures is not None else sorted(FIGURES)
    lines = [
        f"# Experiment report (scale = {scale})",
        "",
        "Generated by `python -m repro report`. For each reproduced figure:",
        "the paper's claim, the measured table, and automated shape checks.",
        "",
    ]
    profiler = obs_profile.enable_profiling() if profile else None
    with obs_metrics.collecting() as registry:
        for name in names:
            start = time.time()
            result = run_figure(name, scale=scale)
            elapsed = time.time() - start
            lines.append(f"## {name} — {result.title}")
            lines.append("")
            lines.append(f"*Paper:* {_PAPER_CLAIMS.get(name, '-')}")
            lines.append("")
            checks = SHAPE_CHECKS[name](result)
            for label, ok, detail in checks:
                mark = "PASS" if ok else "FAIL"
                suffix = f" ({detail})" if detail else ""
                lines.append(f"- [{mark}] {label}{suffix}")
            lines.append("")
            if name in ("fig18", "fig19"):
                for note in result.notes:
                    lines.append(f"    {note}")
            else:
                lines.append("```")
                lines.append(_condensed_table(result))
                lines.append("```")
            lines.append("")
            lines.append(f"_(ran in {elapsed:.1f}s)_")
            lines.append("")
        counters = registry.snapshot()["counters"]
    lines.append("## Cache hit rates")
    lines.append("")
    lines.append(
        "Plan- and result-cache effectiveness across every figure above "
        "(process-wide counters; see `docs/performance.md`)."
    )
    lines.append("")
    for label, prefix in (("plan cache", "plan_cache"), ("result cache", "result_cache")):
        hits = counters.get(f"{prefix}.hits", 0)
        lookups = hits + counters.get(f"{prefix}.misses", 0)
        if lookups == 0:
            lines.append(f"- {label}: off / no lookups")
        else:
            lines.append(
                f"- {label}: {hits}/{lookups} lookups hit "
                f"({hits / lookups:.1%})"
            )
    saved = counters.get("result_cache.messages_saved", 0)
    if saved:
        lines.append(f"- result cache messages saved: {saved}")
    lines.append("")
    if profiler is not None:
        obs_profile.disable_profiling()
        lines.append("## Profile")
        lines.append("")
        lines.append("```")
        lines.append(profiler.to_text())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def _condensed_table(result: FigureResult) -> str:
    """The figure's table, trimmed to the most informative rows."""
    rows = result.rows
    if "nodes" in result.columns and len({r.get("nodes") for r in rows}) > 2:
        largest = max(r["nodes"] for r in rows)
        shown = result.filtered(nodes=largest)
        shown.notes = [f"largest system size only ({largest} nodes)"]
        return shown.to_text()
    return result.to_text()
