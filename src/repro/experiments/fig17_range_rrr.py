"""Figure 17 — range queries of the form (range, range, range), 3-D.

Paper: matches, processing nodes, and data nodes for five all-range
queries.  Expected: cost tracks the number of matches and the data
distribution rather than the range widths.
"""

from __future__ import annotations

from repro.experiments.runner import SCALES, FigureResult
from repro.experiments.sweeps import resource_growth_sweep
from repro.workloads.queries import q3_full_range_queries

__all__ = ["run"]


def run(scale: str = "small", seed: int = 17) -> FigureResult:
    """Regenerate fig17 at the given scale preset (see module docstring)."""
    preset = SCALES[scale]
    return resource_growth_sweep(
        figure="fig17",
        title="Q3 (range, range, range) queries over grid resources",
        scale=preset,
        make_queries=lambda wl: q3_full_range_queries(wl, count=5, rng=seed + 1),
        seed=seed,
    )
