"""Figure 12 — query type Q1, 3-D keyword space.

Same experiment as Figure 9 with a 3-D keyword space.  Expected shape: the
same pattern as 2-D with magnitudes 2–3× larger — "for the same types of
queries there are more clusters in the 3D case than in the 2D case" (a
longer curve fragments a fixed-keyword query into more segments).
"""

from __future__ import annotations

from repro.experiments.runner import SCALES, FigureResult
from repro.experiments.sweeps import document_growth_sweep
from repro.workloads.queries import q1_queries

__all__ = ["run"]


def run(scale: str = "small", seed: int = 12) -> FigureResult:
    """Regenerate fig12 at the given scale preset (see module docstring)."""
    preset = SCALES[scale]
    return document_growth_sweep(
        figure="fig12",
        title="Q1 queries, 3-D keyword space (matches / processing / data nodes)",
        dims=3,
        scale=preset,
        make_queries=lambda wl: q1_queries(wl, count=6, rng=seed + 1),
        seed=seed,
    )
