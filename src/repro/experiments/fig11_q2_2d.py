"""Figure 11 — query type Q2, 2-D keyword space.

Paper: "Results for query type Q2, 2D: (a) the number of matches for the
queries, (b) the number of data nodes", for five queries specifying both
keywords (at least one partial).

Expected shape: significantly cheaper than Q1 (Figure 9) — "query
optimization and pruning are effective when both keywords are at least
partially known".
"""

from __future__ import annotations

from repro.experiments.runner import SCALES, FigureResult
from repro.experiments.sweeps import document_growth_sweep
from repro.workloads.queries import q2_queries

__all__ = ["run"]


def run(scale: str = "small", seed: int = 11) -> FigureResult:
    """Regenerate fig11 at the given scale preset (see module docstring)."""
    preset = SCALES[scale]
    return document_growth_sweep(
        figure="fig11",
        title="Q2 queries, 2-D keyword space (matches / data nodes)",
        dims=2,
        scale=preset,
        make_queries=lambda wl: q2_queries(wl, count=5, rng=seed + 1),
        seed=seed,
    )
