"""Figure 15 — range queries of the form (keyword, range, *), 3-D.

Paper: "Results for query type Q3 (range query), of the form: (keyword,
range, *): the number of matches, processing nodes, data nodes" for four
queries over the grid-resource attribute space.

Expected shape: "the results do not depend on the size of the range
(because the index space is not uniformly populated), but more on the
number of matches found and the distribution of the data."
"""

from __future__ import annotations

from repro.experiments.runner import SCALES, FigureResult
from repro.experiments.sweeps import resource_growth_sweep
from repro.workloads.queries import q3_keyword_range_queries

__all__ = ["run"]


def run(scale: str = "small", seed: int = 15) -> FigureResult:
    """Regenerate fig15 at the given scale preset (see module docstring)."""
    preset = SCALES[scale]
    return resource_growth_sweep(
        figure="fig15",
        title="Q3 (keyword, range, *) queries over grid resources",
        scale=preset,
        make_queries=lambda wl: q3_keyword_range_queries(wl, count=4, rng=seed + 1),
        seed=seed,
    )
