"""Figure 18 — distribution of keys over the index space.

Paper: "The distribution of the keys in the index space. The index space
was partitioned into 500 intervals. The Y-axis represents the number of
keys per interval."

Expected shape: strongly non-uniform — the SFC preserves keyword locality,
so Zipf-skewed, lexicographically clustered keywords produce dense and
empty regions of the curve.  This is the motivation for §3.5's load
balancing.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_document_system
from repro.experiments.runner import SCALES, FigureResult
from repro.util.stats import gini_coefficient

__all__ = ["run", "INTERVALS"]

INTERVALS = 500


def run(scale: str = "small", seed: int = 18) -> FigureResult:
    """Regenerate fig18 at the given scale preset (see module docstring)."""
    preset = SCALES[scale]
    n_keys = max(preset.key_counts)
    # Node count is irrelevant to the index-space histogram; a small ring
    # merely hosts the keys.
    built = build_document_system(
        dims=3,
        n_nodes=min(preset.node_counts),
        n_keys=n_keys,
        vocabulary_size=preset.vocabulary_size,
        seed=seed,
        join_lb=False,
    )
    counts = built.system.key_index_distribution(intervals=INTERVALS)
    result = FigureResult(
        figure="fig18",
        title=f"Key distribution over {INTERVALS} index-space intervals",
        columns=["interval", "keys"],
    )
    for i, count in enumerate(counts):
        result.add_row(interval=i, keys=int(count))
    gini = gini_coefficient(counts.astype(float))
    empty = int(np.sum(counts == 0))
    result.notes.append(
        f"total keys {int(counts.sum())}, peak interval {int(counts.max())}, "
        f"{empty} empty intervals, gini {gini:.3f}"
    )
    return result
