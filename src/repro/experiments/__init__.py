"""Reproduction of the paper's evaluation section (Figures 9-19).

Each figure module exposes ``run(scale, seed) -> FigureResult``; the
registry below maps figure identifiers to those runners.  ``scale`` is one
of ``"small"``, ``"medium"``, ``"full"`` (see
:data:`repro.experiments.runner.SCALES`); ``"full"`` uses the paper's
system sizes.
"""

from repro.experiments import (
    fig09_q1_2d,
    fig10_metrics_2d,
    fig11_q2_2d,
    fig12_q1_3d,
    fig13_metrics_3d,
    fig14_q2_3d,
    fig15_range_kr,
    fig16_metrics_range,
    fig17_range_rrr,
    fig18_key_distribution,
    fig19_load_balance,
)
from repro.experiments.extensions import EXTENSIONS
from repro.experiments.runner import SCALES, FigureResult, ScalePreset

FIGURES = {
    "fig09": fig09_q1_2d.run,
    "fig10": fig10_metrics_2d.run,
    "fig11": fig11_q2_2d.run,
    "fig12": fig12_q1_3d.run,
    "fig13": fig13_metrics_3d.run,
    "fig14": fig14_q2_3d.run,
    "fig15": fig15_range_kr.run,
    "fig16": fig16_metrics_range.run,
    "fig17": fig17_range_rrr.run,
    "fig18": fig18_key_distribution.run,
    "fig19": fig19_load_balance.run,
}

__all__ = [
    "FIGURES",
    "EXTENSIONS",
    "SCALES",
    "FigureResult",
    "ScalePreset",
    "run_figure",
]


def run_figure(figure: str, scale: str = "small", **kwargs) -> FigureResult:
    """Run one reproduced figure (``"fig09"``..) or extension (``"extA"``..)."""
    runner = FIGURES.get(figure) or EXTENSIONS.get(figure)
    if runner is None:
        raise KeyError(
            f"unknown figure {figure!r}; choose from "
            f"{sorted(FIGURES) + sorted(EXTENSIONS)}"
        )
    return runner(scale=scale, **kwargs)
