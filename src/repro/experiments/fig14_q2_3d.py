"""Figure 14 — query type Q2, 3-D keyword space.

Paper: matches, processing nodes, and data nodes for five multi-keyword
queries.  Expected: the Q2-beats-Q1 pruning effect of Figure 11, in 3-D.
"""

from __future__ import annotations

from repro.experiments.runner import SCALES, FigureResult
from repro.experiments.sweeps import document_growth_sweep
from repro.workloads.queries import q2_queries

__all__ = ["run"]


def run(scale: str = "small", seed: int = 14) -> FigureResult:
    """Regenerate fig14 at the given scale preset (see module docstring)."""
    preset = SCALES[scale]
    return document_growth_sweep(
        figure="fig14",
        title="Q2 queries, 3-D keyword space (matches / processing / data nodes)",
        dims=3,
        scale=preset,
        make_queries=lambda wl: q2_queries(wl, count=5, rng=seed + 1),
        seed=seed,
    )
