"""Extension experiments — quantifying the paper's §5 future-work features.

These go beyond the paper's Figures 9-19; each produces a
:class:`~repro.experiments.runner.FigureResult` like the paper figures and
is runnable via ``python -m repro run extA|extB|extC``.

* ``extA`` — replication: elements lost in a crash burst vs replication
  degree (fault tolerance).
* ``extB`` — hot-spots: hottest-node load and total messages for a Zipf
  query stream, with and without result caching.
* ``extC`` — geographic locality: query completion time on a classic vs
  proximity-selected (PNS) ring across system sizes.
* ``extD`` — dynamism: query cost and routing-state staleness under node
  churn, with and without the paper's periodic stabilization.
* ``extE`` — attack resistance: recall under query-dropping adversaries,
  plain vs retry vs retry+replication.
* ``extF`` — resilience: recall, completeness, and message cost under a
  seeded fault plane (message drops) at increasing fault rates, none vs
  retry vs retry+replication.
* ``extG`` — result caching: hit rate, messages saved, and staleness of
  the initiator-side :class:`~repro.core.resultcache.ResultCache` across
  query skew x publish mix x TTL (every cached answer is checked against
  a brute-force scan — the stale column must stay 0).
* ``extH`` — curve-family ablation: cluster count and end-to-end message
  cost per query class (Q1/Q2/Q3) for every registered curve family
  (hilbert, gray, zorder, onion), with the workload-adaptive selector's
  choice marked per workload.  Match counts must be identical across
  curves — the mapping is a cost knob, never a correctness knob.
"""

from __future__ import annotations

import numpy as np

from repro.core.hotspots import CachingQueryLayer, HotspotMonitor
from repro.core.replication import ReplicationManager
from repro.core.engine import OptimizedEngine
from repro.core.system import SquidSystem
from repro.experiments.runner import SCALES, FigureResult
from repro.overlay.proximity import LatencyModel, ProximityChordRing
from repro.util.rng import as_generator
from repro.workloads.documents import DocumentWorkload
from repro.workloads.queries import q1_queries

__all__ = [
    "run_replication",
    "run_hotspots",
    "run_response_time",
    "run_result_cache",
    "run_curve_ablation",
    "EXTENSIONS",
]


def run_replication(scale: str = "small", seed: int = 30) -> FigureResult:
    """Elements lost in a 15% crash burst, by replication degree."""
    preset = SCALES[scale]
    n_nodes = preset.node_counts[1]
    n_keys = preset.key_counts[1]
    gen = as_generator(seed)
    workload = DocumentWorkload.generate(
        2, n_keys, vocabulary_size=preset.vocabulary_size, rng=gen
    )
    result = FigureResult(
        figure="extA",
        title="Crash-burst data loss vs replication degree (15% of peers crash)",
        columns=["degree", "elements", "lost", "recovered", "replica_overhead"],
    )
    for degree in (0, 1, 2, 3):
        system = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=seed + 1)
        system.publish_many(workload.keys)
        total = system.total_elements()
        manager = ReplicationManager(system, degree=degree) if degree else None
        rng = np.random.default_rng(seed + 2)
        victims = rng.choice(
            system.overlay.node_ids(), size=max(1, int(0.15 * n_nodes)), replace=False
        )
        recovered = 0
        for victim in victims:
            if manager is None:
                system.fail_node(int(victim))
            else:
                successor = system.overlay.successor_id(int(victim))
                recovered += manager.crash(int(victim))
                manager.repair_around(successor)
        result.add_row(
            degree=degree,
            elements=total,
            lost=total - system.total_elements(),
            recovered=recovered,
            replica_overhead=manager.replica_count() if manager else 0,
        )
    result.notes.append("degree 0 = the paper's base system (crashes lose keys)")
    return result


def run_hotspots(scale: str = "small", seed: int = 31) -> FigureResult:
    """Zipf query stream: load and messages with/without result caching."""
    preset = SCALES[scale]
    n_nodes = preset.node_counts[1]
    n_keys = preset.key_counts[1]
    gen = as_generator(seed)
    workload = DocumentWorkload.generate(
        2, n_keys, vocabulary_size=preset.vocabulary_size, rng=gen
    )
    system = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=seed + 1)
    system.publish_many(workload.keys)
    base_queries = [str(q) for q in q1_queries(workload, count=8, rng=seed + 2)]
    rng = np.random.default_rng(seed + 3)
    weights = np.array([1 / (i + 1) for i in range(len(base_queries))])
    weights /= weights.sum()
    stream = [
        base_queries[i] for i in rng.choice(len(base_queries), size=120, p=weights)
    ]

    plain_monitor = HotspotMonitor()
    plain_msgs = 0
    for q in stream:
        res = system.query(q, rng=seed + 4)
        plain_monitor.record(res.stats)
        plain_msgs += res.stats.messages

    layer = CachingQueryLayer(system)
    cached_msgs = 0
    for q in stream:
        cached_msgs += layer.query(q, rng=seed + 4).stats.messages

    result = FigureResult(
        figure="extB",
        title="Hot-spot mitigation: Zipf query stream with result caching",
        columns=["variant", "messages", "hottest_node_load", "hit_rate"],
    )
    result.add_row(
        variant="plain",
        messages=plain_msgs,
        hottest_node_load=plain_monitor.max_load(),
        hit_rate=0.0,
    )
    result.add_row(
        variant="cached",
        messages=cached_msgs,
        hottest_node_load=layer.monitor.max_load(),
        hit_rate=round(layer.stats.hit_rate, 3),
    )
    result.notes.append(f"{len(stream)}-query stream over {len(base_queries)} Zipf-ranked queries")
    return result


def run_response_time(scale: str = "small", seed: int = 32) -> FigureResult:
    """Query completion time: classic Chord fingers vs PNS, across sizes."""
    preset = SCALES[scale]
    gen = as_generator(seed)
    workload = DocumentWorkload.generate(
        2,
        preset.key_counts[1],
        vocabulary_size=preset.vocabulary_size,
        rng=gen,
    )
    queries = q1_queries(workload, count=4, rng=seed + 1)
    result = FigureResult(
        figure="extC",
        title="Query completion time (latency units): classic vs PNS fingers",
        columns=["nodes", "variant", "mean_completion", "mean_first_match"],
    )
    for n_nodes in preset.node_counts[:3]:
        base = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=seed + 2)
        ids = base.overlay.node_ids()
        model = LatencyModel.random(ids, rng=seed + 3)
        pns_ring = ProximityChordRing.build_with_model(
            base.overlay.bits, ids, model=model, candidates=8
        )
        pns = SquidSystem(workload.space, pns_ring, curve=base.curve)
        base.publish_many(workload.keys)
        pns.publish_many(workload.keys)
        for variant, system in (("classic", base), ("pns", pns)):
            engine = OptimizedEngine(latency_model=model)
            completions, firsts = [], []
            for q in queries:
                stats = system.query(q, engine=engine, origin=ids[0], rng=0).stats
                completions.append(stats.completion_time)
                if stats.time_to_first_match is not None:
                    firsts.append(stats.time_to_first_match)
            result.add_row(
                nodes=n_nodes,
                variant=variant,
                mean_completion=round(float(np.mean(completions)), 1),
                mean_first_match=round(float(np.mean(firsts)), 1) if firsts else None,
            )
    result.notes.append("latency model: uniform-random peer coordinates on a 100x100 plane")
    return result


def run_churn(scale: str = "small", seed: int = 33) -> FigureResult:
    """Query exactness and routing staleness under churn (paper §3.2).

    Runs Poisson join/leave/crash churn on the discrete-event simulator at
    increasing rates, with and without periodic stabilization, measuring
    stale-finger fraction and live query behaviour over surviving data.
    """
    from repro.sim import ChurnConfig, ChurnProcess, Simulator, StabilizationProcess

    preset = SCALES[scale]
    n_nodes = preset.node_counts[0]
    n_keys = preset.key_counts[0]
    gen = as_generator(seed)
    workload = DocumentWorkload.generate(
        2, n_keys, vocabulary_size=preset.vocabulary_size, rng=gen
    )
    query = f"({workload.keys[0][0][:3]}*, *)"

    result = FigureResult(
        figure="extD",
        title="Churn: stale routing state and query exactness over survivors",
        columns=[
            "churn_rate",
            "stabilized",
            "stale_fingers",
            "query_exact",
            "query_messages",
            "peers",
        ],
    )
    for churn_rate in (0.5, 2.0, 5.0):
        for stabilized in (False, True):
            system = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=seed + 1)
            system.publish_many(workload.keys)
            sim = Simulator()
            ChurnProcess(
                sim,
                system,
                ChurnConfig(
                    join_rate=churn_rate,
                    leave_rate=churn_rate / 2,
                    crash_rate=churn_rate / 2,
                    min_nodes=max(8, n_nodes // 3),
                ),
                rng=seed + 2,
            )
            if stabilized:
                StabilizationProcess(sim, system, interval=1.0, rng=seed + 3)
            sim.run_until(20.0)
            res = system.query(query, rng=seed + 4)
            want = len(system.brute_force_matches(query))
            result.add_row(
                churn_rate=churn_rate,
                stabilized=stabilized,
                stale_fingers=round(system.overlay.stale_finger_fraction(), 4),
                query_exact=res.match_count == want,
                query_messages=res.stats.messages,
                peers=len(system.overlay),
            )
    result.notes.append(
        "churn = Poisson joins at rate r, leaves and crashes at r/2, for 20 time units"
    )
    return result


def run_attack(scale: str = "small", seed: int = 34) -> FigureResult:
    """Recall under query-dropping adversaries (paper §5, attacks)."""
    from repro.core.adversary import run_attack_experiment
    from repro.workloads.queries import q1_queries as make_q1

    preset = SCALES[scale]
    n_nodes = preset.node_counts[0]
    n_keys = preset.key_counts[0]
    gen = as_generator(seed)
    workload = DocumentWorkload.generate(
        2, n_keys, vocabulary_size=preset.vocabulary_size, rng=gen
    )
    queries = [str(q) for q in make_q1(workload, count=4, rng=seed + 1)]
    result = FigureResult(
        figure="extE",
        title="Recall under query-dropping adversaries",
        columns=["dropper_fraction", "mitigation", "recall", "messages"],
    )
    for fraction in (0.0, 0.1, 0.2, 0.3):
        for label, retry, degree in (
            ("none", False, 0),
            ("retry", True, 0),
            ("retry+replication", True, 2),
        ):
            system = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=seed + 2)
            system.publish_many(workload.keys)
            measured = run_attack_experiment(
                system,
                queries,
                dropper_fraction=fraction,
                retry=retry,
                replication_degree=degree,
                rng=seed + 3,
            )
            result.add_row(
                dropper_fraction=fraction,
                mitigation=label,
                recall=round(measured["recall"], 3),
                messages=round(measured["messages"], 1),
            )
    result.notes.append(
        "droppers accept sub-queries and discard them; origins are honest"
    )
    return result


def run_faults(scale: str = "small", seed: int = 35) -> FigureResult:
    """Recall and message cost vs. message-fault rate (resilient execution).

    Pushes every dispatched message of the optimized engine through a
    seeded :class:`~repro.faults.FaultPlane` that drops messages at the
    given rate, and ladders the mitigations: ``none`` (faults silently
    lose branches — ``QueryResult.complete`` turns False and the unreached
    curve segments are reported), ``retry`` (timeouts, exponential backoff,
    successor failover), and ``retry+replication`` (failover targets serve
    the unreachable peer's share from replica stores — full recall and
    ``complete=True`` even at high fault rates).
    """
    from repro.faults import FaultConfig, FaultPlane, RetryPolicy
    from repro.workloads.queries import q1_queries as make_q1

    preset = SCALES[scale]
    n_nodes = preset.node_counts[0]
    n_keys = preset.key_counts[0]
    gen = as_generator(seed)
    workload = DocumentWorkload.generate(
        2, n_keys, vocabulary_size=preset.vocabulary_size, rng=gen
    )
    queries = [str(q) for q in make_q1(workload, count=4, rng=seed + 1)]
    result = FigureResult(
        figure="extF",
        title="Resilient execution: recall and cost vs message-fault rate",
        columns=[
            "fault_rate",
            "mitigation",
            "recall",
            "complete_fraction",
            "messages",
            "retries",
            "failovers",
            "lost_branches",
        ],
    )
    for rate in (0.0, 0.1, 0.2, 0.3):
        for label, retry, degree in (
            ("none", False, 0),
            ("retry", True, 0),
            ("retry+replication", True, 2),
        ):
            system = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=seed + 2)
            system.publish_many(workload.keys)
            manager = ReplicationManager(system, degree=degree) if degree else None
            plane = FaultPlane(FaultConfig(drop_rate=rate, seed=seed + 3))
            engine = OptimizedEngine(
                fault_plane=plane,
                retry=RetryPolicy() if retry else None,
                replication=manager,
            )
            query_gen = as_generator(seed + 4)
            ids = system.overlay.node_ids()
            recalls, completes, messages = [], [], []
            retries = failovers = lost = 0
            for query in queries:
                want = {id(e) for e in system.brute_force_matches(query)}
                origin = ids[int(query_gen.integers(0, len(ids)))]
                res = engine.execute(system, query, origin=origin, rng=query_gen)
                got = {id(e) for e in res.matches}
                recalls.append(len(got & want) / len(want) if want else 1.0)
                completes.append(res.complete)
                messages.append(res.stats.messages)
                retries += res.stats.retries
                failovers += res.stats.failovers
                lost += res.stats.lost_branches
            result.add_row(
                fault_rate=rate,
                mitigation=label,
                recall=round(float(np.mean(recalls)), 3),
                complete_fraction=round(sum(completes) / len(completes), 3),
                messages=round(float(np.mean(messages)), 1),
                retries=retries,
                failovers=failovers,
                lost_branches=lost,
            )
    result.notes.append(
        "drops are seeded and per message; retry = backoff + successor failover"
    )
    return result


def run_result_cache(scale: str = "small", seed: int = 36) -> FigureResult:
    """Result-cache hit rate and staleness: skew x publish mix x TTL sweep.

    Replays synthetic traces (:func:`~repro.workloads.trace.synthetic_trace`)
    against a system with an initiator-side
    :class:`~repro.core.resultcache.ResultCache` driven by a logical-tick
    clock (one tick per trace operation), so TTL expiry is deterministic.
    The cache is kept smaller than the query pool so popularity skew — not
    mere pool exhaustion — determines the hit rate.  Every cache *hit* is
    verified against :meth:`~repro.core.system.SquidSystem.brute_force_matches`
    over the live stores; a disagreement is a stale result, and the
    ``stale`` column must stay 0 across the whole grid.
    """
    from repro.core.resultcache import ResultCache
    from repro.workloads.queries import q1_queries as make_q1
    from repro.workloads.trace import synthetic_trace

    preset = SCALES[scale]
    n_nodes = preset.node_counts[0]
    n_keys = max(200, preset.key_counts[0] // 4)
    n_ops = 240
    pool_size = 64
    capacity = 8
    gen = as_generator(seed)
    workload = DocumentWorkload.generate(
        2, n_keys, vocabulary_size=preset.vocabulary_size, rng=gen
    )
    queries = make_q1(workload, count=pool_size, rng=seed + 1)
    publish_keys = [
        workload.keys[i]
        for i in as_generator(seed + 2).choice(len(workload.keys), size=48, replace=False)
    ]
    result = FigureResult(
        figure="extG",
        title="Result cache: hit rate and staleness vs skew, update mix, TTL",
        columns=[
            "skew",
            "publish_mix",
            "ttl",
            "hit_rate",
            "invalidations",
            "expirations",
            "messages_saved",
            "stale",
        ],
    )
    for skew_pos, skew in enumerate((0.0, 0.6, 1.2)):
        for mix_pos, mix in enumerate((0.0, 0.10)):
            # The trace is fixed per (skew, mix) cell so the TTL variants
            # replay identical operation sequences.
            trace = synthetic_trace(
                queries,
                n_ops,
                zipf_exponent=skew,
                burstiness=0.1,
                publish_mix=mix,
                publish_keys=publish_keys if mix else None,
                rng=np.random.default_rng(seed * 100 + skew_pos * 10 + mix_pos),
            )
            for ttl in (None, 40):
                ticks = [0]
                cache = ResultCache(
                    capacity=capacity, ttl=ttl, clock=lambda t=ticks: t[0]
                )
                system = SquidSystem.create(
                    workload.space,
                    n_nodes=n_nodes,
                    seed=seed + 3,
                    result_cache=cache,
                )
                system.publish_many(workload.keys)
                origin_rng = as_generator(seed + 4)
                stale = 0
                for op in trace:
                    ticks[0] += 1
                    if op.kind == "publish":
                        system.publish(op.key, payload=op.payload)
                        continue
                    res = system.query(op.query, rng=origin_rng)
                    if res.stats.result_cache_hit:
                        want = sorted(
                            (e.key, str(e.payload))
                            for e in system.brute_force_matches(op.query)
                        )
                        got = sorted((e.key, str(e.payload)) for e in res.matches)
                        if got != want:
                            stale += 1  # pragma: no cover - stale guard
                result.add_row(
                    skew=skew,
                    publish_mix=mix,
                    ttl=ttl,
                    hit_rate=round(cache.hit_rate, 3),
                    invalidations=cache.invalidations,
                    expirations=cache.expirations,
                    messages_saved=cache.messages_saved,
                    stale=stale,
                )
    result.notes.append(
        f"{n_ops}-op traces over a {pool_size}-query pool, cache capacity "
        f"{capacity}; TTL in logical ticks (1 tick per operation)"
    )
    return result


def run_curve_ablation(scale: str = "small", seed: int = 37) -> FigureResult:
    """Cluster count and message cost per query class, per curve family.

    The paper fixes the Hilbert curve; this ablation measures what that
    choice buys.  Two workloads cover the paper's three query classes:
    a document workload (Q1 single partial keyword, Q2 two keywords) and a
    grid-resource workload (Q3 all-range queries).  For every registered
    curve family the same seeded system is built, the same queries run, and
    the row reports the mean cluster count of the query regions (the
    message-cost driver: one cluster → one routed curve segment) alongside
    the measured end-to-end messages and processing nodes.  The
    ``selected`` column marks the family the workload-adaptive selector
    (:func:`repro.sfc.select_curve`) picks from the class's query regions.
    """
    from repro.sfc import CURVES, select_curve
    from repro.sfc.analysis import cluster_stats
    from repro.workloads.queries import (
        q1_queries,
        q2_queries,
        q3_full_range_queries,
    )
    from repro.workloads.resources import ResourceWorkload

    preset = SCALES[scale]
    n_nodes = preset.node_counts[0]
    n_keys = preset.key_counts[0]
    doc = DocumentWorkload.generate(
        2, n_keys, vocabulary_size=preset.vocabulary_size, rng=seed
    )
    res = ResourceWorkload.generate(n_keys, bits=10, rng=seed + 1)
    classes = [
        ("Q1", doc, [str(q) for q in q1_queries(doc, count=6, rng=seed + 2)]),
        ("Q2", doc, [str(q) for q in q2_queries(doc, count=5, rng=seed + 3)]),
        ("Q3", res, [str(q) for q in q3_full_range_queries(res, count=5, rng=seed + 4)]),
    ]

    # Adaptive selection per workload: the sample is exactly the query
    # regions the classes will run.
    selections: dict[int, str] = {}
    for workload in (doc, res):
        regions = [
            workload.space.region(q)
            for label, wl, queries in classes
            if wl is workload
            for q in queries
        ]
        choice = select_curve(regions, workload.space.dims, workload.space.bits)
        selections[id(workload)] = choice.name

    result = FigureResult(
        figure="extH",
        title="Curve ablation: clusters and message cost per query class",
        columns=[
            "curve",
            "query_class",
            "mean_clusters",
            "messages",
            "processing_nodes",
            "matches",
            "selected",
        ],
    )
    for name in sorted(CURVES):
        systems = {
            id(doc): SquidSystem.create(doc.space, n_nodes=n_nodes, curve=name, seed=seed + 5),
            id(res): SquidSystem.create(res.space, n_nodes=n_nodes, curve=name, seed=seed + 6),
        }
        systems[id(doc)].publish_many(doc.keys)
        systems[id(res)].publish_many(res.keys)
        for label, workload, queries in classes:
            system = systems[id(workload)]
            clusters, messages, processing, matches = [], [], [], 0
            for i, query in enumerate(queries):
                region = workload.space.region(query)
                clusters.append(cluster_stats(system.curve, region).cluster_count)
                r = system.query(query, rng=seed + 7 + i)
                messages.append(r.stats.messages)
                processing.append(r.stats.processing_node_count)
                matches += len(r.matches)
            result.add_row(
                curve=name,
                query_class=label,
                mean_clusters=round(float(np.mean(clusters)), 2),
                messages=round(float(np.mean(messages)), 1),
                processing_nodes=round(float(np.mean(processing)), 1),
                matches=matches,
                selected=selections[id(workload)] == name,
            )
    result.notes.append(
        "same seeded workloads and queries for every curve; 'selected' marks "
        "the family select_curve() picks from that class's query regions"
    )
    return result


EXTENSIONS = {
    "extA": run_replication,
    "extB": run_hotspots,
    "extC": run_response_time,
    "extD": run_churn,
    "extE": run_attack,
    "extF": run_faults,
    "extG": run_result_cache,
    "extH": run_curve_ablation,
}
