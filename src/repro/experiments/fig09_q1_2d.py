"""Figure 9 — query type Q1, 2-D keyword space.

Paper: "Results for query type Q1, 2D: (a) the number of matches for the
queries, (b) the number of nodes that process the query, (c) the number of
nodes that found matches for the query", for six single-(partial-)keyword
queries as the system grows from 1000 to 5400 nodes (2·10^4 → 10^5 keys).

Expected shape: processing and data nodes are a small fraction of the
system and grow sublinearly; data nodes track processing nodes closely;
processing cost is not monotone in match count.
"""

from __future__ import annotations

from repro.experiments.runner import SCALES, FigureResult
from repro.experiments.sweeps import document_growth_sweep
from repro.workloads.queries import q1_queries

__all__ = ["run"]


def run(scale: str = "small", seed: int = 9) -> FigureResult:
    """Regenerate fig09 at the given scale preset (see module docstring)."""
    preset = SCALES[scale]
    return document_growth_sweep(
        figure="fig09",
        title="Q1 queries, 2-D keyword space (matches / processing / data nodes)",
        dims=2,
        scale=preset,
        make_queries=lambda wl: q1_queries(wl, count=6, rng=seed + 1),
        seed=seed,
    )
