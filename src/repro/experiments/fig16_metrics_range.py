"""Figure 16 — all metrics for range queries, two system snapshots.

Paper: "(a) for 2750 node system and 6·10^4 keys, (b) for 4700 node system
and 10^5 keys."  Same routing ≫ processing ≈ data shape as Figures 10/13.
"""

from __future__ import annotations

from repro.experiments import fig15_range_kr
from repro.experiments.runner import SCALES, FigureResult
from repro.experiments.sweeps import snapshot_runs

__all__ = ["run"]


def run(scale: str = "small", seed: int = 15) -> FigureResult:
    """Regenerate fig16 at the given scale preset (see module docstring)."""
    preset = SCALES[scale]
    sweep = fig15_range_kr.run(scale=scale, seed=seed)
    pairs = preset.paired()
    return snapshot_runs(
        figure="fig16",
        title="All metrics, range queries (two system snapshots)",
        sweep=sweep,
        snapshots=[pairs[2], pairs[4]],
    )
