"""Shared system builders and query sweeps for the experiment modules.

The paper's evaluation systems are built the way a deployment would grow: a
small bootstrap ring, the workload published, then nodes joining with the
join-time load-balancing step so peers follow the data distribution (§3.5
is in effect during the §4.1 query-engine experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.loadbalance import grow_with_join_lb, run_neighbor_balancing
from repro.core.system import SquidSystem
from repro.keywords.query import Query
from repro.util.rng import RandomLike, as_generator
from repro.workloads.documents import DocumentWorkload
from repro.workloads.resources import ResourceWorkload

__all__ = [
    "BuiltSystem",
    "build_document_system",
    "build_resource_system",
    "sweep_queries",
    "METRIC_COLUMNS",
]

METRIC_COLUMNS = [
    "query",
    "matches",
    "routing_nodes",
    "processing_nodes",
    "data_nodes",
    "messages",
    "hops",
]

#: Join-time load-balancing samples used throughout the evaluation.
JOIN_SAMPLES = 6


@dataclass
class BuiltSystem:
    system: SquidSystem
    workload: DocumentWorkload | ResourceWorkload


def build_document_system(
    dims: int,
    n_nodes: int,
    n_keys: int,
    vocabulary_size: int,
    bits: int = 20,
    seed: RandomLike = 0,
    join_lb: bool = True,
    runtime_lb: bool = False,
    workload: DocumentWorkload | None = None,
) -> BuiltSystem:
    """A populated storage system grown with (optional) load balancing."""
    gen = as_generator(seed)
    if workload is None:
        workload = DocumentWorkload.generate(
            dims, n_keys, vocabulary_size=vocabulary_size, bits=bits, rng=gen
        )
    keys = workload.keys[:n_keys]
    if join_lb:
        bootstrap = max(8, n_nodes // 20)
        system = SquidSystem.create(workload.space, n_nodes=bootstrap, seed=gen)
        system.publish_many(keys)
        grow_with_join_lb(system, n_nodes, samples=JOIN_SAMPLES, rng=gen)
    else:
        system = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=gen)
        system.publish_many(keys)
    if runtime_lb:
        run_neighbor_balancing(system, rounds=6, threshold=1.5)
        system.overlay.rebuild_all_fingers()
    return BuiltSystem(system=system, workload=workload)


def build_resource_system(
    n_resources: int,
    n_nodes: int,
    bits: int = 16,
    seed: RandomLike = 0,
    join_lb: bool = True,
    workload: ResourceWorkload | None = None,
) -> BuiltSystem:
    """A populated grid-resource system (3-D numeric attributes)."""
    gen = as_generator(seed)
    if workload is None:
        workload = ResourceWorkload.generate(n_resources, bits=bits, rng=gen)
    keys = workload.keys[:n_resources]
    if join_lb:
        bootstrap = max(8, n_nodes // 20)
        system = SquidSystem.create(workload.space, n_nodes=bootstrap, seed=gen)
        system.publish_many(keys)
        grow_with_join_lb(system, n_nodes, samples=JOIN_SAMPLES, rng=gen)
    else:
        system = SquidSystem.create(workload.space, n_nodes=n_nodes, seed=gen)
        system.publish_many(keys)
    return BuiltSystem(system=system, workload=workload)


def sweep_queries(
    system: SquidSystem,
    queries: Sequence[Query],
    seed: RandomLike = 0,
    extra: dict | None = None,
    workers: int | None = None,
) -> list[dict]:
    """Run each query once from a random origin; one metrics row per query.

    Queries execute through :meth:`SquidSystem.query_many`, so sweeps
    parallelize across worker processes (``workers=None`` follows the
    process-wide default set by the CLI ``--workers`` flag).  Rows are
    identical for any worker count.
    """
    batch = system.query_many(queries, workers=workers, seed=seed)
    rows = []
    for i, (query, result) in enumerate(zip(queries, batch.results)):
        row = {"query": str(query), "query_id": f"query{i + 1}", "matches": result.match_count}
        row.update(result.stats.as_row())
        if extra:
            row.update(extra)
        rows.append(row)
    return rows
