"""Figure 10 — all metrics, 2-D keyword space, two system snapshots.

Paper: "Results for all the metrics, 2D: (a) for a 3200 node system and
6·10^4 keys, (b) for a 5400 node system and 10^5 keys" — one bar group per
query showing routing nodes, messages, processing nodes and data nodes.

Expected shape: routing ≫ processing ≈ data, messages ≈ 2× processing
nodes, everything far below the system size.
"""

from __future__ import annotations

from repro.experiments import fig09_q1_2d
from repro.experiments.runner import SCALES, FigureResult
from repro.experiments.sweeps import snapshot_runs

__all__ = ["run"]


def run(scale: str = "small", seed: int = 9) -> FigureResult:
    """Regenerate fig10 at the given scale preset (see module docstring)."""
    preset = SCALES[scale]
    sweep = fig09_q1_2d.run(scale=scale, seed=seed)
    pairs = preset.paired()
    return snapshot_runs(
        figure="fig10",
        title="All metrics, 2-D keyword space (two system snapshots)",
        sweep=sweep,
        snapshots=[pairs[2], pairs[4]],
    )
