"""The Squid core: system assembly, query engines, metrics, load balancing."""

from repro.core.adversary import AdversarialEngine, run_attack_experiment
from repro.core.engine import NaiveEngine, OptimizedEngine, QueryEngine, make_engine
from repro.core.hotspots import CachingQueryLayer, HotspotMonitor
from repro.core.snapshot import load_system, save_system
from repro.core.loadbalance import (
    VirtualNodeManager,
    grow_with_join_lb,
    neighbor_balance_round,
    run_neighbor_balancing,
    sample_join_id,
)
from repro.core.metrics import QueryResult, QueryStats
from repro.core.plancache import PlanCache, plan_key
from repro.core.replication import ReplicationManager
from repro.core.resultcache import (
    ResultCache,
    result_key,
    set_default_result_cache,
)
from repro.core.system import SquidSystem

__all__ = [
    "SquidSystem",
    "QueryEngine",
    "OptimizedEngine",
    "NaiveEngine",
    "make_engine",
    "QueryResult",
    "QueryStats",
    "PlanCache",
    "plan_key",
    "ResultCache",
    "result_key",
    "set_default_result_cache",
    "sample_join_id",
    "grow_with_join_lb",
    "neighbor_balance_round",
    "run_neighbor_balancing",
    "VirtualNodeManager",
    "ReplicationManager",
    "AdversarialEngine",
    "run_attack_experiment",
    "CachingQueryLayer",
    "HotspotMonitor",
    "save_system",
    "load_system",
]
