"""Result cache: memoized complete query results at the initiator.

The plan cache (:mod:`repro.core.plancache`) memoizes pure geometry and
therefore never invalidates.  One tier above it sits this module's
:class:`ResultCache`: an initiator-side LRU+TTL cache of *complete*
:class:`~repro.core.metrics.QueryResult` match sets.  Unlike a plan, a
result depends on the stored data — so the hard part is invalidation, and
the contract here is strict:

* **Publishes** into a cached region drop exactly the overlapping entries.
  Each entry keeps a coarse interval cover of its region (the inclusive
  curve-index ranges from :func:`~repro.sfc.clusters.resolve_clusters`
  capped at ``invalidation_level``, a safe over-approximation) for a cheap
  prefilter, then confirms with the exact coordinate-space test
  (:meth:`~repro.sfc.regions.Region.contains_point`) so a publish only
  evicts entries whose answer could actually change.
* **Membership churn** (joins, graceful leaves, identifier moves, crashes)
  invalidates by curve-index segment: any entry whose cover overlaps the
  moved or lost segment is dropped.  Graceful movement preserves the global
  data set, but crashes do not, and the segment test is the conservative
  common denominator both need.
* **Partial results** (``QueryResult.complete == False``, produced by the
  fault plane) are never cached — a stale-guard counter
  (``result_cache.partial_skipped``) records each refusal.

Entries expire after ``ttl`` seconds when a TTL is configured; the clock is
injectable so simulations can run on logical time.  Hits, misses,
evictions, expirations, invalidations, and the messages a hit avoided
re-sending are published to the active metrics registry under
``result_cache.*``, and each :class:`~repro.core.metrics.QueryStats`
records whether its query was served from cache (``result_cache_hit``).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Sequence

from repro.obs import metrics as obs_metrics
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.regions import Region

__all__ = [
    "ResultCache",
    "result_key",
    "set_default_result_cache",
    "default_result_cache",
]


def result_key(
    curve: SpaceFillingCurve,
    region: Region,
    engine_name: str,
    params: Hashable = None,
    query: Any = None,
) -> tuple:
    """Canonical cache key for one query's result.

    Extends :func:`repro.core.plancache.plan_key` with the query's
    canonical text.  The plan cache can key on the region alone — plans
    are pure geometry — but a *result* also reflects the engine's exact
    match filter: at coarse bit resolutions two textually different
    queries (``(computer, *)`` vs ``(comp*, *)``) can quantize to the same
    canonical region yet keep different subsets of the scanned elements,
    so the key must separate them.
    """
    return (
        engine_name,
        params,
        str(query),
        curve.name,
        curve.dims,
        curve.order,
        region.canonical_key(),
    )


@dataclass
class _Entry:
    """One cached result: the match tuple plus its invalidation footprint."""

    matches: tuple
    #: Coarse inclusive curve-index cover of ``region`` — the invalidation
    #: prefilter.  Over-approximating by construction (capped refinement),
    #: never under-approximating.
    ranges: tuple[tuple[int, int], ...]
    #: Exact coordinate-space geometry, for point-precise publish checks.
    region: Region
    stored_at: float
    #: Messages the original (uncached) execution spent; credited to the
    #: ``result_cache.messages_saved`` counter on every hit.
    messages: int


class ResultCache:
    """LRU+TTL cache of complete query results with interval invalidation.

    Parameters
    ----------
    capacity:
        Maximum entries before LRU eviction.
    ttl:
        Seconds (by ``clock``) an entry stays valid, or None for no expiry.
    invalidation_level:
        Refinement depth of the per-entry interval cover.  Lower is coarser:
        fewer, wider ranges — cheaper to build and test, but more collateral
        invalidation.  Capped at the curve order.
    clock:
        Monotonic time source; injectable so tests and simulations can drive
        TTL on logical time.
    """

    def __init__(
        self,
        capacity: int = 128,
        ttl: float | None = None,
        invalidation_level: int = 4,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl}")
        if invalidation_level < 1:
            raise ValueError(
                f"invalidation_level must be >= 1, got {invalidation_level}"
            )
        self.capacity = capacity
        self.ttl = ttl
        self.invalidation_level = invalidation_level
        self.clock = clock
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0
        self.partial_skipped = 0
        self.messages_saved = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def spawn_empty(self) -> "ResultCache":
        """A fresh cache with the same configuration and zeroed counters.

        Used by :class:`~repro.exec.pool.QueryPool` to give every chunk its
        own cache (mirroring the plan/route cache swap) so batch results are
        bit-identical for any worker count.
        """
        return ResultCache(
            capacity=self.capacity,
            ttl=self.ttl,
            invalidation_level=self.invalidation_level,
            clock=self.clock,
        )

    # ------------------------------------------------------------------
    # Lookup / install
    # ------------------------------------------------------------------
    def get(self, key: tuple) -> tuple | None:
        """The cached match tuple for ``key``, or None; counts the lookup.

        TTL is enforced here: an expired entry is dropped and reported as a
        miss (plus ``result_cache.expirations``).
        """
        entry = self._entries.get(key)
        reg = obs_metrics.active()
        if entry is not None and self.ttl is not None:
            if self.clock() - entry.stored_at >= self.ttl:
                del self._entries[key]
                self.expirations += 1
                if reg is not None:
                    reg.counter("result_cache.expirations").inc()
                entry = None
        if entry is None:
            self.misses += 1
            if reg is not None:
                reg.counter("result_cache.misses").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.messages_saved += entry.messages
        if reg is not None:
            reg.counter("result_cache.hits").inc()
            reg.counter("result_cache.messages_saved").inc(entry.messages)
        return entry.matches

    def put(
        self,
        key: tuple,
        result: Any,
        curve: SpaceFillingCurve,
        region: Region,
    ) -> bool:
        """Install a *complete* result; refuses partial ones.

        Returns True when the entry was cached.  The stale guard: a result
        with ``complete == False`` holds a certain *subset* of the exact
        answer, so caching it would replay the faults of one execution into
        every later lookup — it is counted (``result_cache.partial_skipped``)
        and dropped instead.
        """
        if not getattr(result, "complete", True):
            self.partial_skipped += 1
            reg = obs_metrics.active()
            if reg is not None:
                reg.counter("result_cache.partial_skipped").inc()
            return False
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = _Entry(
            matches=tuple(result.matches),
            ranges=self._cover(curve, region),
            region=region,
            stored_at=self.clock(),
            messages=result.stats.messages,
        )
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
            reg = obs_metrics.active()
            if reg is not None:
                reg.counter("result_cache.evictions").inc()
        return True

    def _cover(
        self, curve: SpaceFillingCurve, region: Region
    ) -> tuple[tuple[int, int], ...]:
        """Coarse inclusive index cover of ``region`` over ``curve``.

        Capping :func:`resolve_clusters` at ``invalidation_level`` keeps
        unresolved cells as their *full* cell ranges, so the cover contains
        every index the exact resolution would — overlap with it is a
        necessary condition for a data change to affect the entry.
        """
        from repro.core.metrics import merge_index_ranges
        from repro.sfc.clusters import resolve_clusters

        level = min(self.invalidation_level, curve.order)
        return merge_index_ranges(resolve_clusters(curve, region, max_level=level))

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_point(
        self, index: int, coords: Sequence[int] | None = None
    ) -> int:
        """Drop entries a publish/remove at ``index`` could affect.

        The interval cover prefilters; when the publish's coordinates are
        known, :meth:`Region.contains_point` confirms exactly, so a publish
        outside an entry's region (even one landing inside its coarse cover)
        leaves the entry alone.  Returns the number of entries dropped.
        """
        if not self._entries:
            return 0
        stale = []
        for key, entry in self._entries.items():
            if not _ranges_contain(entry.ranges, index):
                continue
            if coords is not None and not entry.region.contains_point(coords):
                continue
            stale.append(key)
        return self._drop(stale)

    def invalidate_points(
        self,
        indices: Sequence[int],
        coords: Sequence[Sequence[int]] | None = None,
    ) -> int:
        """Batch form of :meth:`invalidate_point` (one pass per entry)."""
        if not self._entries or len(indices) == 0:
            return 0
        stale = []
        for key, entry in self._entries.items():
            for pos, index in enumerate(indices):
                if not _ranges_contain(entry.ranges, int(index)):
                    continue
                if coords is not None and not entry.region.contains_point(
                    coords[pos]
                ):
                    continue
                stale.append(key)
                break
        return self._drop(stale)

    def invalidate_range(self, low: int, high: int) -> int:
        """Drop entries whose cover overlaps the inclusive ``[low, high]``.

        Used for membership churn, where a whole curve segment changes hands
        (or is lost): there is no single point to test exactly, so the
        coarse cover decides alone.  Returns the number of entries dropped.
        """
        if not self._entries or low > high:
            return 0
        stale = [
            key
            for key, entry in self._entries.items()
            if _ranges_overlap(entry.ranges, low, high)
        ]
        return self._drop(stale)

    def invalidate_all(self) -> int:
        """Drop every entry (counted as invalidations, not evictions)."""
        stale = list(self._entries)
        return self._drop(stale)

    def _drop(self, keys: list) -> int:
        for key in keys:
            del self._entries[key]
        if keys:
            self.invalidations += len(keys)
            reg = obs_metrics.active()
            if reg is not None:
                reg.counter("result_cache.invalidations").inc(len(keys))
        return len(keys)

    def clear(self) -> None:
        """Drop all entries (counters are preserved, nothing is counted)."""
        self._entries.clear()


def _ranges_contain(ranges: tuple[tuple[int, int], ...], index: int) -> bool:
    for low, high in ranges:
        if low <= index <= high:
            return True
        if low > index:
            return False
    return False


def _ranges_overlap(
    ranges: tuple[tuple[int, int], ...], low: int, high: int
) -> bool:
    for r_low, r_high in ranges:
        if r_low <= high and low <= r_high:
            return True
        if r_low > high:
            return False
    return False


# ----------------------------------------------------------------------
# Process-wide default (CLI plumbing, mirrors exec.set_default_workers)
# ----------------------------------------------------------------------
_DEFAULT_CAPACITY: int | None = None


def set_default_result_cache(capacity: int | None) -> None:
    """Set the process default for ``SquidSystem(result_cache=None)``.

    ``capacity`` of None turns the default off (systems built without an
    explicit ``result_cache=`` get no cache, the historical behaviour); a
    positive integer makes every such system create a
    :class:`ResultCache` of that capacity.  Wired to the CLI's
    ``--result-cache`` flag.
    """
    global _DEFAULT_CAPACITY
    if capacity is not None and capacity < 1:
        raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
    _DEFAULT_CAPACITY = capacity


def default_result_cache() -> ResultCache | None:
    """A fresh cache per the process default, or None when unset."""
    if _DEFAULT_CAPACITY is None:
        return None
    return ResultCache(capacity=_DEFAULT_CAPACITY)
