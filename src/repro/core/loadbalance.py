"""Load balancing (paper §3.5).

The SFC mapping preserves keyword locality, so keys are *not* uniformly
distributed over the index space while node identifiers are — without help,
load is skewed (paper Figure 18).  Three mechanisms fix this:

1. **Load balancing at node join** — the joining node samples several
   candidate identifiers, probes the load of each candidate's successor, and
   picks the identifier that lands it in the most loaded part of the network
   (cost O(samples · log N) messages).  Nodes thereby follow the data
   distribution from the start.
2. **Runtime neighbor balancing** — periodically, neighboring nodes exchange
   load information and the most loaded node shifts its ring boundary,
   handing part of its keys to a neighbor (cost O(log N) per node, so run
   sparingly).
3. **Virtual nodes** — each physical peer hosts several virtual ring nodes;
   an overloaded virtual node *splits*, and overloaded physical peers
   *migrate* virtual nodes to less loaded peers (neighbors or finger
   targets).

All three operate on a live :class:`~repro.core.system.SquidSystem`,
moving real keys between stores, and report their message costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.system import SquidSystem
from repro.errors import LoadBalanceError
from repro.obs import metrics as obs_metrics
from repro.overlay.base import ring_contains_open_open
from repro.util.rng import RandomLike, as_generator

__all__ = [
    "sample_join_id",
    "grow_with_join_lb",
    "neighbor_balance_round",
    "run_neighbor_balancing",
    "VirtualNodeManager",
]


# ----------------------------------------------------------------------
# 1. Load balancing at node join
# ----------------------------------------------------------------------
def sample_join_id(
    system: SquidSystem, samples: int = 8, rng: RandomLike = None
) -> tuple[int, int]:
    """Pick a join identifier by probing ``samples`` random candidates.

    Returns ``(identifier, message_cost)``.  Each probe routes a join
    message to the candidate's successor, which replies with its load (the
    paper's "nodes that are logical successors of these identifiers respond
    reporting their load").  The joining node then places itself in the most
    loaded part of the network: it targets the most loaded probed successor
    and picks the identifier that halves that node's keys.

    Implementation note (documented in DESIGN.md): the paper has the node
    reuse one of its sampled identifiers verbatim.  With skewed data a
    uniformly random identifier almost never lands *inside* a hot key range,
    so the sampled id would absorb no keys at all; we therefore let the
    probed successor's load report include its key median — the natural
    payload of the load reply — and join at that median.  This preserves
    the mechanism (random sampling finds the loaded region with probability
    proportional to its arc) while making the split effective.
    """
    if samples < 1:
        raise LoadBalanceError(f"samples must be >= 1, got {samples}")
    gen = as_generator(rng)
    overlay = system.overlay
    log_n = max(1, len(overlay).bit_length())
    best: tuple[int, int] | None = None  # (succ_load, candidate)
    best_succ: int | None = None
    cost = 0
    seen: set[int] = set()
    while len(seen) < samples:
        candidate = int(gen.integers(0, overlay.space))
        if candidate in seen or candidate in overlay.nodes:
            continue
        seen.add(candidate)
        cost += log_n + 1  # probe route + load reply
        successor = overlay.owner(candidate)
        load = system.stores[successor].key_count
        if best is None or (load, candidate) > best:
            best = (load, candidate)
            best_succ = successor
    assert best is not None and best_succ is not None
    split = _median_split_id(system, best_succ)
    reg = obs_metrics.active()
    if reg is not None:
        reg.counter("lb.join_probes").inc(samples)
    return (split if split is not None else best[1]), cost


def _median_split_id(system: SquidSystem, node_id: int) -> int | None:
    """The identifier that would halve ``node_id``'s keys, if usable."""
    split = system.stores[node_id].split_point_by_load()
    if split is None or split in system.overlay.nodes:
        return None
    pred = system.overlay.predecessor_id(node_id)
    if pred == node_id or not ring_contains_open_open(
        split, pred, node_id, system.overlay.space
    ):
        return None
    return split


def grow_with_join_lb(
    system: SquidSystem,
    target_nodes: int,
    samples: int = 8,
    rng: RandomLike = None,
) -> int:
    """Grow the system to ``target_nodes`` using join-time load balancing.

    Returns the total message cost of all joins.
    """
    gen = as_generator(rng)
    cost = 0
    while len(system.overlay) < target_nodes:
        node_id, probe_cost = sample_join_id(system, samples=samples, rng=gen)
        cost += probe_cost + system.add_node(node_id)
    return cost


# ----------------------------------------------------------------------
# 2. Runtime neighbor balancing
# ----------------------------------------------------------------------
def neighbor_balance_round(
    system: SquidSystem, threshold: float = 2.0
) -> tuple[int, int]:
    """One local balancing pass over all adjacent node pairs.

    For each node (in ring order) whose load exceeds ``threshold`` times its
    successor's (or vice versa), the boundary between them shifts so keys
    split roughly evenly.  Returns ``(boundary_shifts, message_cost)``.

    The wrap-around pair (highest, lowest identifier) is skipped: its key
    range crosses index 0, and shifting that boundary would not change which
    linear index ranges exist — runtime balancing there is deferred to the
    virtual-node scheme.
    """
    if threshold < 1.0:
        raise LoadBalanceError("threshold must be >= 1.0")
    overlay = system.overlay
    ids = overlay.node_ids()
    shifts = 0
    cost = 0
    for node_id in ids:
        if node_id not in overlay.nodes:  # renamed earlier in this round
            continue
        succ = overlay.successor_id(node_id)
        if succ <= node_id:  # wrap-around pair: skip
            continue
        load_n = system.stores[node_id].key_count
        load_s = system.stores[succ].key_count
        cost += 1  # the load-exchange message
        if load_n > threshold * max(load_s, 1):
            moved = _shed_to_successor(system, node_id)
            if moved:
                shifts += 1
                cost += moved[1]
        elif load_s > threshold * max(load_n, 1):
            moved = _absorb_from_successor(system, node_id, succ)
            if moved:
                shifts += 1
                cost += moved[1]
    reg = obs_metrics.active()
    if reg is not None:
        reg.counter("lb.boundary_shifts").inc(shifts)
        reg.counter("lb.balance_rounds").inc()
    return shifts, cost


def _shed_to_successor(system: SquidSystem, node_id: int) -> tuple[int, int] | None:
    """Lower ``node_id``'s identifier so its upper keys go to the successor."""
    store = system.stores[node_id]
    split = store.split_point_by_load()
    if split is None or split >= node_id:
        return None
    pred = system.overlay.predecessor_id(node_id)
    if pred < node_id and split <= pred:
        return None
    return system.change_node_id(node_id, split)


def _absorb_from_successor(
    system: SquidSystem, node_id: int, succ: int
) -> tuple[int, int] | None:
    """Raise ``node_id``'s identifier to take the successor's lower keys."""
    split = system.stores[succ].split_point_by_load()
    if split is None or not (node_id < split < succ):
        return None
    return system.change_node_id(node_id, split)


def run_neighbor_balancing(
    system: SquidSystem,
    rounds: int = 5,
    threshold: float = 2.0,
) -> tuple[int, int]:
    """Run balancing rounds until quiescent or ``rounds`` exhausted."""
    total_shifts = 0
    total_cost = 0
    for _ in range(rounds):
        shifts, cost = neighbor_balance_round(system, threshold=threshold)
        total_shifts += shifts
        total_cost += cost
        if shifts == 0:
            break
    return total_shifts, total_cost


# ----------------------------------------------------------------------
# 3. Virtual nodes
# ----------------------------------------------------------------------
@dataclass
class VirtualNodeManager:
    """Physical peers hosting multiple virtual ring nodes (paper §3.5).

    The ring (and every store) operates on *virtual* node identifiers; this
    manager tracks which physical peer hosts each virtual node.  Splitting
    inserts a new virtual node inside an overloaded one's range (on the same
    physical peer); migration re-homes a virtual node to a less loaded
    physical peer — a bookkeeping change only, since the ring is untouched.
    """

    system: SquidSystem
    host_of: dict[int, int] = field(default_factory=dict)
    _next_physical: int = 0

    @classmethod
    def adopt(cls, system: SquidSystem, virtuals_per_peer: int = 1) -> "VirtualNodeManager":
        """Adopt an existing system, assigning ring nodes to physical peers.

        Every consecutive group of ``virtuals_per_peer`` ring nodes (in id
        order) initially belongs to one physical peer.
        """
        if virtuals_per_peer < 1:
            raise LoadBalanceError("virtuals_per_peer must be >= 1")
        manager = cls(system)
        for i, node_id in enumerate(system.overlay.node_ids()):
            manager.host_of[node_id] = i // virtuals_per_peer
        manager._next_physical = (
            max(manager.host_of.values(), default=-1) + 1
        )
        return manager

    # -- accounting ----------------------------------------------------
    def physical_peers(self) -> list[int]:
        return sorted(set(self.host_of.values()))

    def virtuals_of(self, peer: int) -> list[int]:
        return sorted(v for v, p in self.host_of.items() if p == peer)

    def physical_loads(self) -> dict[int, int]:
        loads: dict[int, int] = {p: 0 for p in self.host_of.values()}
        for virtual, peer in self.host_of.items():
            loads[peer] += self.system.stores[virtual].key_count
        return loads

    def virtual_loads(self) -> dict[int, int]:
        return {v: self.system.stores[v].key_count for v in self.host_of}

    # -- operations ------------------------------------------------------
    def split_virtual(self, virtual_id: int) -> int | None:
        """Split one virtual node at its load median; returns the new id."""
        if virtual_id not in self.host_of:
            raise LoadBalanceError(f"{virtual_id} is not a managed virtual node")
        store = self.system.stores[virtual_id]
        split = store.split_point_by_load()
        if split is None or split >= virtual_id or split in self.system.overlay.nodes:
            return None
        pred = self.system.overlay.predecessor_id(virtual_id)
        if pred < virtual_id and split <= pred:
            return None
        self.system.add_node(split)
        self.host_of[split] = self.host_of[virtual_id]
        return split

    def split_overloaded(self, threshold_keys: int) -> int:
        """Split every virtual node holding more than ``threshold_keys``."""
        splits = 0
        for virtual_id in list(self.host_of):
            if self.system.stores[virtual_id].key_count > threshold_keys:
                if self.split_virtual(virtual_id) is not None:
                    splits += 1
        return splits

    def migrate_one(self, rng: RandomLike = None) -> bool:
        """Move one virtual node from the most to the least loaded peer."""
        loads = self.physical_loads()
        if len(loads) < 2:
            return False
        heavy = max(loads, key=lambda p: loads[p])
        light = min(loads, key=lambda p: loads[p])
        if loads[heavy] <= loads[light] + 1:
            return False
        candidates = self.virtuals_of(heavy)
        if len(candidates) < 2:
            return False  # a peer always keeps at least one virtual node
        gap = (loads[heavy] - loads[light]) / 2
        best = min(
            candidates,
            key=lambda v: abs(self.system.stores[v].key_count - gap),
        )
        self.host_of[best] = light
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("lb.virtual_migrations").inc()
        return True

    def rebalance(self, max_migrations: int = 1000, rng: RandomLike = None) -> int:
        """Migrate until loads stop improving; returns migrations performed."""
        moves = 0
        for _ in range(max_migrations):
            if not self.migrate_one(rng):
                break
            moves += 1
        return moves
