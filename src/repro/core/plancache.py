"""Query-plan cache: memoized cluster plans at the query initiator.

Resolving a query spends most of its initiator-side CPU on pure geometry —
refining the covering region's clusters over the space-filling curve.  That
work depends only on ``(curve, region, engine parameters)``, never on the
overlay or the stored data: node arrivals, departures, and publishes change
*where* clusters are sent and what the scans return, not the clusters
themselves.  The plan is therefore immutable once computed, and repeated
queries over the same region (hot-spot workloads, dashboard refreshes,
polling discovery loops) can skip cluster generation entirely.

:class:`PlanCache` is a small LRU keyed on the canonical region geometry
(:meth:`~repro.sfc.regions.Region.canonical_key`, order-insensitive over the
region's boxes), the curve identity, and the engine parameters that shape
the plan (``local_depth`` for the optimized engine, ``max_level`` for the
naive one).  Values are the engines' own plan objects — tuples of frozen
:class:`~repro.sfc.clusters.Cluster` dataclasses or resolved index ranges —
so sharing a cached plan across queries is safe by construction.

Because plans are pure functions of their key, **no invalidation is ever
needed**; the only reason entries leave the cache is LRU capacity pressure.
Hits, misses, and evictions are published to the active metrics registry
(``plan_cache.hits`` / ``plan_cache.misses`` / ``plan_cache.evictions``)
and each :class:`~repro.core.metrics.QueryStats` records whether its query
was planned from cache (``plan_cache_hit``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from repro.obs import metrics as obs_metrics
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.regions import Region

__all__ = ["PlanCache", "plan_key"]


def plan_key(
    curve: SpaceFillingCurve,
    region: Region,
    engine_name: str,
    params: Hashable = None,
) -> tuple:
    """Canonical cache key for one query plan.

    Two queries share a key exactly when they resolve the same region over
    the same curve with the same plan-shaping engine parameters — in which
    case cluster generation is deterministic and the plans are identical.
    """
    return (
        engine_name,
        params,
        curve.name,
        curve.dims,
        curve.order,
        region.canonical_key(),
    )


class PlanCache:
    """LRU cache of resolved query plans, with hit/miss/eviction accounting.

    The cache is engine-agnostic: values are opaque to it (the optimized
    engine stores its first refinement's cluster tuple, the naive engine its
    resolved index ranges) and the ``engine_name`` component of the key keeps
    the two plan shapes from colliding.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def get(self, key: tuple) -> Any | None:
        """The cached plan for ``key``, or None; counts the lookup."""
        plan = self._entries.get(key)
        reg = obs_metrics.active()
        if plan is None:
            self.misses += 1
            if reg is not None:
                reg.counter("plan_cache.misses").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if reg is not None:
            reg.counter("plan_cache.hits").inc()
        return plan

    def put(self, key: tuple, plan: Any) -> None:
        """Install a plan, evicting the least-recently-used entry if full."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = plan
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
            reg = obs_metrics.active()
            if reg is not None:
                reg.counter("plan_cache.evictions").inc()

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._entries.clear()
