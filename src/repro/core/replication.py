"""Successor-list replication — the paper's fault-tolerance future work.

The paper's §5 lists fault tolerance among the directions being extended;
the standard DHT answer (Chord/CFS, PAST) is to replicate each data element
at the ``degree`` ring successors of its primary node.  When a node crashes,
its immediate successor already holds replicas of everything the crashed
node stored, promotes them to primary, and the system re-establishes the
replication degree in the background.

:class:`ReplicationManager` wraps a live :class:`~repro.core.system.SquidSystem`
with exactly that protocol; ``examples``/tests exercise crash bursts and the
``degree``-adjacent-failures loss bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.system import SquidSystem
from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.store import NodeStore, StoredElement

__all__ = ["ReplicationManager"]


class ReplicationError(ReproError):
    """Replication protocol errors."""


@dataclass
class ReplicationStats:
    replicas_written: int = 0
    elements_recovered: int = 0
    elements_lost: int = 0
    messages: int = 0


class ReplicationManager:
    """Maintains ``degree`` successor replicas of every data element.

    Replicas live in per-node *replica stores*, separate from the primary
    stores the query engine scans — queries keep returning each element
    exactly once.  Replica stores are built from the system's
    :class:`~repro.store.base.StoreSpec`, so they use the same backend as
    the primaries (a columnar system keeps columnar replicas, a SQLite
    system SQLite ones).  The invariant maintained (and checked by
    :meth:`verify_degree`):

        every element is stored at its primary (the successor of its index)
        and replicated at the next ``degree`` distinct ring successors.
    """

    def __init__(self, system: SquidSystem, degree: int = 2) -> None:
        if degree < 1:
            raise ReplicationError(f"degree must be >= 1, got {degree}")
        self.system = system
        self.degree = degree
        # node_id=None: replica stores get process-unique labels so they
        # never collide with the holder's primary store in a shared
        # resource (e.g. a shared SQLite file's node column).
        self.replicas: dict[int, NodeStore] = {
            node_id: system.store_spec.create() for node_id in system.overlay.node_ids()
        }
        self.stats = ReplicationStats()
        self._replicate_existing()

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------
    def _replica_holders(self, primary: int) -> list[int]:
        """The ``degree`` distinct successors of ``primary`` (fewer on tiny rings)."""
        overlay = self.system.overlay
        holders = []
        current = primary
        for _ in range(self.degree):
            current = overlay.successor_id(current)
            if current == primary or current in holders:
                break
            holders.append(current)
        return holders

    def _replicate_existing(self) -> None:
        for node_id, store in self.system.stores.items():
            for element in store.all_elements():
                self._write_replicas(node_id, element)

    def _replica_store(self, holder: int) -> NodeStore:
        """The replica store of ``holder``, created on demand.

        Nodes can join the overlay after this manager was constructed (e.g.
        directly through ``SquidSystem.add_node`` or the churn simulator);
        their stores must spring into existence on first write rather than
        silently dropping — or crashing on — the replica.
        """
        store = self.replicas.get(holder)
        if store is None:
            store = self.replicas[holder] = self.system.store_spec.create()
        return store

    def _write_replicas(self, primary: int, element: StoredElement) -> None:
        holders = self._replica_holders(primary)
        for holder in holders:
            self._replica_store(holder).add(element)
            self.stats.replicas_written += 1
            self.stats.messages += 1
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("replication.replicas_written").inc(len(holders))

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def publish(self, key: Sequence[Any], payload: Any = None) -> StoredElement:
        """Publish through the system and replicate synchronously."""
        element = self.system.publish(key, payload=payload)
        primary = self.system.overlay.owner(element.index)
        self._write_replicas(primary, element)
        return element

    # ------------------------------------------------------------------
    # Membership events
    # ------------------------------------------------------------------
    def add_node(self, node_id: int) -> None:
        """Join a node and rebuild affected replica placement."""
        self.system.add_node(node_id)
        self.replicas[node_id] = self.system.store_spec.create()
        self.repair()

    def crash(self, node_id: int) -> int:
        """Crash a node; recover its primaries from replicas.

        Returns the number of elements recovered.  Elements are lost only if
        the crashed node *and* all its replica holders failed earlier
        without repair — the classic ``degree+1`` adjacent-failure bound.
        """
        overlay = self.system.overlay
        if node_id not in overlay.nodes:
            raise ReplicationError(f"node {node_id} is not alive")
        lost_primaries = list(self.system.stores[node_id].all_elements())
        # Segments the victim owned, computed while the ring still knows it:
        # cached query results overlapping them are invalidated below (even
        # full replica recovery re-homes the elements, and recovery may be
        # partial).
        lost_segments = self.system._owned_segments(node_id)
        pred_id = overlay.predecessor_id(node_id)
        succ_id = overlay.successor_id(node_id)
        overlay.fail(node_id)
        # Promotion presupposes failure detection: the neighbors that notice
        # the crash splice their ring pointers (the rest of the state heals
        # via stabilization).
        if succ_id != node_id and succ_id in overlay.nodes:
            overlay.nodes[succ_id].predecessor = (
                pred_id if pred_id != node_id else succ_id
            )
        if pred_id != node_id and pred_id in overlay.nodes:
            overlay.nodes[pred_id].successor = (
                succ_id if succ_id != node_id else pred_id
            )
        self.system.stores.pop(node_id)
        self.system._invalidate_segments(lost_segments)
        crashed_replicas = self.replicas.pop(node_id)

        recovered = 0
        for element in lost_primaries:
            new_primary = overlay.owner(element.index)
            replica_store = self.replicas.get(new_primary)
            if replica_store is not None and _holds(replica_store, element):
                # Promote the successor's replica to primary.
                self.system.stores[new_primary].add(element)
                recovered += 1
                self.stats.elements_recovered += 1
                self.stats.messages += 1
            else:
                self.stats.elements_lost += 1
        # Replicas the crashed node held for others are re-established lazily
        # by repair(); replicas promoted above must not be double-counted.
        self._drop_promoted(lost_primaries)
        del crashed_replicas
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("replication.crashes").inc()
            reg.counter("replication.elements_recovered").inc(recovered)
            reg.counter("replication.elements_lost").inc(
                len(lost_primaries) - recovered
            )
        return recovered

    def _drop_promoted(self, elements: list[StoredElement]) -> None:
        overlay = self.system.overlay
        for element in elements:
            new_primary = overlay.owner(element.index)
            store = self.replicas.get(new_primary)
            if store is None:
                continue
            for moved in store.pop_range(element.index, element.index):
                if moved.key != element.key or moved.payload != element.payload:
                    store.add(moved)  # different element at same index: keep

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def repair_around(self, successor_of_crashed: int) -> int:
        """Incremental repair after one crash (what a real deployment runs).

        Only the crashed node's neighborhood changed: the ``degree``
        predecessors lost one replica holder, and the successor now owns the
        promoted elements.  Re-establish replicas for exactly those
        primaries; returns copies written.  (The full :meth:`repair` remains
        available as the from-scratch reference.)
        """
        overlay = self.system.overlay
        if successor_of_crashed not in overlay.nodes:
            raise ReplicationError(f"{successor_of_crashed} is not a live node")
        affected = {successor_of_crashed}
        current = successor_of_crashed
        for _ in range(self.degree):
            current = overlay.predecessor_id(current)
            affected.add(current)
        written = 0
        for node_id in affected:
            store = self.system.stores.get(node_id)
            if store is None:  # pragma: no cover - defensive
                continue
            holders = self._replica_holders(node_id)
            for element in store.all_elements():
                for holder in holders:
                    holder_store = self._replica_store(holder)
                    if not _holds(holder_store, element):
                        holder_store.add(element)
                        written += 1
        self.stats.messages += written
        return written

    def repair(self) -> int:
        """Re-establish the replication invariant from the primaries.

        Idempotent; returns the number of replica copies (re)written.  A
        real deployment runs this incrementally from stabilization; the
        simulator recomputes the placement, which is equivalent.
        """
        desired: dict[int, list[StoredElement]] = {
            nid: [] for nid in self.system.overlay.node_ids()
        }
        for node_id, store in self.system.stores.items():
            for element in store.all_elements():
                for holder in self._replica_holders(node_id):
                    desired[holder].append(element)
        written = 0
        fresh: dict[int, NodeStore] = {}
        for node_id, elements in desired.items():
            store = self.system.store_spec.create()
            store.add_sorted_bulk(elements)
            fresh[node_id] = store
            written += len(elements)
        retired, self.replicas = self.replicas, fresh
        for store in retired.values():
            store.close()
        self.stats.messages += written
        return written

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def verify_degree(self) -> bool:
        """True when every primary element has all its replicas in place."""
        for node_id, store in self.system.stores.items():
            holders = self._replica_holders(node_id)
            for element in store.all_elements():
                for holder in holders:
                    holder_store = self.replicas.get(holder)
                    if holder_store is None or not _holds(holder_store, element):
                        return False
        return True

    def replica_count(self) -> int:
        return sum(store.element_count for store in self.replicas.values())


def _holds(store: NodeStore, element: StoredElement) -> bool:
    for candidate in store.scan_range(element.index, element.index):
        if candidate.key == element.key and candidate.payload == element.payload:
            return True
    return False
