"""Query cost accounting — the paper's four evaluation metrics (§4.1).

* **routing nodes** — every node that handled a query message on the wire;
* **processing nodes** — nodes that refined a (sub-)query and searched their
  local store;
* **data nodes** — processing nodes where at least one match was found;
* **messages** — sub-query messages sent to resolve the query.  Following
  the paper ("each message is a subquery that searches for a fraction of the
  clusters"), a routed sub-query counts as *one* message regardless of how
  many overlay hops it takes — the traversed peers appear as routing nodes
  instead; probe replies and aggregated batches also count one each.  The
  wire-level hop count is tracked separately as ``hops``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["QueryStats", "QueryResult"]


@dataclass
class QueryStats:
    """Mutable accumulator filled in while a query executes."""

    routing_nodes: set[int] = field(default_factory=set)
    processing_nodes: set[int] = field(default_factory=set)
    data_nodes: set[int] = field(default_factory=set)
    messages: int = 0
    hops: int = 0
    clusters_processed: int = 0
    max_refinement_level: int = 0
    #: Simulated time until the last sub-query finished and its results
    #: returned to the origin (0.0 when no latency model is in use).
    completion_time: float = 0.0
    #: Simulated time at which the first match reached the origin (None when
    #: there were no matches or no latency model).
    time_to_first_match: float | None = None

    def record_completion(self, time: float) -> None:
        if time > self.completion_time:
            self.completion_time = time

    def record_match_time(self, time: float) -> None:
        if self.time_to_first_match is None or time < self.time_to_first_match:
            self.time_to_first_match = time

    def record_path(self, path: tuple[int, ...]) -> None:
        """Charge one routed sub-query: one logical message, per-hop wire cost."""
        self.routing_nodes.update(path)
        self.messages += 1
        self.hops += len(path) - 1

    def record_direct(self, count: int = 1) -> None:
        """Charge direct point-to-point messages (replies, batches)."""
        self.messages += count
        self.hops += count

    def record_processing(self, node_id: int, level: int) -> None:
        self.processing_nodes.add(node_id)
        self.routing_nodes.add(node_id)
        self.clusters_processed += 1
        if level > self.max_refinement_level:
            self.max_refinement_level = level

    def record_data_node(self, node_id: int) -> None:
        self.data_nodes.add(node_id)

    @property
    def routing_node_count(self) -> int:
        return len(self.routing_nodes)

    @property
    def processing_node_count(self) -> int:
        return len(self.processing_nodes)

    @property
    def data_node_count(self) -> int:
        return len(self.data_nodes)

    def as_row(self) -> dict[str, int]:
        """The paper's bar-chart row for one query."""
        return {
            "routing_nodes": self.routing_node_count,
            "processing_nodes": self.processing_node_count,
            "data_nodes": self.data_node_count,
            "messages": self.messages,
            "hops": self.hops,
        }


@dataclass
class QueryResult:
    """Matches plus the cost statistics of resolving one query."""

    query: Any
    matches: list
    stats: QueryStats

    @property
    def match_count(self) -> int:
        return len(self.matches)

    def match_keys(self) -> set:
        """Distinct keyword combinations among the matches."""
        return {element.key for element in self.matches}
