"""Query cost accounting — the paper's four evaluation metrics (§4.1).

* **routing nodes** — every node that handled a query message on the wire;
* **processing nodes** — nodes that refined a (sub-)query and searched their
  local store;
* **data nodes** — processing nodes where at least one match was found;
* **messages** — sub-query messages sent to resolve the query.  Following
  the paper ("each message is a subquery that searches for a fraction of the
  clusters"), a routed sub-query counts as *one* message regardless of how
  many overlay hops it takes — the traversed peers appear as routing nodes
  instead; probe replies and aggregated batches also count one each.  The
  wire-level hop count is tracked separately as ``hops``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import QueryTrace

__all__ = ["QueryStats", "QueryResult", "merge_index_ranges"]


def merge_index_ranges(
    ranges: "list[tuple[int, int]] | tuple[tuple[int, int], ...]",
) -> tuple[tuple[int, int], ...]:
    """Sort and coalesce inclusive index ranges into a canonical tuple.

    Used for :attr:`QueryResult.unresolved_ranges`: overlapping or adjacent
    ranges merge so the unresolved curve segments read as a minimal cover.
    """
    if not ranges:
        return ()
    ordered = sorted(ranges)
    merged: list[tuple[int, int]] = [ordered[0]]
    for low, high in ordered[1:]:
        last_low, last_high = merged[-1]
        if low <= last_high + 1:
            merged[-1] = (last_low, max(last_high, high))
        else:
            merged.append((low, high))
    return tuple(merged)


@dataclass
class QueryStats:
    """Mutable accumulator filled in while a query executes.

    The canonical read-out is :meth:`as_row` (the paper's five bar-chart
    columns) or :meth:`as_dict` (every field, flattened) — prefer these
    over ad-hoc attribute tuples so downstream tables share one set of
    field names.
    """

    routing_nodes: set[int] = field(default_factory=set)
    processing_nodes: set[int] = field(default_factory=set)
    data_nodes: set[int] = field(default_factory=set)
    messages: int = 0
    hops: int = 0
    clusters_processed: int = 0
    max_refinement_level: int = 0
    #: Branches of the query tree terminated by the paper's pruning
    #: optimization (the processing node owned the whole remainder).
    pruned_branches: int = 0
    #: Aggregated sibling batches sent (the paper's second optimization).
    aggregated_batches: int = 0
    #: Discovery mode only: sub-queries still in flight when the origin
    #: stopped the fan-out.  Their dispatch messages are included in
    #: ``messages`` (they were really sent) but no processing/scan cost was
    #: accrued for them — see :meth:`QueryEngine.execute`.
    aborted_in_flight: int = 0
    #: Simulated time until the last sub-query finished and its results
    #: returned to the origin (0.0 when no latency model is in use).
    completion_time: float = 0.0
    #: Simulated time at which the first match reached the origin (None when
    #: there were no matches or no latency model).
    time_to_first_match: float | None = None
    #: True when the initiator's cluster plan came from the system's
    #: :class:`~repro.core.plancache.PlanCache` instead of being refined
    #: (identical plans either way — the cache only skips the geometry work).
    plan_cache_hit: bool = False
    #: True when the whole result was served from the system's
    #: :class:`~repro.core.resultcache.ResultCache` — no sub-queries were
    #: sent, so the wire-cost fields are all zero for this query.
    result_cache_hit: bool = False
    #: Resilient execution only (all zero on a fault-free run): transmissions
    #: re-sent after a timeout (to the same destination, or re-routed to the
    #: new owner after a crash).
    retries: int = 0
    #: Sub-queries redirected to a ring successor after a destination
    #: exhausted its retry attempts.
    failovers: int = 0
    #: Transmissions the fault plane discarded (each was charged when sent).
    messages_dropped: int = 0
    #: Duplicate deliveries the fault plane produced (receivers deduplicate;
    #: the spurious copy still costs one direct message).
    messages_duplicated: int = 0
    #: Query-tree branches abandoned after the retry budget ran out; their
    #: unscanned curve segments appear in ``QueryResult.unresolved_ranges``.
    lost_branches: int = 0
    #: Query-tree branches shed by an overloaded node's
    #: :class:`~repro.guard.GuardPlane` (bounded queues / token buckets);
    #: like lost branches, their windows land in ``unresolved_ranges`` and
    #: the result reports ``complete=False``.  Always zero when no guard
    #: is configured or no guard tripped.
    shed_branches: int = 0

    def record_completion(self, time: float) -> None:
        if time > self.completion_time:
            self.completion_time = time

    def record_match_time(self, time: float) -> None:
        if self.time_to_first_match is None or time < self.time_to_first_match:
            self.time_to_first_match = time

    def record_path(self, path: tuple[int, ...]) -> None:
        """Charge one routed sub-query: one logical message, per-hop wire cost."""
        self.routing_nodes.update(path)
        self.messages += 1
        self.hops += len(path) - 1

    def record_direct(self, count: int = 1) -> None:
        """Charge direct point-to-point messages (replies, batches)."""
        self.messages += count
        self.hops += count

    def record_processing(self, node_id: int, level: int) -> None:
        self.processing_nodes.add(node_id)
        self.routing_nodes.add(node_id)
        self.clusters_processed += 1
        if level > self.max_refinement_level:
            self.max_refinement_level = level

    def record_data_node(self, node_id: int) -> None:
        self.data_nodes.add(node_id)

    def record_pruned(self, count: int = 1) -> None:
        self.pruned_branches += count

    def record_aggregated_batch(self, count: int = 1) -> None:
        self.aggregated_batches += count

    def record_retry(self, count: int = 1) -> None:
        self.retries += count

    def record_failover(self, count: int = 1) -> None:
        self.failovers += count

    def record_dropped(self, count: int = 1) -> None:
        self.messages_dropped += count

    def record_duplicate(self, count: int = 1) -> None:
        self.messages_duplicated += count

    def record_lost_branch(self, count: int = 1) -> None:
        self.lost_branches += count

    def record_shed_branch(self, count: int = 1) -> None:
        self.shed_branches += count

    # ------------------------------------------------------------------
    # Reduction (batch execution)
    # ------------------------------------------------------------------
    def merge(self, other: "QueryStats") -> "QueryStats":
        """Fold another query's statistics into this accumulator.

        Node sets union, additive costs add, ``max_refinement_level`` and
        ``completion_time`` take the maximum, ``time_to_first_match`` the
        minimum, and ``plan_cache_hit`` becomes true if *any* merged query
        hit the cache.  Merging is associative and order-insensitive (up to
        the boolean), which makes a batch's stats independent of how its
        chunks were distributed over workers.  Returns ``self``.
        """
        self.routing_nodes |= other.routing_nodes
        self.processing_nodes |= other.processing_nodes
        self.data_nodes |= other.data_nodes
        self.messages += other.messages
        self.hops += other.hops
        self.clusters_processed += other.clusters_processed
        self.pruned_branches += other.pruned_branches
        self.aggregated_batches += other.aggregated_batches
        self.aborted_in_flight += other.aborted_in_flight
        self.retries += other.retries
        self.failovers += other.failovers
        self.messages_dropped += other.messages_dropped
        self.messages_duplicated += other.messages_duplicated
        self.lost_branches += other.lost_branches
        self.shed_branches += other.shed_branches
        self.max_refinement_level = max(
            self.max_refinement_level, other.max_refinement_level
        )
        self.completion_time = max(self.completion_time, other.completion_time)
        if other.time_to_first_match is not None:
            if self.time_to_first_match is None:
                self.time_to_first_match = other.time_to_first_match
            else:
                self.time_to_first_match = min(
                    self.time_to_first_match, other.time_to_first_match
                )
        self.plan_cache_hit = self.plan_cache_hit or other.plan_cache_hit
        self.result_cache_hit = self.result_cache_hit or other.result_cache_hit
        return self

    @classmethod
    def reduce(cls, stats: "list[QueryStats] | Any") -> "QueryStats":
        """Merge an iterable of per-query stats into one fresh accumulator."""
        merged = cls()
        for s in stats:
            merged.merge(s)
        return merged

    @property
    def routing_node_count(self) -> int:
        return len(self.routing_nodes)

    @property
    def processing_node_count(self) -> int:
        return len(self.processing_nodes)

    @property
    def data_node_count(self) -> int:
        return len(self.data_nodes)

    def as_row(self) -> dict[str, int]:
        """The paper's bar-chart row for one query (the five §4.1 metrics)."""
        return {
            "routing_nodes": self.routing_node_count,
            "processing_nodes": self.processing_node_count,
            "data_nodes": self.data_node_count,
            "messages": self.messages,
            "hops": self.hops,
        }

    def as_dict(self) -> dict[str, Any]:
        """Every statistic, flattened with canonical field names.

        A strict superset of :meth:`as_row`; node sets appear as counts
        (``routing_nodes`` etc.), matching the row/table convention used by
        the experiments and benchmarks.
        """
        return {
            **self.as_row(),
            "clusters_processed": self.clusters_processed,
            "max_refinement_level": self.max_refinement_level,
            "pruned_branches": self.pruned_branches,
            "aggregated_batches": self.aggregated_batches,
            "aborted_in_flight": self.aborted_in_flight,
            "completion_time": self.completion_time,
            "time_to_first_match": self.time_to_first_match,
            "plan_cache_hit": self.plan_cache_hit,
            "result_cache_hit": self.result_cache_hit,
            "retries": self.retries,
            "failovers": self.failovers,
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "lost_branches": self.lost_branches,
            "shed_branches": self.shed_branches,
        }


@dataclass
class QueryResult:
    """Matches plus the cost statistics of resolving one query."""

    query: Any
    matches: list
    stats: QueryStats
    #: The structured refinement-tree trace, populated when a
    #: :class:`~repro.obs.trace.Tracer` is attached to the system.
    trace: "QueryTrace | None" = None
    #: False when fault injection prevented some curve segments from being
    #: resolved — the matches are a (certain) subset of the exact answer.
    #: Fault-free executions always report True (the paper's completeness
    #: guarantee).
    complete: bool = True
    #: The inclusive curve-index ranges that went unreached (sorted,
    #: coalesced via :func:`merge_index_ranges`); empty iff ``complete``.
    unresolved_ranges: tuple[tuple[int, int], ...] = ()

    @property
    def match_count(self) -> int:
        return len(self.matches)

    @property
    def unresolved_span(self) -> int:
        """Total number of curve indices covered by ``unresolved_ranges``."""
        return sum(high - low + 1 for low, high in self.unresolved_ranges)

    def match_keys(self) -> set:
        """Distinct keyword combinations among the matches."""
        return {element.key for element in self.matches}
