"""Snapshot persistence: save/load a whole deployment as JSON.

A snapshot captures everything needed to reconstruct a system bit-for-bit:
the keyword-space schema, curve family, ring membership, and every stored
element.  Reloading rebuilds identical placement (the mapping is
deterministic), so experiments can be checkpointed and workloads shared.

Payloads must be JSON-serializable; keys are re-validated on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.system import SquidSystem
from repro.errors import ReproError
from repro.keywords.dimensions import (
    CategoricalDimension,
    Dimension,
    NumericDimension,
    WordDimension,
)
from repro.keywords.space import KeywordSpace
from repro.overlay.chord import ChordRing
from repro.sfc import make_curve

__all__ = ["SnapshotError", "system_to_dict", "system_from_dict", "save_system", "load_system"]

FORMAT_VERSION = 1


class SnapshotError(ReproError):
    """Snapshot serialization/deserialization errors."""


# ----------------------------------------------------------------------
# Dimension schema
# ----------------------------------------------------------------------
def _dimension_to_dict(dim: Dimension) -> dict[str, Any]:
    if isinstance(dim, WordDimension):
        return {"type": "word", "name": dim.name}
    if isinstance(dim, NumericDimension):
        return {
            "type": "numeric",
            "name": dim.name,
            "minimum": dim.minimum,
            "maximum": dim.maximum,
            "log_scale": dim.log_scale,
        }
    if isinstance(dim, CategoricalDimension):
        return {"type": "categorical", "name": dim.name, "categories": list(dim.categories)}
    raise SnapshotError(f"cannot serialize dimension type {type(dim).__name__}")


def _dimension_from_dict(data: dict[str, Any]) -> Dimension:
    kind = data.get("type")
    if kind == "word":
        return WordDimension(data["name"])
    if kind == "numeric":
        return NumericDimension(
            data["name"], data["minimum"], data["maximum"], log_scale=data["log_scale"]
        )
    if kind == "categorical":
        return CategoricalDimension(data["name"], list(data["categories"]))
    raise SnapshotError(f"unknown dimension type {kind!r}")


# ----------------------------------------------------------------------
# System round-trip
# ----------------------------------------------------------------------
def system_to_dict(system: SquidSystem) -> dict[str, Any]:
    """Serialize a system (schema + membership + elements) to plain data."""
    elements = []
    for store in system.stores.values():
        for element in store.all_elements():
            elements.append({"key": list(element.key), "payload": element.payload})
    return {
        "format": FORMAT_VERSION,
        "space": {
            "bits": system.space.bits,
            "dimensions": [_dimension_to_dict(d) for d in system.space.dimensions],
        },
        "curve": system.curve.name,
        "node_ids": system.overlay.node_ids(),
        "elements": elements,
    }


def system_from_dict(data: dict[str, Any]) -> SquidSystem:
    """Rebuild a system from :func:`system_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise SnapshotError(f"unsupported snapshot format {data.get('format')!r}")
    space = KeywordSpace(
        [_dimension_from_dict(d) for d in data["space"]["dimensions"]],
        bits=int(data["space"]["bits"]),
    )
    curve = make_curve(data["curve"], space.dims, space.bits)
    ring = ChordRing.build(curve.index_bits, [int(i) for i in data["node_ids"]])
    system = SquidSystem(space, ring, curve=curve)
    system.publish_many(
        [tuple(e["key"]) for e in data["elements"]],
        payloads=[e["payload"] for e in data["elements"]],
    )
    return system


def save_system(system: SquidSystem, path: str | Path) -> None:
    """Write a snapshot as JSON."""
    payload = system_to_dict(system)
    try:
        text = json.dumps(payload)
    except TypeError as exc:
        raise SnapshotError(f"payloads must be JSON-serializable: {exc}") from None
    Path(path).write_text(text, encoding="utf-8")


def load_system(path: str | Path) -> SquidSystem:
    """Load a snapshot written by :func:`save_system`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from None
    return system_from_dict(data)
