"""Hot-spot mitigation via result caching — paper future work (§5).

Popular queries in a discovery system follow their own Zipf law; without
mitigation the peers owning popular index regions absorb the load of every
repetition ("hot-spots").  The standard DHT remedy (consistent-hashing
caching, the paper's reference [9]) caches a query's result at a well-known
*home* node so repetitions short-circuit before fanning out.

:class:`CachingQueryLayer` implements that protocol over a live system:

* every query has a deterministic **home** — the successor of its covering
  region's first curve index (the same node the first sub-query visits);
* a cache **hit** costs one routed message to the home plus the reply;
* a **miss** runs the full distributed engine and installs the result at
  the home node (one extra message);
* publishes bump a global version; stale entries miss and are refreshed —
  results therefore stay exact under writes.

:class:`HotspotMonitor` tracks per-node processing load over a query stream
so the mitigation's effect on the maximum node load is measurable (see
``benchmarks/test_hotspots.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.metrics import QueryResult, QueryStats
from repro.core.system import SquidSystem
from repro.errors import EngineError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import LocalScan, MessageSent
from repro.util.rng import RandomLike, as_generator

__all__ = ["CacheStats", "HotspotMonitor", "CachingQueryLayer"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stale_refreshes: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class HotspotMonitor:
    """Per-node processing-load accounting over a stream of queries."""

    processing_load: dict[int, int] = field(default_factory=dict)

    def record(self, stats: QueryStats) -> None:
        for node_id in stats.processing_nodes:
            self.processing_load[node_id] = self.processing_load.get(node_id, 0) + 1

    def max_load(self) -> int:
        return max(self.processing_load.values(), default=0)

    def total_load(self) -> int:
        return sum(self.processing_load.values())

    def hottest(self, count: int = 5) -> list[tuple[int, int]]:
        """The ``count`` most loaded nodes as ``(node_id, load)`` pairs."""
        ranked = sorted(self.processing_load.items(), key=lambda kv: -kv[1])
        return ranked[:count]


@dataclass
class _CacheEntry:
    version: int
    matches: list
    uses: int = 0


class CachingQueryLayer:
    """Query-result caching at deterministic home nodes.

    ``replicas > 1`` spreads each query's cache over that many consecutive
    homes (the primary home and its ring successors): requesters pick one
    pseudo-randomly, so even the cache of a very hot query no longer
    concentrates on a single peer (consistent-hashing caching, the paper's
    reference [9]).
    """

    def __init__(
        self,
        system: SquidSystem,
        capacity_per_node: int = 64,
        replicas: int = 1,
    ) -> None:
        if capacity_per_node < 1:
            raise EngineError("capacity_per_node must be >= 1")
        if replicas < 1:
            raise EngineError("replicas must be >= 1")
        self.system = system
        self.capacity = capacity_per_node
        self.replicas = replicas
        self.stats = CacheStats()
        self.monitor = HotspotMonitor()
        self._caches: dict[int, dict[str, _CacheEntry]] = {}
        self._version = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def publish(self, key, payload: Any = None):
        """Publish through the system, invalidating cached results."""
        self._version += 1
        return self.system.publish(key, payload=payload)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def home_of(self, query) -> int:
        """The deterministic cache home of a query.

        The home is the owner of the query's first level-1 cluster — the
        first node the distributed resolution visits anyway, so a miss adds
        no detour and a hit stops exactly where the fan-out would begin.
        """
        from repro.sfc.clusters import refine_cluster, root_cluster

        q = self.system.space.as_query(query)
        region = self.system.space.region(q)
        curve = self.system.curve
        root = root_cluster(curve, region)
        assert root is not None
        first = refine_cluster(curve, root, region, min_index=0)
        anchor = first[0] if first else root
        return self.system.overlay.owner(anchor.min_index(curve))

    def homes_of(self, query) -> list[int]:
        """All cache homes: the primary and its ``replicas - 1`` successors."""
        primary = self.home_of(query)
        homes = [primary]
        current = primary
        for _ in range(self.replicas - 1):
            current = self.system.overlay.successor_id(current)
            if current == primary:
                break
            homes.append(current)
        return homes

    def query(
        self, query, origin: int | None = None, rng: RandomLike = None
    ) -> QueryResult:
        """Resolve a query through the cache; exact results always."""
        q = self.system.space.as_query(query)
        canonical = str(q)
        homes = self.homes_of(q)

        gen = as_generator(rng)
        ids = self.system.overlay.node_ids()
        if origin is None:
            origin = ids[int(gen.integers(0, len(ids)))]
        # Requesters spread over the replica homes pseudo-randomly.
        home = homes[int(gen.integers(0, len(homes)))]

        reg = obs_metrics.active()
        cache = self._caches.setdefault(home, {})
        entry = cache.get(canonical)
        if entry is not None and entry.version == self._version:
            # Hit: the query routes to the chosen home, which answers.
            stats = QueryStats()
            route = self.system.overlay.route(origin, home)
            stats.record_path(route.path)
            stats.record_direct()  # the cached-result reply
            stats.record_processing(home, 0)
            self.stats.hits += 1
            entry.uses += 1
            self.monitor.record(stats)
            if reg is not None:
                reg.counter("cache.hits").inc()
            trace = None
            if self.system.tracer is not None:
                trace = self.system.tracer.begin(canonical, origin)
                root = trace.new_span(None, origin, 0)
                span = trace.new_span(root, home, 0)
                trace.emit(
                    span,
                    MessageSent(
                        origin, home, "cache",
                        hops=len(route.path) - 1, path=route.path,
                    ),
                )
                trace.emit(span, LocalScan(home, 1, len(entry.matches)))
                trace.emit(root, MessageSent(home, origin, "reply", hops=1))
            return QueryResult(q, list(entry.matches), stats, trace)

        if entry is not None:
            self.stats.stale_refreshes += 1
        self.stats.misses += 1
        if reg is not None:
            reg.counter("cache.misses").inc()
        result = self.system.query(q, origin=origin, rng=gen)
        # Install at every replica home (one direct message each).
        result.stats.record_direct(len(homes))
        if result.trace is not None and result.trace.spans:
            for node in homes:
                result.trace.emit(
                    result.trace.root.span_id,
                    MessageSent(origin, node, "cache", hops=1),
                )
        for node in homes:
            self._install(
                self._caches.setdefault(node, {}), canonical, result.matches
            )
        self.monitor.record(result.stats)
        return result

    def _install(self, cache: dict[str, _CacheEntry], canonical: str, matches: list) -> None:
        if len(cache) >= self.capacity and canonical not in cache:
            # Evict the least-used entry (ties: arbitrary but deterministic).
            victim = min(cache.items(), key=lambda kv: (kv[1].uses, kv[0]))[0]
            del cache[victim]
            self.stats.evictions += 1
            reg = obs_metrics.active()
            if reg is not None:
                reg.counter("cache.evictions").inc()
        cache[canonical] = _CacheEntry(version=self._version, matches=list(matches))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cached_queries(self) -> int:
        return sum(len(c) for c in self._caches.values())
