"""Attack resistance — the paper's §5 "resistance to attacks" future work.

Threat model: a fraction of peers are *query-droppers* — they accept
sub-queries and silently discard them (neither searching their store nor
forwarding the remainder).  This is the classic routing-layer attack on
structured overlays: it silently punches holes in the result set, violating
Squid's completeness guarantee.

Mitigations layered on the standard DHT defenses:

* **retry** — the sender times out on an unresponsive peer and re-sends the
  sub-query to that peer's ring successor, which continues the resolution
  (the chain routes *around* the dropper).  This restores the fan-out but
  not the dropper's own data…
* **replication** — …which a :class:`~repro.core.replication.ReplicationManager`
  restores: the successor scans its replica store for the dropped peer's
  share of the cluster.

:class:`AdversarialEngine` implements the threat and both mitigations;
``run_attack_experiment`` measures recall vs. dropper fraction for each
configuration (extension experiment ``extE``).
"""

from __future__ import annotations

from collections import deque

from repro.core.engine import OptimizedEngine, _clip_ranges
from repro.core.metrics import QueryResult, QueryStats
from repro.core.replication import ReplicationManager
from repro.errors import EngineError
from repro.sfc.clusters import refine_cluster, root_cluster
from repro.util.rng import RandomLike, as_generator

__all__ = ["AdversarialEngine", "run_attack_experiment"]


class AdversarialEngine(OptimizedEngine):
    """The optimized engine under a query-dropping adversary.

    ``droppers`` is the set of malicious node identifiers.  With
    ``retry=True`` the sender detects the missing reply and redirects the
    sub-query to the dropper's successor; with a ``replication`` manager
    attached, that successor additionally serves the dropper's data from
    its replica store.
    """

    name = "adversarial"

    def __init__(
        self,
        droppers: set[int],
        retry: bool = False,
        replication: ReplicationManager | None = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.droppers = set(droppers)
        self.retry = retry
        self.replication = replication

    def execute(
        self,
        system,
        query,
        origin: int | None = None,
        rng: RandomLike = None,
        limit: int | None = None,
    ) -> QueryResult:
        """Resolve ``query`` in the presence of droppers (see class docstring)."""
        q = system.space.as_query(query)
        region = system.space.region(q)
        curve = system.curve
        overlay = system.overlay
        stats = QueryStats()
        matches: list = []

        origin_id = self._pick_origin(system, origin, rng)
        if origin_id in self.droppers:
            # A malicious origin returns nothing at all.
            stats.record_processing(origin_id, 0)
            return QueryResult(q, [], stats)
        root = root_cluster(curve, region)
        if root is None:  # pragma: no cover - regions never empty
            return QueryResult(q, [], stats)

        stats.record_processing(origin_id, 0)
        first = self._refine_locally(curve, root, region, min_index=0)
        # Work entries: (processing_node, cluster, arrival_key, covered_up_to,
        # replica_of).  ``covered_up_to`` is the identifier whose key range
        # this visit resolves: the node's own id normally, or the dropped
        # peer's id on a retry visit (served from replicas) — pruning and
        # continuation use the *covered* range, not the processor's identity.
        work: deque = deque()
        self._adversarial_dispatch(system, stats, origin_id, first, work, floor=0)

        while work:
            node_id, cluster, arrival_key, covered, replica_of = work.popleft()
            stats.record_processing(node_id, cluster.level)
            window_high = covered if arrival_key <= covered else curve.size - 1
            ranges = _clip_ranges(
                cluster.iter_index_ranges(curve), arrival_key, window_high
            )
            found = list(self._scan_cluster(system, node_id, ranges, q))
            if replica_of is not None and self.replication is not None:
                found.extend(self._scan_replicas(system, node_id, ranges, q))
            if found:
                matches.extend(found)
                stats.record_data_node(node_id)

            cluster_max = cluster.max_index(curve)
            if cluster_max <= covered:
                continue
            # `covered` is a live identifier (the processor's, or the live-
            # but-malicious dropper's); its predecessor bounds the range.
            pred_of_covered = overlay.predecessor_id(covered)
            if pred_of_covered == covered:
                continue  # single node: owns everything
            if pred_of_covered > covered and arrival_key > pred_of_covered:
                continue  # wrapped range: the tail segment is fully covered
            remainder = self._refine_locally(
                curve, cluster, region, min_index=covered + 1
            )
            self._adversarial_dispatch(
                system, stats, node_id, remainder, work, floor=covered + 1
            )
        return QueryResult(q, matches, stats)

    # ------------------------------------------------------------------
    def _scan_replicas(self, system, node_id: int, ranges, q) -> list:
        """Serve a dropped predecessor's share from the replica store."""
        store = self.replication.replicas.get(node_id)
        if store is None:
            return []
        found = []
        for low, high in ranges:
            for element in store.scan_range(low, high):
                if system.space.matches(element.key, q):
                    found.append(element)
        return found

    def _adversarial_dispatch(
        self, system, stats, sender_id, clusters, work, floor
    ) -> None:
        """Dispatch with drop/timeout/retry semantics (no aggregation —
        the probe/reply handshake is what detects droppers, so each group
        costs its probe regardless)."""
        if not clusters:
            return
        curve = system.curve
        overlay = system.overlay
        for cluster in sorted(clusters, key=lambda c: c.min_index(curve)):
            key = max(cluster.min_index(curve), floor)
            dest = overlay.owner(key)
            if dest != sender_id:
                route = overlay.route(sender_id, key)
                stats.record_path(route.path)
            if dest in self.droppers:
                if not self.retry:
                    continue  # silently swallowed: the branch dies here
                # Timeout detected; resend to the dropper's successor, which
                # covers the dropper's key range from replicas.  The visit's
                # coverage is the *dropper's* range; the backup's own share
                # of the cluster follows via the normal continuation.
                backup = overlay.successor_id(dest)
                if backup in self.droppers or backup == dest:
                    continue  # two droppers in a row defeat single retry
                stats.record_direct()  # the retry message
                stats.routing_nodes.add(backup)
                work.append((backup, cluster, key, dest, dest))
            else:
                work.append((dest, cluster, key, dest, None))


def run_attack_experiment(
    system,
    queries,
    dropper_fraction: float,
    retry: bool,
    replication_degree: int = 0,
    rng: RandomLike = None,
) -> dict[str, float]:
    """Mean recall and cost under an attack configuration.

    Droppers are sampled uniformly; the query origins are always honest
    (an attacked requester trivially gets nothing).  Returns mean recall
    over the query set plus mean messages.
    """
    if not 0 <= dropper_fraction < 1:
        raise EngineError("dropper_fraction must be in [0, 1)")
    gen = as_generator(rng)
    ids = system.overlay.node_ids()
    n_droppers = int(dropper_fraction * len(ids))
    droppers = set(
        int(x) for x in gen.choice(ids, size=n_droppers, replace=False)
    )
    manager = (
        ReplicationManager(system, degree=replication_degree)
        if replication_degree
        else None
    )
    engine = AdversarialEngine(droppers, retry=retry, replication=manager)
    honest = [nid for nid in ids if nid not in droppers]
    recalls = []
    messages = []
    for query in queries:
        want = {id(e) for e in system.brute_force_matches(query)}
        origin = honest[int(gen.integers(0, len(honest)))]
        result = engine.execute(system, query, origin=origin, rng=gen)
        got = {id(e) for e in result.matches}
        recalls.append(len(got & want) / len(want) if want else 1.0)
        messages.append(result.stats.messages)
    return {
        "recall": float(sum(recalls) / len(recalls)),
        "messages": float(sum(messages) / len(messages)),
        "droppers": float(len(droppers)),
    }
