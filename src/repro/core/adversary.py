"""Attack resistance — the paper's §5 "resistance to attacks" future work.

Threat model: a fraction of peers are *query-droppers* — they accept
sub-queries and silently discard them (neither searching their store nor
forwarding the remainder).  This is the classic routing-layer attack on
structured overlays: it silently punches holes in the result set, violating
Squid's completeness guarantee.

Mitigations layered on the standard DHT defenses:

* **retry** — the sender times out on an unresponsive peer and re-sends the
  sub-query to that peer's ring successor, which continues the resolution
  (the chain routes *around* the dropper).  This restores the fan-out but
  not the dropper's own data…
* **replication** — …which a :class:`~repro.core.replication.ReplicationManager`
  restores: the successor scans its replica store for the dropped peer's
  share of the cluster.

:class:`AdversarialEngine` expresses the threat as a droppers-only
:class:`~repro.faults.FaultPlane` and both mitigations as a single-attempt
:class:`~repro.faults.RetryPolicy` with failover — the generic resilient
delivery of :class:`~repro.core.engine.OptimizedEngine` does the rest, so
the adversarial path shares one retry/failover implementation with the
probabilistic fault experiments.  ``run_attack_experiment`` measures recall
vs. dropper fraction for each configuration (extension experiment ``extE``).
"""

from __future__ import annotations

from repro.core.engine import EngineRun, OptimizedEngine
from repro.core.metrics import QueryResult
from repro.core.replication import ReplicationManager
from repro.errors import EngineError
from repro.faults import FaultPlane, RetryPolicy
from repro.util.rng import RandomLike, as_generator

__all__ = ["AdversarialEngine", "run_attack_experiment"]


class AdversarialEngine(OptimizedEngine):
    """The optimized engine under a query-dropping adversary.

    ``droppers`` is the set of malicious node identifiers.  With
    ``retry=True`` the sender detects the missing reply and redirects the
    sub-query to the dropper's successor; with a ``replication`` manager
    attached, that successor additionally serves the dropper's data from
    its replica store.

    Aggregation is disabled because the probe/reply handshake is what
    detects droppers — each destination group costs its probe regardless.
    The adversarial retry is a single attempt with failover and no jitter
    (droppers never respond, so retransmitting to them is pointless and the
    schedule stays deterministic).
    """

    name = "adversarial"

    def __init__(
        self,
        droppers: set[int],
        retry: bool = False,
        replication: ReplicationManager | None = None,
        **kwargs,
    ) -> None:
        kwargs.setdefault("aggregate", False)
        policy = (
            RetryPolicy(max_attempts=1, budget=4, failover=True, max_jitter=0.0)
            if retry
            else None
        )
        super().__init__(
            fault_plane=FaultPlane(droppers=droppers),
            retry=policy,
            replication=replication,
            **kwargs,
        )
        self.droppers = self.fault_plane.droppers

    def begin_run(
        self,
        system,
        query,
        origin: int | None = None,
        rng: RandomLike = None,
        limit: int | None = None,
        priority=None,
    ) -> EngineRun:
        """Start a run unless the origin itself is a dropper.

        The short-circuit lives here (not in ``execute``) so the behaviour
        is identical whether the engine runs through ``execute``'s built-in
        synchronous pump or over a :mod:`repro.net.transport` transport.
        """
        origin_id = self._pick_origin(system, origin, rng)
        if origin_id in self.droppers:
            # A malicious origin returns nothing at all: the entire index
            # space goes unresolved.
            run = EngineRun()
            q = run.query = system.space.as_query(query)
            run.origin_id = origin_id
            run.stats.record_processing(origin_id, 0)
            full_space = (0, system.curve.size - 1)
            run.early_result = QueryResult(
                q, [], run.stats, complete=False, unresolved_ranges=(full_space,)
            )
            return run
        return super().begin_run(
            system, query, origin=origin_id, rng=rng, limit=limit,
            priority=priority,
        )


def run_attack_experiment(
    system,
    queries,
    dropper_fraction: float,
    retry: bool,
    replication_degree: int = 0,
    rng: RandomLike = None,
) -> dict[str, float]:
    """Mean recall and cost under an attack configuration.

    Droppers are sampled uniformly; the query origins are always honest
    (an attacked requester trivially gets nothing).  Returns mean recall
    over the query set plus mean messages.
    """
    if not 0 <= dropper_fraction < 1:
        raise EngineError("dropper_fraction must be in [0, 1)")
    gen = as_generator(rng)
    ids = system.overlay.node_ids()
    n_droppers = int(dropper_fraction * len(ids))
    droppers = set(
        int(x) for x in gen.choice(ids, size=n_droppers, replace=False)
    )
    manager = (
        ReplicationManager(system, degree=replication_degree)
        if replication_degree
        else None
    )
    engine = AdversarialEngine(droppers, retry=retry, replication=manager)
    honest = [nid for nid in ids if nid not in droppers]
    recalls = []
    messages = []
    for query in queries:
        want = {id(e) for e in system.brute_force_matches(query)}
        origin = honest[int(gen.integers(0, len(honest)))]
        result = engine.execute(system, query, origin=origin, rng=gen)
        got = {id(e) for e in result.matches}
        recalls.append(len(got & want) / len(want) if want else 1.0)
        messages.append(result.stats.messages)
    return {
        "recall": float(sum(recalls) / len(recalls)),
        "messages": float(sum(messages) / len(messages)),
        "droppers": float(len(droppers)),
    }
