"""Query engines: naive per-cluster messaging vs. the paper's optimized
distributed refinement (§3.4).

Both engines return the exact match set; they differ in *where* clusters are
generated and hence in cost:

* :class:`NaiveEngine` — the paper's strawman (§3.4.1): the initiator resolves
  the query's clusters completely and sends one message per cluster.  Cost
  grows with the number of clusters, which "can be prohibitive".
* :class:`OptimizedEngine` — the paper's contribution (§3.4.2): cluster
  generation is *distributed*.  The initiator refines the query once and
  sends each level-1 cluster toward the node owning its identifier; each
  receiving node searches its local store, then refines only the remainder
  of the cluster that lies beyond its own ring range, forwarding the
  sub-clusters onward.  Two optimizations apply:

  - **pruning** — when a node owns a cluster's entire remaining index range,
    the recursion stops there (the query tree is pruned at that branch);
    since load balancing makes nodes follow the data distribution, sparse
    subtrees terminate at shallow depth;
  - **aggregation** — sibling sub-clusters are sorted by identifier, the
    first is probed into the network, the destination replies with its
    identity, and all sub-clusters belonging to that destination travel as a
    single batched message.

Correctness argument (tested exhaustively against a brute-force oracle): the
covering region contains the coordinates of every matching key; clusters
cover the region's entire curve image; each forwarded remainder is trimmed
only below the processing node's identifier, whose owned range was just
scanned — so every index of every cluster is scanned by exactly the node
that owns it, and the exact-match post-filter removes quantization
spillover.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from time import perf_counter
from typing import TYPE_CHECKING

from repro.core.metrics import QueryResult, QueryStats, merge_index_ranges
from repro.core.plancache import plan_key
from repro.errors import EngineError
from repro.guard.plane import priority_rank
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs.trace import (
    Aggregated,
    BranchLost,
    BranchShed,
    ClusterRefined,
    LocalScan,
    MessageSent,
    Pruned,
    QueryTrace,
)
from repro.sfc.clusters import Cluster, refine_cluster, resolve_clusters, root_cluster
from repro.util.rng import RandomLike, as_generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replication import ReplicationManager
    from repro.core.system import SquidSystem
    from repro.faults import FaultPlane, RetryPolicy
    from repro.guard import GuardPlane

__all__ = [
    "QueryEngine",
    "NaiveEngine",
    "OptimizedEngine",
    "EngineRun",
    "drive_sync",
    "default_hop_budget",
    "make_engine",
]


def default_hop_budget(n_nodes: int) -> int:
    """Default per-query routing hop budget for a ring of ``n_nodes``.

    Healthy queries process a number of work entries bounded by the query
    tree's width (itself bounded by node count times per-node cluster
    fan-in), so a generous multiple of the ring size never triggers; a
    routing *cycle* — stale successor/predecessor pointers after a crash
    that was never stabilized — regenerates entries forever and exhausts
    any finite budget.  Exhaustion degrades the query to an honest
    ``complete=False`` partial result instead of a hang.
    """
    return max(1024, 64 * n_nodes)


def _report_query_metrics(engine_name: str, stats: QueryStats) -> None:
    """Publish one query's cost into the active metrics registry, if any."""
    reg = obs_metrics.active()
    if reg is None:
        return
    reg.counter(f"engine.{engine_name}.queries").inc()
    reg.counter("query.messages.total").inc(stats.messages)
    reg.counter("query.pruned_branches.total").inc(stats.pruned_branches)
    reg.counter("query.aggregated_batches.total").inc(stats.aggregated_batches)
    reg.histogram("query.messages").observe(stats.messages)
    reg.histogram("query.hops").observe(stats.hops)
    reg.histogram("query.processing_nodes").observe(stats.processing_node_count)
    # Resilience counters appear only once a fault actually bit: fault-free
    # runs (and inert fault planes) leave the registry byte-identical to a
    # plain engine's, which the zero-fault identity tests rely on.
    if stats.retries:
        reg.counter("query.retries.total").inc(stats.retries)
    if stats.failovers:
        reg.counter("query.failovers.total").inc(stats.failovers)
    if stats.lost_branches:
        reg.counter("query.lost_branches.total").inc(stats.lost_branches)
    if stats.shed_branches:
        reg.counter("query.shed_branches.total").inc(stats.shed_branches)


def _clip_ranges(ranges, low: int, high: int):
    """Intersect inclusive index ranges with the window ``[low, high]``."""
    out = []
    for lo, hi in ranges:
        clipped_lo = max(lo, low)
        clipped_hi = min(hi, high)
        if clipped_lo <= clipped_hi:
            out.append((clipped_lo, clipped_hi))
    return out


class EngineRun:
    """Mutable per-query state threaded through the engine's run API.

    A run decouples *engine logic* from *message delivery*: the engine
    mutates this state in :meth:`QueryEngine.begin_run` /
    :meth:`QueryEngine.process_message` / :meth:`QueryEngine.finish_run`,
    while a transport decides when and where each queued work entry is
    delivered.  :func:`drive_sync` is the in-process synchronous transport
    (a FIFO deque — the original simulation order);
    :class:`repro.net.transport.AsyncioTransport` delivers the same entries
    through per-node asyncio inboxes.

    ``outbox`` collects the work entries posted by the last engine call;
    the transport drains it with :meth:`take_outbox` after every call.
    ``budget``/``used`` implement the routing hop budget (see
    :func:`default_hop_budget`); ``exhausted`` latches once it trips.
    """

    __slots__ = (
        "query",
        "region",
        "origin_id",
        "stats",
        "matches",
        "trace",
        "root_span",
        "limit",
        "plane",
        "guard",
        "priority",
        "unresolved",
        "budget",
        "used",
        "outbox",
        "exhausted",
        "early_result",
        "ranges",
    )

    def __init__(self) -> None:
        self.query = None
        self.region = None
        self.origin_id = 0
        self.stats = QueryStats()
        self.matches: list = []
        self.trace: QueryTrace | None = None
        self.root_span = 0
        self.limit: int | None = None
        self.plane = None
        #: The engine's :class:`~repro.guard.GuardPlane` when it is active,
        #: else ``None`` — mirroring ``plane``, an inert guard is bypassed
        #: entirely so unguarded runs stay on the exact same code path.
        self.guard = None
        #: Numeric priority rank of this query (0 = interactive).
        self.priority = 0
        self.unresolved: list[tuple[int, int]] = []
        self.budget = 0
        self.used = 0
        self.outbox: list = []
        self.exhausted = False
        self.early_result: QueryResult | None = None
        #: Naive engine only: the fully resolved cluster ranges.
        self.ranges: list[tuple[int, int]] = []

    def take_outbox(self) -> list:
        """Drain and return the entries posted since the last drain."""
        out = self.outbox
        self.outbox = []
        return out

    def _charge_hop(self) -> bool:
        """Consume one unit of the hop budget; False once it is exhausted.

        The first exhaustion is counted in the active metrics registry —
        like the resilience counters, the metric appears only when the
        budget actually bites, keeping fault-free registries byte-identical.
        """
        if self.used >= self.budget:
            if not self.exhausted:
                self.exhausted = True
                reg = obs_metrics.active()
                if reg is not None:
                    reg.counter("query.hop_budget_exhausted.total").inc()
            return False
        self.used += 1
        return True


def drive_sync(engine: "QueryEngine", system: "SquidSystem", run: EngineRun) -> QueryResult:
    """Synchronous in-process delivery: pump the run's queue in FIFO order.

    This reproduces the original single-process simulation exactly — every
    posted work entry is processed in post order — and is what
    ``engine.execute`` (and therefore ``SquidSystem.query``) runs on.
    """
    guard = run.guard
    work: deque = deque(run.take_outbox())
    if guard is not None:
        for queued in work:
            guard.note_posted(engine.entry_node(run, queued))
    while work:
        entry = work.popleft()
        if not engine.process_message(system, run, entry):
            # Discovery-mode stop: outstanding branches are abandoned; their
            # dispatch messages are already (truthfully) counted.
            run.stats.aborted_in_flight = len(work)
            if guard is not None:
                for queued in work:
                    guard.note_abandoned(engine.entry_node(run, queued))
            break
        fresh = run.take_outbox()
        if guard is not None:
            for queued in fresh:
                guard.note_posted(engine.entry_node(run, queued))
        work.extend(fresh)
    return engine.finish_run(system, run)


class QueryEngine(ABC):
    """Strategy interface for resolving one query on a Squid system."""

    name: str = "abstract"

    @abstractmethod
    def execute(
        self,
        system: "SquidSystem",
        query,
        origin: int | None = None,
        rng: RandomLike = None,
        limit: int | None = None,
        priority=None,
    ) -> QueryResult:
        """Resolve ``query``; return matches plus cost statistics.

        ``limit`` switches to *discovery mode*: resolution stops as soon as
        at least ``limit`` matches are known (a few extra may be returned —
        the batch that crossed the threshold is kept whole).  Without a
        limit the paper's completeness guarantee applies: every match is
        returned.

        ``priority`` is the query's class (``"interactive"`` / ``"batch"``
        / ``"background"``, a rank, or ``None`` = interactive) consulted by
        the engine's :class:`~repro.guard.GuardPlane`, when one is armed,
        to decide what an overloaded node sheds first.  Without a guard the
        priority is carried but has no effect on execution.

        Discovery-mode cost semantics (``stats`` stays truthful under the
        early exit):

        * ``messages``/``hops``/``routing_nodes`` count everything actually
          sent up to the stop, *including* sub-queries dispatched but not
          yet processed when the origin aborted the fan-out — those were
          really on the wire; their number is reported separately as
          ``stats.aborted_in_flight``.
        * ``processing_nodes``/``data_nodes``/``clusters_processed`` cover
          only work actually performed; abandoned branches contribute
          nothing.
        * ``completion_time`` is the completion of the last *processed*
          sub-query (abandoned branches are never waited on).
        """

    # ------------------------------------------------------------------
    # Transport-facing run API (engine logic without message delivery)
    # ------------------------------------------------------------------
    def begin_run(
        self,
        system: "SquidSystem",
        query,
        origin: int | None = None,
        rng: RandomLike = None,
        limit: int | None = None,
        priority=None,
    ) -> EngineRun:
        """Start a query run: initiator-side setup plus the first dispatch.

        Returns an :class:`EngineRun` whose ``outbox`` holds the initial
        work entries; the transport delivers each entry (in post order) to
        :meth:`process_message` and calls :meth:`finish_run` once no entry
        is outstanding.  Engines that do not implement the run API cannot
        be served over a transport.
        """
        raise EngineError(f"engine {self.name!r} does not support transports")

    def process_message(self, system: "SquidSystem", run: EngineRun, entry) -> bool:
        """Handle one delivered work entry, posting follow-ups to the outbox.

        Returns False when the run must stop early (discovery-mode limit
        reached); the transport then records the outstanding entry count as
        ``stats.aborted_in_flight`` and discards the queue.
        """
        raise EngineError(f"engine {self.name!r} does not support transports")

    def entry_node(self, run: EngineRun, entry) -> int:
        """The node whose inbox should receive ``entry`` (transport routing)."""
        raise EngineError(f"engine {self.name!r} does not support transports")

    def finish_run(self, system: "SquidSystem", run: EngineRun) -> QueryResult:
        """Seal a run: report metrics and assemble the :class:`QueryResult`."""
        if run.early_result is not None:
            return run.early_result
        if run.exhausted and run.matches:
            # A routing cycle re-scans stores it already visited, so the
            # abandoned run may have collected the same stored elements
            # repeatedly; restore set semantics (stores hand out stable
            # object identities) while keeping first-seen order.
            seen: set[int] = set()
            run.matches = [
                m for m in run.matches
                if id(m) not in seen and not seen.add(id(m))
            ]
        _report_query_metrics(self.name, run.stats)
        resolved_gaps = merge_index_ranges(run.unresolved)
        return QueryResult(
            run.query,
            run.matches,
            run.stats,
            run.trace,
            complete=not resolved_gaps,
            unresolved_ranges=resolved_gaps,
        )

    def result_cache_params(self):
        """Hashable engine parameters that shape the *answer* of a query.

        Used as the engine component of :func:`repro.core.resultcache.result_key`.
        Engines whose configuration can change which matches are returned
        (never the case for the stock engines — only cost varies) still
        include their plan-shaping parameters so cached entries are reused
        exactly when the plan cache would reuse a plan.  ``None`` (the base
        default) opts the engine out of result caching entirely.
        """
        return None

    def _pick_origin(
        self, system: "SquidSystem", origin: int | None, rng: RandomLike
    ) -> int:
        ids = system.overlay.node_ids()
        if not ids:
            raise EngineError("cannot query an empty system")
        if origin is not None:
            if origin not in system.overlay.nodes:
                raise EngineError(f"origin {origin} is not a live node")
            return origin
        gen = as_generator(rng)
        return ids[int(gen.integers(0, len(ids)))]

    @staticmethod
    def _scan_cluster(system: "SquidSystem", node_id: int, cluster_ranges, query) -> list:
        """Search one node's store over the cluster's index ranges.

        Timed under the ``engine.scan`` phase when profiling is enabled.
        """
        prof = obs_profile._PROFILER
        start = perf_counter() if prof is not None else 0.0
        store = system.stores[node_id]
        matches = system.space.matches
        # Cluster piece ranges arrive sorted and disjoint, so the whole
        # batch is one pass over the store's sorted index list.
        found = [
            element
            for element in store.scan_ranges(cluster_ranges)
            if matches(element.key, query)
        ]
        if prof is not None:
            prof.record("engine.scan", perf_counter() - start)
        return found


class OptimizedEngine(QueryEngine):
    """Distributed recursive refinement with pruning and aggregation."""

    name = "optimized"

    def __init__(
        self,
        aggregate: bool = True,
        local_depth: int = 1,
        latency_model=None,
        processing_delay: float = 0.0,
        fault_plane: "FaultPlane | None" = None,
        retry: "RetryPolicy | None" = None,
        replication: "ReplicationManager | None" = None,
        hop_budget: int | None = None,
        guard: "GuardPlane | None" = None,
    ) -> None:
        #: When False, each sub-cluster travels as its own routed message
        #: (disables the paper's second optimization; used by the ablation).
        self.aggregate = aggregate
        #: How many refinement levels a node applies locally (CPU-only) to
        #: the remainder before dispatching sub-clusters.  1 reproduces the
        #: minimal-message behaviour; larger values mimic the paper's deeper
        #: per-node tree expansion, producing finer sub-queries — more
        #: messages without aggregation, but better batching with it.
        if local_depth < 1:
            raise EngineError(f"local_depth must be >= 1, got {local_depth}")
        self.local_depth = local_depth
        #: Optional :class:`~repro.overlay.proximity.LatencyModel`; when set,
        #: the execution is timed — stats gain ``completion_time`` and
        #: ``time_to_first_match`` in the model's latency units.
        self.latency_model = latency_model
        #: Per-node local processing time charged before dispatching.
        self.processing_delay = float(processing_delay)
        #: Optional :class:`~repro.faults.FaultPlane` every dispatched
        #: message passes through.  ``None`` — or an *inert* plane (all
        #: rates zero, no droppers) — leaves execution bit-identical to the
        #: plain engine: the fault-aware code paths are never entered.
        self.fault_plane = fault_plane
        #: Optional :class:`~repro.faults.RetryPolicy` governing timeouts,
        #: retransmissions, and successor failover when the plane swallows
        #: a message.  Without one, faulted branches are simply recorded as
        #: lost (``QueryResult.unresolved_ranges``).
        self.retry = retry
        #: Optional :class:`~repro.core.replication.ReplicationManager`;
        #: failover targets serve the unreachable peer's share of a cluster
        #: from its replica store, restoring full recall.
        self.replication = replication
        #: Per-query cap on processed work entries; ``None`` derives
        #: :func:`default_hop_budget` from the ring size at query time.
        #: Routing cycles (post-crash, pre-stabilization stale pointers)
        #: exhaust the budget and degrade to ``complete=False`` with the
        #: abandoned windows in ``unresolved_ranges`` — never a hang.
        if hop_budget is not None and hop_budget < 1:
            raise EngineError(f"hop_budget must be >= 1, got {hop_budget}")
        self.hop_budget = hop_budget
        #: Optional :class:`~repro.guard.GuardPlane` enforcing per-node
        #: bounded work queues and token-bucket throttles.  ``None`` — or
        #: an *inactive* plane (no limits configured) — leaves execution
        #: bit-identical to an unguarded engine; an active plane sheds
        #: branch work at overloaded nodes, honestly reported via
        #: ``complete=False`` / ``unresolved_ranges`` / ``shed_branches``.
        self.guard = guard

    def result_cache_params(self):
        """Result-cache key component: name plus plan-shaping knobs.

        ``hop_budget`` is deliberately absent: it can only turn an answer
        *incomplete* (never change a complete one), and incomplete results
        are never cached.  The guard plane is absent for the same reason.
        """
        return ("optimized", self.aggregate, self.local_depth)

    def execute(
        self,
        system: "SquidSystem",
        query,
        origin: int | None = None,
        rng: RandomLike = None,
        limit: int | None = None,
        priority=None,
    ) -> QueryResult:
        """Resolve ``query`` by distributed recursive refinement (see class
        docstring); exact unless ``limit`` enables discovery mode."""
        run = self.begin_run(
            system, query, origin=origin, rng=rng, limit=limit,
            priority=priority,
        )
        return drive_sync(self, system, run)

    def begin_run(
        self,
        system: "SquidSystem",
        query,
        origin: int | None = None,
        rng: RandomLike = None,
        limit: int | None = None,
        priority=None,
    ) -> EngineRun:
        """Initiator-side setup: refine the query once, dispatch level-1
        clusters into the run's outbox."""
        if limit is not None and limit < 1:
            raise EngineError(f"limit must be >= 1, got {limit}")
        run = EngineRun()
        run.priority = priority_rank(priority)
        q = run.query = system.space.as_query(query)
        region = run.region = system.space.region(q)
        curve = system.curve
        run.limit = limit
        stats = run.stats

        origin_id = run.origin_id = self._pick_origin(system, origin, rng)
        run.budget = (
            self.hop_budget
            if self.hop_budget is not None
            else default_hop_budget(len(system.overlay.nodes))
        )
        # The fault plane is consulted only when it can actually do
        # something; an absent or inert plane leaves the execution on the
        # exact code path of the plain engine (bit-identical results, stats,
        # metrics, and RNG consumption).
        plane = self.fault_plane
        if plane is not None and not plane.active:
            plane = None
        run.plane = plane
        if plane is not None:
            plane.begin_query(origin_id)
        # Same inertness contract for the overload guard: an absent or
        # inactive plane keeps the run on the unguarded code path.
        guard = self.guard
        run.guard = guard if guard is not None and guard.active else None
        tracer = getattr(system, "tracer", None)
        trace = run.trace = (
            tracer.begin(str(q), origin_id) if tracer is not None else None
        )
        root = root_cluster(curve, region)
        if root is None:  # pragma: no cover - regions are never empty
            run.early_result = QueryResult(q, [], stats, trace)
            return run

        # The initiator performs the first refinement of the query tree
        # (paper Figure 8) but holds none of the clusters itself yet.  The
        # refinement is pure geometry — a function of (curve, region,
        # local_depth) only — so repeated queries reuse it from the system's
        # plan cache; clusters are frozen, making the shared plan safe.
        stats.record_processing(origin_id, 0)
        root_span = run.root_span = (
            trace.new_span(None, origin_id, 0) if trace is not None else 0
        )
        cache = getattr(system, "plan_cache", None)
        cache_key = None
        first: list[Cluster] | None = None
        if cache is not None:
            cache_key = plan_key(curve, region, self.name, self.local_depth)
            cached = cache.get(cache_key)
            if cached is not None:
                first = list(cached)
                stats.plan_cache_hit = True
        if first is None:
            first = self._refine_locally(curve, root, region, min_index=0)
            if cache is not None:
                cache.put(cache_key, tuple(first))
        if trace is not None:
            trace.emit(root_span, ClusterRefined(origin_id, 0, len(first)))

        # Work entries: (processing_node, cluster, arrival_key, arrival_time,
        # span, covered, replica_of, sender).  ``covered`` is the identifier
        # whose key range this visit resolves — the processor's own id
        # normally, or the unreachable peer's id on a failover visit (served
        # from replicas); pruning and continuation use the *covered* range.
        # ``sender`` allows redelivery when the processor crashes while the
        # entry is still queued.
        self._dispatch(
            system, stats, origin_id, first, run.outbox, floor=0, now=0.0,
            trace=trace, parent_span=root_span, plane=plane,
            unresolved=run.unresolved,
        )
        return run

    def entry_node(self, run: EngineRun, entry) -> int:
        """Work entries are addressed to their processing node."""
        return entry[0]

    def process_message(self, system: "SquidSystem", run: EngineRun, entry) -> bool:
        """One node handles one delivered sub-query (scan, prune or refine,
        dispatch the remainder); False stops the run (discovery limit)."""
        (node_id, cluster, arrival_key, arrival_time, span,
         covered, replica_of, sender_id) = entry
        curve = system.curve
        overlay = system.overlay
        stats = run.stats
        plane = run.plane
        trace = run.trace
        guard = run.guard
        if guard is not None and not guard.admit(node_id, run.priority):
            # The node's load guard refused the work: the entry's remaining
            # window is shed — deliberately and honestly — into
            # ``unresolved_ranges``, and the fan-out does not continue from
            # this branch.  Shedding a branch is cheap by design: no scan,
            # no refinement, no dispatch.
            self._record_shed(
                curve, cluster, arrival_key, run.unresolved, stats,
                trace, span, node_id,
            )
            return True
        if not run._charge_hop():
            # Hop budget exhausted — a routing cycle (or a pathological
            # plan) regenerated work beyond any healthy query's size.  The
            # entry's remaining window is honestly abandoned; with no new
            # dispatches the queue drains and the query returns
            # ``complete=False`` instead of looping forever.
            self._record_lost(
                curve, cluster, arrival_key, run.unresolved, stats,
                trace, span, node_id,
            )
            return True
        if plane is not None and node_id not in overlay.nodes:
            # The processor crashed (a fault on some other branch) after
            # this sub-query was sent but before it was handled.  The
            # sender times out and re-routes to whoever owns the key now;
            # without a retry policy the branch is simply lost.
            src = sender_id if sender_id in overlay.nodes else run.origin_id
            delivery = (
                self._deliver_resilient(
                    system, stats, src, node_id, arrival_key,
                    trace, span, charge_route=True,
                )
                if self.retry is not None
                else None
            )
            if delivery is None:
                self._record_lost(
                    curve, cluster, arrival_key, run.unresolved, stats,
                    trace, span, node_id,
                )
                return True
            node_id, covered, replica_of, penalty = delivery
            arrival_time += penalty
            if trace is not None:
                trace.reassign(span, node_id)
        stats.record_processing(node_id, cluster.level)
        done_time = self._account_time(
            stats, run.origin_id, node_id, arrival_time, plane
        )
        # The node searches the slice of the cluster it is responsible
        # for on this arrival: up to the covered identifier, or to the
        # end of the index space when the delivery wrapped around the
        # ring (a first-node visit for the tail segment).  Windowing
        # keeps the chain's scans disjoint even when it wraps past 0.
        window_high = covered if arrival_key <= covered else curve.size - 1
        ranges = _clip_ranges(
            cluster.iter_index_ranges(curve), arrival_key, window_high
        )
        found = self._scan_cluster(system, node_id, ranges, run.query)
        if replica_of is not None:
            # Failover visit: this node stands in for an unreachable
            # peer.  Its replica store restores the peer's share of the
            # data; without replication that share is truthfully
            # reported as unresolved (the fan-out continues regardless).
            served, ok = self._scan_replicas(system, node_id, ranges, run.query)
            if ok:
                found = found + served
            elif ranges:
                run.unresolved.extend(ranges)
        if trace is not None:
            trace.emit(span, LocalScan(node_id, len(ranges), len(found)))
        if found:
            run.matches.extend(found)
            stats.record_data_node(node_id)
            if self.latency_model is not None:
                stats.record_match_time(done_time)
            if run.limit is not None and len(run.matches) >= run.limit:
                # Discovery mode: enough matches known; the origin stops
                # the fan-out.  Outstanding branches are abandoned — their
                # dispatch messages are already (truthfully) counted; the
                # transport records how many were dropped in flight.
                return False

        # Pruning: the branch terminates when the covered node owns the
        # whole remaining index range of the cluster.  Linearly that
        # means the cluster's last index precedes the covered
        # identifier; at the ring's wrap point (a node owning
        # (pred, 2^m) ∪ [0, id]) it means the cluster's remaining part
        # started beyond the predecessor, since linear indices never
        # wrap.
        cluster_max = cluster.max_index(curve)
        if covered == node_id:
            pred = overlay.nodes[node_id].predecessor
        else:
            # Failover visit: `covered` is the unreachable-but-live
            # peer's identifier; ask the ring for its predecessor.
            pred = overlay.predecessor_id(covered)
        if (
            cluster_max <= covered
            or pred == covered  # single node: owns everything
            or arrival_key > covered  # wrapped: scanned to the end of space
        ):
            # The wrap test must come from the scan window itself, not the
            # node's predecessor pointer: after a crash the stale pointer
            # can name a dead peer with a larger identifier, the prune
            # misses, and the tail segment is re-dispatched and re-scanned
            # (duplicated matches).  A wrapped arrival already scanned
            # [arrival_key, 2^m), which contains every remaining linear
            # index of the cluster.
            stats.record_pruned()
            if trace is not None:
                trace.emit(span, Pruned(node_id, cluster.level, "owned"))
            return True
        remainder = self._refine_locally(
            curve, cluster, run.region, min_index=covered + 1
        )
        if trace is not None:
            trace.emit(
                span, ClusterRefined(node_id, cluster.level, len(remainder))
            )
        if not remainder:
            # The region's remaining geometry lies entirely within this
            # node's scanned window: the branch ends here too.
            stats.record_pruned()
            if trace is not None:
                trace.emit(span, Pruned(node_id, cluster.level, "empty"))
            return True
        delay = self.processing_delay
        if plane is not None and delay:
            delay *= plane.slow_factor(node_id)
        self._dispatch(
            system,
            stats,
            node_id,
            remainder,
            run.outbox,
            floor=covered + 1,
            now=arrival_time + delay,
            trace=trace,
            parent_span=span,
            plane=plane,
            unresolved=run.unresolved,
        )
        return True

    def _account_time(
        self,
        stats: QueryStats,
        origin_id: int,
        node_id: int,
        arrival_time: float,
        plane: "FaultPlane | None" = None,
    ) -> float:
        """Completion time of this processing event, results back at origin."""
        if self.latency_model is None:
            return 0.0
        delay = self.processing_delay
        if plane is not None and delay:
            delay *= plane.slow_factor(node_id)
        done = (
            arrival_time
            + delay
            + self.latency_model.latency(node_id, origin_id)
        )
        stats.record_completion(done)
        return done

    def _refine_locally(self, curve, cluster: Cluster, region, min_index: int):
        """Expand the query tree ``local_depth`` levels at this node (CPU only)."""
        clusters = refine_cluster(curve, cluster, region, min_index=min_index)
        for _ in range(self.local_depth - 1):
            if all(c.is_resolved for c in clusters):
                break
            nxt: list[Cluster] = []
            for c in clusters:
                if c.is_resolved:
                    nxt.append(c)
                else:
                    nxt.extend(refine_cluster(curve, c, region, min_index=min_index))
            clusters = nxt
        return clusters

    def _dispatch(
        self,
        system: "SquidSystem",
        stats: QueryStats,
        sender_id: int,
        clusters: list[Cluster],
        work: list,
        floor: int,
        now: float,
        trace: QueryTrace | None = None,
        parent_span: int = 0,
        plane: "FaultPlane | None" = None,
        unresolved: list | None = None,
    ) -> None:
        """Send sub-clusters toward their owners, optionally aggregated.

        A sub-cluster is routed by its first index *of interest*,
        ``max(min_index, floor)``: a partial cell straddling the sender's
        trim boundary keeps its full geometry, so its nominal minimum can lie
        at or below the sender — routing by the floored key keeps the chain
        strictly advancing along the ring (and prevents re-scanning).

        Grouping is by destination in increasing identifier order, matching
        the paper's probe-then-batch protocol: the probe message is routed
        (hop-counted), the destination's identity reply costs one message,
        and additional same-destination clusters share one batched message.

        When tracing, every dispatched cluster opens a child span of
        ``parent_span``; the probe/reply/batch messages are recorded on the
        spans that own them (probe on the first receiving span, reply and
        batch on the sender's span).

        With an active fault ``plane``, each physical message instead goes
        through :meth:`_deliver_resilient` (retry/backoff/failover per the
        engine's policy) and branches that stay undeliverable are recorded
        in ``unresolved``.
        """
        if not clusters:
            return
        curve = system.curve
        overlay = system.overlay

        def route_key(cluster: Cluster) -> int:
            return max(cluster.min_index(curve), floor)

        def child_span(dest: int, cluster: Cluster) -> int:
            if trace is None:
                return 0
            return trace.new_span(parent_span, dest, cluster.level)

        ordered = sorted(clusters, key=route_key)
        groups: dict[int, tuple[int, list[Cluster]]] = {}
        for cluster in ordered:
            key = route_key(cluster)
            dest = overlay.owner(key)
            if dest in groups:
                groups[dest][1].append(cluster)
            else:
                groups[dest] = (key, [cluster])
        multiple = len(ordered) > 1
        for dest, (first_key, group) in groups.items():
            if dest == sender_id:
                # Remainder that stays local (wrapped first node): no message.
                for cluster in group:
                    work.append(
                        (dest, cluster, route_key(cluster), now,
                         child_span(dest, cluster), dest, None, sender_id)
                    )
                continue
            if plane is not None:
                if self.aggregate:
                    self._dispatch_group_resilient(
                        system, stats, sender_id, dest, first_key, group,
                        work, route_key, now, multiple, trace, parent_span,
                        unresolved,
                    )
                else:
                    self._dispatch_singles_resilient(
                        system, stats, sender_id, dest, group, work,
                        route_key, now, trace, parent_span, unresolved,
                    )
                continue
            if self.aggregate:
                probe = overlay.route(sender_id, first_key)
                stats.record_path(probe.path)
                probe_arrival = now + self._path_latency(probe.path)
                if multiple:
                    stats.record_direct()  # identity reply enabling aggregation
                if len(group) > 1:
                    stats.record_direct()  # batched siblings, sent directly
                    stats.record_aggregated_batch()
                # The probe carries the first cluster; batched siblings wait
                # one sender<->dest round trip (reply + batch).
                batch_arrival = probe_arrival + 2 * self._pair_latency(sender_id, dest)
                for i, cluster in enumerate(group):
                    arrival = probe_arrival if i == 0 else batch_arrival
                    span = child_span(dest, cluster)
                    if trace is not None and i == 0:
                        trace.emit(
                            span,
                            MessageSent(
                                sender_id, dest, "probe",
                                hops=len(probe.path) - 1, path=probe.path,
                            ),
                        )
                    work.append(
                        (dest, cluster, route_key(cluster), arrival, span,
                         dest, None, sender_id)
                    )
                if trace is not None:
                    if multiple:
                        trace.emit(
                            parent_span,
                            MessageSent(dest, sender_id, "reply", hops=1),
                        )
                    if len(group) > 1:
                        trace.emit(
                            parent_span,
                            MessageSent(sender_id, dest, "batch", hops=1),
                        )
                        trace.emit(
                            parent_span, Aggregated(sender_id, dest, len(group))
                        )
            else:
                for cluster in group:
                    route = overlay.route(sender_id, route_key(cluster))
                    stats.record_path(route.path)
                    span = child_span(dest, cluster)
                    if trace is not None:
                        trace.emit(
                            span,
                            MessageSent(
                                sender_id, dest, "routed",
                                hops=len(route.path) - 1, path=route.path,
                            ),
                        )
                    work.append(
                        (dest, cluster, route_key(cluster),
                         now + self._path_latency(route.path), span,
                         dest, None, sender_id)
                    )

    # ------------------------------------------------------------------
    # Resilient delivery (active fault plane only)
    # ------------------------------------------------------------------
    def _dispatch_group_resilient(
        self, system, stats, sender_id, dest, first_key, group, work,
        route_key, now, multiple, trace, parent_span, unresolved,
    ) -> None:
        """Aggregated dispatch of one destination group through the plane.

        The probe is routed and charged exactly like the plain path, then
        pushed through :meth:`_deliver_resilient`; when it cannot be
        delivered at all, every cluster of the group is recorded as lost.
        The sibling batch is its own physical message — it can be faulted
        independently, but never fails over (the probe/reply handshake
        already fixed its destination).
        """
        curve = system.curve
        overlay = system.overlay
        probe = overlay.route(sender_id, first_key)
        stats.record_path(probe.path)
        probe_hops = len(probe.path) - 1
        delivery = self._deliver_resilient(
            system, stats, sender_id, dest, first_key, trace, parent_span
        )
        if delivery is None:
            for i, cluster in enumerate(group):
                span = (
                    trace.new_span(parent_span, dest, cluster.level)
                    if trace is not None else 0
                )
                if trace is not None and i == 0:
                    trace.emit(
                        span,
                        MessageSent(sender_id, dest, "probe",
                                    hops=probe_hops, path=probe.path),
                    )
                self._record_lost(
                    curve, cluster, route_key(cluster), unresolved, stats,
                    trace, span, dest,
                )
            return
        processor, covered, replica_of, penalty = delivery
        probe_arrival = now + self._path_latency(probe.path) + penalty
        if multiple:
            stats.record_direct()  # identity reply enabling aggregation
        batch = None
        batch_penalty = 0.0
        if len(group) > 1:
            stats.record_direct()  # batched siblings, sent directly
            stats.record_aggregated_batch()
            batch = self._deliver_resilient(
                system, stats, sender_id, processor, first_key, trace,
                parent_span, allow_failover=False,
            )
            if batch is not None:
                batch_penalty = batch[3]
        batch_arrival = (
            probe_arrival
            + 2 * self._pair_latency(sender_id, processor)
            + batch_penalty
        )
        for i, cluster in enumerate(group):
            # Siblings ride the batch message, which is faulted independently
            # of the probe: when the destination crashed mid-batch the
            # redelivery re-resolved to a new owner, and the sibling spans
            # must point at the node that will actually process them.
            span_node = processor if i == 0 or batch is None else batch[0]
            span = (
                trace.new_span(parent_span, span_node, cluster.level)
                if trace is not None else 0
            )
            if trace is not None and i == 0:
                trace.emit(
                    span,
                    MessageSent(sender_id, dest, "probe",
                                hops=probe_hops, path=probe.path),
                )
            if i == 0:
                work.append(
                    (processor, cluster, route_key(cluster), probe_arrival,
                     span, covered, replica_of, sender_id)
                )
            elif batch is None:
                self._record_lost(
                    curve, cluster, route_key(cluster), unresolved, stats,
                    trace, span, processor,
                )
            else:
                work.append(
                    (batch[0], cluster, route_key(cluster), batch_arrival,
                     span, batch[1], batch[2], sender_id)
                )
        if trace is not None:
            if multiple:
                trace.emit(
                    parent_span, MessageSent(processor, sender_id, "reply", hops=1)
                )
            if len(group) > 1:
                trace.emit(
                    parent_span, MessageSent(sender_id, processor, "batch", hops=1)
                )
                trace.emit(
                    parent_span, Aggregated(sender_id, processor, len(group))
                )

    def _dispatch_singles_resilient(
        self, system, stats, sender_id, dest, group, work, route_key, now,
        trace, parent_span, unresolved,
    ) -> None:
        """Unaggregated dispatch through the plane: one routed message per
        cluster, each retried/failed-over independently."""
        curve = system.curve
        overlay = system.overlay
        for cluster in group:
            key = route_key(cluster)
            route = overlay.route(sender_id, key)
            stats.record_path(route.path)
            delivery = self._deliver_resilient(
                system, stats, sender_id, dest, key, trace, parent_span
            )
            span_node = dest if delivery is None else delivery[0]
            span = (
                trace.new_span(parent_span, span_node, cluster.level)
                if trace is not None else 0
            )
            if trace is not None:
                trace.emit(
                    span,
                    MessageSent(sender_id, dest, "routed",
                                hops=len(route.path) - 1, path=route.path),
                )
            if delivery is None:
                self._record_lost(
                    curve, cluster, key, unresolved, stats, trace, span, dest
                )
                continue
            processor, covered, replica_of, penalty = delivery
            work.append(
                (processor, cluster, key,
                 now + self._path_latency(route.path) + penalty, span,
                 covered, replica_of, sender_id)
            )

    def _deliver_resilient(
        self,
        system: "SquidSystem",
        stats: QueryStats,
        sender_id: int,
        dest: int,
        key: int,
        trace: QueryTrace | None,
        span: int,
        allow_failover: bool = True,
        charge_route: bool = False,
    ) -> tuple[int, int, int | None, float] | None:
        """Push one physical message through the fault plane, fighting back
        per the retry policy.

        Returns ``(processor, covered, replica_of, time_penalty)`` on
        delivery — ``covered`` being the identifier whose range the visit
        resolves and ``replica_of`` its id when the processor is a failover
        stand-in — or ``None`` when the message is definitively lost.

        The *first* transmission must already be charged by the caller (the
        routed probe or the direct batch); retries, failovers, and crash
        re-routes are charged here.  With ``charge_route`` the message
        starts from a timed-out crashed destination: the sender re-resolves
        the owner and the (charged) re-route happens here too.
        """
        plane = self.fault_plane
        policy = self.retry
        overlay = system.overlay
        penalty = 0.0
        total = 0
        if charge_route:
            if policy is None:
                return None
            penalty += policy.wait_for(1, plane.rng)
            dest = overlay.owner(key)
            if dest == sender_id:
                # The sender itself owns the key now: local hand-off.
                return (dest, dest, None, penalty)
            route = overlay.route(sender_id, key)
            stats.record_path(route.path)
            stats.record_retry()
            penalty += self._path_latency(route.path)
            if trace is not None:
                trace.emit(
                    span,
                    MessageSent(sender_id, dest, "retry",
                                hops=len(route.path) - 1, path=route.path),
                )
        primary = dest
        current = dest
        attempts = 0
        budget = policy.budget if policy is not None else 1
        while True:
            total += 1
            attempts += 1
            outcome = plane.transmit(sender_id, current)
            if outcome.crashed:
                # The destination died mid-delivery, taking the message with
                # it.  Time out, then route to whoever owns the key now
                # (with replication, the successor promoted the data).
                stats.record_dropped()
                if policy is None or total >= budget:
                    return None
                penalty += policy.wait_for(attempts, plane.rng)
                if current == primary:
                    primary = overlay.owner(key)
                    nxt = primary
                elif primary in overlay.nodes:
                    # A failover stand-in died while the primary is still
                    # unreachable-but-alive: try the next ring successor.
                    nxt = overlay.successor_id(primary)
                    if nxt == primary:
                        return None
                else:  # pragma: no cover - defensive
                    primary = overlay.owner(key)
                    nxt = primary
                if nxt == sender_id:
                    return (nxt, primary, None if nxt == primary else primary,
                            penalty)
                route = overlay.route(sender_id, nxt)
                stats.record_path(route.path)
                stats.record_retry()
                penalty += self._path_latency(route.path)
                if trace is not None:
                    trace.emit(
                        span,
                        MessageSent(sender_id, nxt, "retry",
                                    hops=len(route.path) - 1, path=route.path),
                    )
                current = nxt
                attempts = 0
                continue
            if outcome.dropped:
                stats.record_dropped()
                if policy is None or total >= budget:
                    return None
                penalty += policy.wait_for(attempts, plane.rng)
                if attempts < policy.max_attempts and not plane.always_drops(
                    current
                ):
                    # Retransmit to the same destination after backoff.
                    stats.record_retry()
                    stats.record_direct()
                    if trace is not None:
                        trace.emit(
                            span,
                            MessageSent(sender_id, current, "retry", hops=1),
                        )
                    continue
                if not (allow_failover and policy.failover):
                    return None
                backup = overlay.successor_id(current)
                if backup == current or plane.always_drops(backup):
                    return None  # nowhere left to go: the branch dies
                stats.record_failover()
                stats.record_direct()
                stats.routing_nodes.add(backup)
                if trace is not None:
                    trace.emit(
                        span,
                        MessageSent(sender_id, backup, "failover", hops=1,
                                    path=(sender_id, backup)),
                    )
                current = backup
                attempts = 0
                continue
            # Delivered (possibly delayed and/or duplicated).
            penalty += outcome.delay
            if outcome.duplicated:
                # Receivers deduplicate; the spurious copy still cost a send.
                stats.record_duplicate()
                stats.record_direct()
                if trace is not None:
                    trace.emit(
                        span, MessageSent(sender_id, current, "dup", hops=1)
                    )
            replica_of = primary if current != primary else None
            return (current, primary, replica_of, penalty)

    def _record_lost(
        self, curve, cluster: Cluster, floor_key: int, unresolved, stats,
        trace: QueryTrace | None, span: int, dest: int,
    ) -> None:
        """Account one undeliverable branch: its remaining (linear) index
        window becomes unresolved and the span is tagged lost."""
        ranges = _clip_ranges(
            cluster.iter_index_ranges(curve), floor_key, curve.size - 1
        )
        if unresolved is not None:
            unresolved.extend(ranges)
        stats.record_lost_branch()
        if trace is not None:
            trace.emit(span, BranchLost(dest, cluster.level, len(ranges)))

    def _record_shed(
        self, curve, cluster: Cluster, floor_key: int, unresolved, stats,
        trace: QueryTrace | None, span: int, dest: int,
    ) -> None:
        """Account one shed branch: like :meth:`_record_lost`, but the
        abandonment was the load guard's deliberate decision."""
        ranges = _clip_ranges(
            cluster.iter_index_ranges(curve), floor_key, curve.size - 1
        )
        if unresolved is not None:
            unresolved.extend(ranges)
        stats.record_shed_branch()
        if trace is not None:
            trace.emit(span, BranchShed(dest, cluster.level, len(ranges)))

    def _scan_replicas(
        self, system: "SquidSystem", node_id: int, ranges, query
    ) -> tuple[list, bool]:
        """Serve an unreachable peer's share from this node's replica store.

        Returns ``(matches, served)``; ``served`` is False when no replica
        store is available (no manager attached, or the node holds none) —
        the caller then records the window as unresolved.
        """
        manager = self.replication
        if manager is None:
            return [], False
        store = manager.replicas.get(node_id)
        if store is None:
            return [], False
        matches = system.space.matches
        found = [
            element
            for element in store.scan_ranges(ranges)
            if matches(element.key, query)
        ]
        return found, True

    def _path_latency(self, path: tuple[int, ...]) -> float:
        if self.latency_model is None:
            return 0.0
        return self.latency_model.path_latency(path)

    def _pair_latency(self, a: int, b: int) -> float:
        if self.latency_model is None:
            return 0.0
        return self.latency_model.latency(a, b)


class NaiveEngine(QueryEngine):
    """Fully resolve clusters at the initiator; one message per cluster.

    This is the paper's unoptimized strategy used to motivate distributed
    refinement: "the number of clusters can be very high, and sending a
    message for each cluster is not a scalable solution" (§3.4.1).  Clusters
    spanning several nodes additionally walk the successor chain.
    """

    name = "naive"

    def __init__(
        self,
        max_level: int | None = None,
        hop_budget: int | None = None,
        guard: "GuardPlane | None" = None,
    ) -> None:
        #: Optional refinement cap (the paper's curve approximation order);
        #: None resolves clusters exactly.
        self.max_level = max_level
        #: Per-query cap on successor-chain steps; ``None`` derives
        #: ``len(ranges) + default_hop_budget(n_nodes)`` at query time (a
        #: healthy walk takes about one step per cluster plus one per node
        #: boundary crossed, so the default never triggers; a post-crash
        #: routing cycle walks the ring forever and exhausts it).
        if hop_budget is not None and hop_budget < 1:
            raise EngineError(f"hop_budget must be >= 1, got {hop_budget}")
        self.hop_budget = hop_budget
        #: Optional :class:`~repro.guard.GuardPlane`; same inertness
        #: contract as :class:`OptimizedEngine`.
        self.guard = guard

    def result_cache_params(self):
        """Result-cache key component: name plus refinement depth."""
        return ("naive", self.max_level)

    def execute(
        self,
        system: "SquidSystem",
        query,
        origin: int | None = None,
        rng: RandomLike = None,
        limit: int | None = None,
        priority=None,
    ) -> QueryResult:
        """Resolve ``query`` by fully expanding clusters at the initiator
        and messaging each one (the paper's unoptimized strawman)."""
        run = self.begin_run(
            system, query, origin=origin, rng=rng, limit=limit,
            priority=priority,
        )
        return drive_sync(self, system, run)

    def begin_run(
        self,
        system: "SquidSystem",
        query,
        origin: int | None = None,
        rng: RandomLike = None,
        limit: int | None = None,
        priority=None,
    ) -> EngineRun:
        """Resolve every cluster at the initiator; queue the first one.

        Work entries are ``("open", idx)`` — the initiator dispatches range
        ``idx`` — and ``("step", node_id, span, position, high, idx)`` — one
        successor-chain visit.  Exactly one entry is ever outstanding, so
        the protocol's strictly sequential order is preserved over any
        transport.
        """
        if limit is not None and limit < 1:
            raise EngineError(f"limit must be >= 1, got {limit}")
        run = EngineRun()
        run.priority = priority_rank(priority)
        guard = self.guard
        run.guard = guard if guard is not None and guard.active else None
        q = run.query = system.space.as_query(query)
        region = run.region = system.space.region(q)
        curve = system.curve
        run.limit = limit
        stats = run.stats

        origin_id = run.origin_id = self._pick_origin(system, origin, rng)
        tracer = getattr(system, "tracer", None)
        trace = run.trace = (
            tracer.begin(str(q), origin_id) if tracer is not None else None
        )
        # Full cluster resolution is the naive engine's dominant initiator
        # cost; like the optimized engine's first refinement it is pure
        # geometry, so the plan cache applies (keyed on max_level).
        stats.record_processing(origin_id, 0)
        cache = getattr(system, "plan_cache", None)
        cache_key = None
        ranges: list[tuple[int, int]] | None = None
        if cache is not None:
            cache_key = plan_key(curve, region, self.name, self.max_level)
            cached = cache.get(cache_key)
            if cached is not None:
                ranges = list(cached)
                stats.plan_cache_hit = True
        if ranges is None:
            ranges = resolve_clusters(curve, region, max_level=self.max_level)
            if cache is not None:
                cache.put(cache_key, tuple(ranges))
        run.ranges = ranges
        # The chain touches roughly one node per cluster plus one per node
        # boundary it crosses, so the budget scales with both.
        run.budget = (
            self.hop_budget
            if self.hop_budget is not None
            else len(ranges) + default_hop_budget(len(system.overlay.nodes))
        )
        if trace is not None:
            run.root_span = trace.new_span(None, origin_id, 0)
            trace.emit(run.root_span, ClusterRefined(origin_id, 0, len(ranges)))
        run.outbox.append(("open", 0))
        return run

    def entry_node(self, run: EngineRun, entry) -> int:
        """``open`` entries return to the initiator; steps go to the chain."""
        return run.origin_id if entry[0] == "open" else entry[1]

    def process_message(self, system: "SquidSystem", run: EngineRun, entry) -> bool:
        """Handle one protocol step (see :meth:`begin_run` for entry kinds)."""
        curve = system.curve
        overlay = system.overlay
        stats = run.stats
        trace = run.trace

        if entry[0] == "open":
            idx = entry[1]
            guard = run.guard
            if guard is not None and not guard.admit(
                run.origin_id, run.priority
            ):
                # The initiator itself is overloaded: the clusters not yet
                # dispatched are shed wholesale (one accounting event).
                if idx < len(run.ranges):
                    run.unresolved.extend(run.ranges[idx:])
                    stats.record_shed_branch()
                    if trace is not None:
                        trace.emit(
                            run.root_span,
                            BranchShed(
                                run.origin_id, 0, len(run.ranges) - idx
                            ),
                        )
                return True
            if idx >= len(run.ranges):
                return True  # every cluster handled: the run drains out
            if run.limit is not None and len(run.matches) >= run.limit:
                # Discovery mode: remaining clusters were never dispatched,
                # so no in-flight messages exist to account for.
                return True
            low, high = run.ranges[idx]
            # One message routed per cluster, straight from the initiator.
            dest = overlay.owner(low)
            span = run.root_span
            if trace is not None:
                span = trace.new_span(run.root_span, dest, curve.order)
            if dest != run.origin_id:
                route = overlay.route(run.origin_id, low)
                stats.record_path(route.path)
                if trace is not None:
                    trace.emit(
                        span,
                        MessageSent(
                            run.origin_id, dest, "routed",
                            hops=len(route.path) - 1, path=route.path,
                        ),
                    )
            run.outbox.append(("step", dest, span, low, high, idx))
            return True

        # The cluster may span several successive nodes: walk the chain.
        _kind, node_id, span, position, high, idx = entry
        guard = run.guard
        if guard is not None and not guard.admit(node_id, run.priority):
            # The node's load guard refused this chain visit: its remaining
            # window is shed; the initiator moves on to the next cluster.
            run.unresolved.append((position, high))
            stats.record_shed_branch()
            if trace is not None:
                trace.emit(span, BranchShed(node_id, curve.order, 1))
            run.outbox.append(("open", idx + 1))
            return True
        if not run._charge_hop():
            # Hop budget exhausted — a post-crash stale-pointer cycle is
            # walking the ring forever.  Abandon the remaining window of
            # this cluster and every cluster not yet dispatched; the query
            # returns an honest ``complete=False`` instead of hanging.
            run.unresolved.append((position, high))
            stats.record_lost_branch()
            if trace is not None:
                trace.emit(span, BranchLost(node_id, curve.order, 1))
            run.unresolved.extend(run.ranges[idx + 1:])
            return True
        stats.record_processing(node_id, curve.order)
        window_high = min(high, node_id) if position <= node_id else high
        found = self._scan_cluster(
            system, node_id, [(position, window_high)], run.query
        )
        if trace is not None:
            trace.emit(span, LocalScan(node_id, 1, len(found)))
        advance = True
        if found:
            run.matches.extend(found)
            stats.record_data_node(node_id)
            if run.limit is not None and len(run.matches) >= run.limit:
                advance = False  # stop the chain; "open" re-checks the limit
        node = overlay.nodes[node_id]
        # Done when this node owns the rest of the (linear) range: either
        # the range ends at/before the node's identifier, or the visit
        # wrapped past the ring's top — a wrapped arrival scanned
        # [position, high] in full, so the walk must stop.  (Deciding the
        # wrap from ``node.predecessor`` is wrong after a crash: the stale
        # pointer can name a dead peer with a larger identifier, and the
        # missed prune re-walks and re-scans the tail — duplicate matches.)
        if advance and not (
            high <= node_id
            or node.predecessor == node_id  # single node owns all
            or position > node_id  # wrapped visit: window was [position, high]
        ):
            position = node_id + 1
            next_id = overlay.owner(position)
            stats.record_direct()  # hand the rest of the range onward
            stats.routing_nodes.add(next_id)
            if trace is not None:
                child = trace.new_span(span, next_id, curve.order)
                trace.emit(
                    child,
                    MessageSent(
                        node_id, next_id, "handoff",
                        hops=1, path=(node_id, next_id),
                    ),
                )
                span = child
            run.outbox.append(("step", next_id, span, position, high, idx))
            return True
        run.outbox.append(("open", idx + 1))
        return True


_ENGINES = {
    "optimized": OptimizedEngine,
    "naive": NaiveEngine,
}


def make_engine(name: str, **kwargs) -> QueryEngine:
    """Instantiate an engine by name (``"optimized"`` or ``"naive"``)."""
    try:
        cls = _ENGINES[name]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r}; choose from {sorted(_ENGINES)}"
        ) from None
    return cls(**kwargs)
