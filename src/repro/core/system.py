"""The assembled Squid system: keyword space + SFC + overlay + stores.

:class:`SquidSystem` is the library's main entry point.  It owns

* the :class:`~repro.keywords.space.KeywordSpace` describing data elements,
* the :class:`~repro.sfc.base.SpaceFillingCurve` (Hilbert by default) whose
  index space doubles as the overlay identifier space,
* a :class:`~repro.overlay.chord.ChordRing` of peers,
* one :class:`~repro.store.base.NodeStore` per peer — the backend is chosen
  by name (``store="local"`` / ``"columnar"`` / ``"sqlite"``, see
  :mod:`repro.store`), and every store the system ever builds (initial
  ring, later joins) comes from the same :class:`~repro.store.base.StoreSpec`,

and exposes ``publish`` / ``query`` plus the membership operations
(`add_node`, `remove_node`) that move keys the way the protocol would.

Example
-------
>>> from repro import SquidSystem, KeywordSpace, WordDimension
>>> space = KeywordSpace([WordDimension("kw1"), WordDimension("kw2")], bits=8)
>>> system = SquidSystem.create(space, n_nodes=16, seed=7)
>>> _ = system.publish(("computer", "network"), payload="doc-1")
>>> result = system.query("(comp*, *)")
>>> [e.payload for e in result.matches]
['doc-1']
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.engine import OptimizedEngine, QueryEngine, make_engine
from repro.core.metrics import QueryResult, QueryStats
from repro.core.plancache import PlanCache
from repro.core.resultcache import ResultCache, default_result_cache, result_key
from repro.errors import DuplicateNodeError, OverlayError
from repro.keywords.space import KeywordSpace
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs.trace import KeyMoved, NodeJoined, NodeLeft, Tracer
from repro.overlay.base import ring_contains_open_closed
from repro.overlay.chord import ChordRing
from repro.sfc import get_default_curve, make_curve, sample_box_regions, select_curve
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.regions import Region
from repro.store import NodeStore, StoredElement, StoreSpec, as_spec
from repro.util.rng import RandomLike, as_generator

__all__ = ["SquidSystem"]

#: Sentinel distinguishing "no payload filter" from ``payload=None``.
_UNSET = object()


def _sample_regions(
    space: KeywordSpace, curve_sample: Iterable[Any] | None, rng: RandomLike
) -> list[Region]:
    """Coerce a workload sample into query regions for curve selection.

    Entries may be :class:`~repro.sfc.regions.Region` objects or anything
    ``KeywordSpace.region`` accepts (query strings, :class:`Query`, term
    sequences).  ``None`` falls back to a seeded mix of random cube queries.
    """
    if curve_sample is None:
        return sample_box_regions(space.dims, space.bits, rng=rng)
    regions: list[Region] = []
    for entry in curve_sample:
        if isinstance(entry, Region):
            regions.append(entry)
        else:
            regions.append(space.region(entry))
    return regions


def _resolve_curve(
    curve: "SpaceFillingCurve | str | None",
    space: KeywordSpace,
    rng: RandomLike = None,
    curve_sample: Iterable[Any] | None = None,
) -> SpaceFillingCurve:
    """Resolve a ``curve=`` argument into a curve instance.

    ``None`` uses the process default (CLI ``--curve`` flag or the
    ``REPRO_CURVE`` environment variable; ``"hilbert"`` otherwise); the name
    ``"auto"`` selects the cheapest family for a sampled workload via
    :func:`repro.sfc.select_curve`.  The order is fixed to the space's bit
    depth — the overlay identifier width depends on it.
    """
    if isinstance(curve, SpaceFillingCurve):
        return curve
    name = curve if curve is not None else get_default_curve()
    if name == "auto":
        regions = _sample_regions(space, curve_sample, rng)
        choice = select_curve(regions, space.dims, space.bits)
        return choice.make(space.dims)
    return make_curve(name, space.dims, space.bits)


def _coerce_result_cache(
    knob: "ResultCache | int | bool | None",
) -> ResultCache | None:
    if knob is None:
        return default_result_cache()
    if knob is False:
        return None
    if knob is True:
        return ResultCache()
    if isinstance(knob, int):
        return ResultCache(capacity=knob)
    return knob


class SquidSystem:
    """A complete simulated Squid deployment."""

    def __init__(
        self,
        space: KeywordSpace,
        overlay: ChordRing,
        curve: SpaceFillingCurve | str | None = None,
        default_engine: QueryEngine | str | None = None,
        rng: RandomLike = None,
        store: str | StoreSpec | None = None,
        result_cache: "ResultCache | int | bool | None" = None,
    ) -> None:
        self.space = space
        gen = as_generator(rng)
        self.curve = _resolve_curve(curve, space, rng=gen)
        if self.curve.dims != space.dims or self.curve.order != space.bits:
            raise OverlayError(
                "curve geometry must match the keyword space "
                f"(curve {self.curve.dims}D/{self.curve.order} bits vs "
                f"space {space.dims}D/{space.bits} bits)"
            )
        if overlay.bits != self.curve.index_bits:
            raise OverlayError(
                f"overlay identifier width ({overlay.bits}) must equal the "
                f"curve index width ({self.curve.index_bits})"
            )
        self.overlay = overlay
        #: Recipe every per-node store is built from (initial ring and later
        #: joins alike); picklable, so spawn workers rebuild the same backend.
        self.store_spec: StoreSpec = as_spec(store)
        self.stores: dict[int, NodeStore] = {
            node_id: self.store_spec.create(node_id=node_id)
            for node_id in overlay.node_ids()
        }
        if isinstance(default_engine, str):
            default_engine = make_engine(default_engine)
        self.default_engine = default_engine or OptimizedEngine()
        self._rng = gen
        #: Attached :class:`~repro.obs.trace.Tracer`, or None (no tracing).
        self.tracer: Tracer | None = None
        #: Initiator-side query-plan cache (see :mod:`repro.core.plancache`).
        #: Plans are pure functions of (curve, region, engine parameters),
        #: so the cache needs no invalidation; set to None to disable.
        self.plan_cache: PlanCache | None = PlanCache()
        #: Initiator-side result cache (see :mod:`repro.core.resultcache`).
        #: Accepts an instance, a capacity (int), True (defaults), False
        #: (off), or None — None defers to the process default set by
        #: :func:`repro.core.resultcache.set_default_result_cache` (the CLI
        #: ``--result-cache`` flag), which is off unless configured.
        self.result_cache: ResultCache | None = _coerce_result_cache(result_cache)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        space: KeywordSpace,
        n_nodes: int,
        curve: "str | SpaceFillingCurve | None" = None,
        seed: RandomLike = None,
        engine: QueryEngine | str | None = None,
        store: str | StoreSpec | None = None,
        result_cache: "ResultCache | int | bool | None" = None,
        curve_sample: Iterable[Any] | None = None,
    ) -> "SquidSystem":
        """Build a system of ``n_nodes`` peers with random identifiers.

        ``curve``, ``engine``, and ``store`` are symmetric: each accepts a
        registry name (``curve="hilbert"``, ``engine="optimized"``/``"naive"``,
        ``store="local"``/``"columnar"``/``"sqlite"``) — ``curve`` and
        ``engine`` also take ready instances, ``store`` a
        :class:`~repro.store.base.StoreSpec` carrying backend options.
        ``store=None`` and ``curve=None`` use the process defaults (CLI
        ``--store`` / ``--curve`` flags or the ``REPRO_STORE`` /
        ``REPRO_CURVE`` environment variables; ``"local"`` / ``"hilbert"``
        otherwise).  ``curve="auto"`` picks the cheapest registered family
        for a workload sample (``curve_sample``: query strings or
        :class:`~repro.sfc.regions.Region` objects; a seeded mix of random
        cube queries when omitted) via :func:`repro.sfc.select_curve`.
        """
        gen = as_generator(seed)
        sfc = _resolve_curve(curve, space, rng=gen, curve_sample=curve_sample)
        ring = ChordRing.with_random_ids(sfc.index_bits, n_nodes, rng=gen)
        return cls(
            space,
            ring,
            curve=sfc,
            default_engine=engine,
            rng=gen,
            store=store,
            result_cache=result_cache,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: Tracer | None = None) -> Tracer:
        """Attach (and return) a tracer; queries now produce ``result.trace``.

        Membership operations and key movement also record lifecycle events
        on the tracer.  Passing ``None`` creates a fresh
        :class:`~repro.obs.trace.Tracer`.
        """
        self.tracer = tracer if tracer is not None else Tracer()
        return self.tracer

    def detach_tracer(self) -> Tracer | None:
        """Detach and return the current tracer (queries stop tracing)."""
        tracer, self.tracer = self.tracer, None
        return tracer

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def index_of(self, key: Sequence[Any]) -> int:
        """Curve index of a keyword tuple."""
        prof = obs_profile.active_profiler()
        if prof is None:
            return self.curve.encode(self.space.coordinates(key))
        with prof.phase("sfc.encode"):
            return self.curve.encode(self.space.coordinates(key))

    def publish(
        self, key: Sequence[Any], payload: Any = None, pad: bool = False
    ) -> StoredElement:
        """Insert one data element at the node owning its index.

        With ``pad=True``, a key shorter than the space's dimensionality is
        extended by cyclic repetition (the paper's "one or more keywords,
        up to d" convention), so e.g. a single-keyword document is
        discoverable by that keyword on any dimension.
        """
        normalized = self.space.pad_key(key) if pad else self.space.validate_key(key)
        prof = obs_profile.active_profiler()
        if prof is None:
            coords = self.space.coordinates(normalized)
            index = self.curve.encode(coords)
        else:
            with prof.phase("sfc.encode"):
                coords = self.space.coordinates(normalized)
                index = self.curve.encode(coords)
        element = StoredElement(index=index, key=normalized, payload=payload)
        self.stores[self.overlay.owner(index)].add(element)
        if self.result_cache is not None:
            self.result_cache.invalidate_point(index, coords)
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("system.publishes").inc()
        return element

    def publish_many(
        self,
        keys: Iterable[Sequence[Any]],
        payloads: Iterable[Any] | None = None,
        pad: bool = False,
    ) -> int:
        """Bulk publish (vectorized indexing); returns elements inserted.

        Symmetric with :meth:`publish`: ``pad=True`` extends short keys by
        cyclic repetition before indexing.  Ownership is resolved in one
        vectorized :meth:`~repro.overlay.base.Overlay.owner_many` call, so a
        bulk publish places every element exactly where per-element
        :meth:`publish` calls would.
        """
        if pad:
            key_list = [self.space.pad_key(k) for k in keys]
        else:
            key_list = [self.space.validate_key(k) for k in keys]
        if not key_list:
            return 0
        payload_list = list(payloads) if payloads is not None else [None] * len(key_list)
        if len(payload_list) != len(key_list):
            raise ValueError("payloads length must match keys length")
        prof = obs_profile.active_profiler()
        if prof is None:
            coords = self.space.coordinates_many(key_list)
            indices = self.curve.encode_many(coords)
        else:
            with prof.phase("sfc.encode"):
                coords = self.space.coordinates_many(key_list)
                indices = self.curve.encode_many(coords)
        owners = self.overlay.owner_many(indices)
        per_node: dict[int, list[StoredElement]] = {}
        for key, payload, index, owner in zip(key_list, payload_list, indices, owners):
            per_node.setdefault(int(owner), []).append(
                StoredElement(index=int(index), key=key, payload=payload)
            )
        for owner, elements in per_node.items():
            self.stores[owner].add_sorted_bulk(elements)
        if self.result_cache is not None:
            self.result_cache.invalidate_points(indices, coords)
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("system.publishes").inc(len(key_list))
        return len(key_list)

    def unpublish(
        self, key: Sequence[Any], payload: Any = _UNSET, pad: bool = False
    ) -> int:
        """Remove published elements matching ``key``; returns count removed.

        With the default ``payload`` every element stored under the exact
        keyword tuple is removed; passing a payload removes only elements
        carrying it (multimap semantics — a key may hold many payloads).
        Removal invalidates overlapping result-cache entries exactly like a
        publish at the same point would.
        """
        normalized = self.space.pad_key(key) if pad else self.space.validate_key(key)
        coords = self.space.coordinates(normalized)
        index = self.curve.encode(coords)
        store = self.stores[self.overlay.owner(index)]
        popped = list(store.pop_range(index, index))
        kept = [
            element
            for element in popped
            if element.key != normalized
            or (payload is not _UNSET and element.payload != payload)
        ]
        removed = len(popped) - len(kept)
        if kept:
            store.add_sorted_bulk(kept)
        if removed and self.result_cache is not None:
            self.result_cache.invalidate_point(index, coords)
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("system.unpublishes").inc(removed)
        return removed

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(
        self,
        query,
        engine: QueryEngine | str | None = None,
        origin: int | None = None,
        rng: RandomLike = None,
        limit: int | None = None,
        priority: str | int | None = None,
    ) -> QueryResult:
        """Resolve a flexible query (AST, text, or term sequence).

        ``limit`` enables discovery mode: stop once at least ``limit``
        matches are found (useful when any match will do, e.g. finding *a*
        machine with 512MB rather than all of them).

        ``priority`` classifies the query for overload protection
        (``"interactive"`` / ``"batch"`` / ``"background"``; default
        interactive).  It is consulted only by an engine carrying an armed
        :class:`~repro.guard.GuardPlane` — unguarded execution is identical
        for every class — and deliberately does not enter result-cache
        keys: the class changes *whether* work is shed under load, never
        what a complete answer contains.

        When a :attr:`result_cache` is attached and the query is unlimited,
        a cached complete result is returned without touching the overlay:
        the hit carries the stored matches, fresh zero-cost stats with
        ``result_cache_hit=True``, and no trace.  Discovery-mode queries
        (``limit=``) bypass the cache — their truncated match sets are not
        canonical answers for the region.
        """
        eng = self._coerce_engine(engine)
        cache = self.result_cache
        key = region = None
        if cache is not None and limit is None:
            params = eng.result_cache_params()
            if params is not None:
                q = self.space.as_query(query)
                region = self.space.region(q)
                key = result_key(self.curve, region, eng.name, params, query=q)
                cached = cache.get(key)
                if cached is not None:
                    return QueryResult(
                        q,
                        list(cached),
                        QueryStats(result_cache_hit=True),
                        None,
                        complete=True,
                    )
        result = eng.execute(
            self,
            query,
            origin=origin,
            rng=rng if rng is not None else self._rng,
            limit=limit,
            priority=priority,
        )
        if key is not None:
            cache.put(key, result, self.curve, region)
        return result

    def query_many(
        self,
        queries: Iterable[Any],
        workers: int | None = None,
        seed: RandomLike = 0,
        engine: QueryEngine | str | None = None,
        origin: int | None = None,
        limit: int | None = None,
        priority: str | int | None = None,
        chunk_size: int | None = None,
    ):
        """Resolve a batch of queries, optionally across worker processes.

        Returns a :class:`~repro.exec.pool.BatchResult` with per-query
        results in input order, a merged :class:`QueryStats`, and a merged
        metrics snapshot.  Results are bit-identical for any ``workers``
        value (``None`` uses the process-wide default; see
        :func:`repro.exec.set_default_workers`); only wall-clock time
        changes.  ``seed`` feeds per-chunk RNG derivation, replacing the
        system's own generator for the batch so batches are reproducible
        regardless of prior query history.
        """
        from repro.exec.pool import QueryPool

        pool = QueryPool(self, workers=workers, chunk_size=chunk_size)
        return pool.run(
            queries, seed=seed, engine=engine, origin=origin, limit=limit,
            priority=priority,
        )

    def _coerce_engine(self, engine: QueryEngine | str | None) -> QueryEngine:
        if engine is None:
            return self.default_engine
        if isinstance(engine, str):
            return make_engine(engine)
        return engine

    def explain(self, query) -> dict[str, Any]:
        """Describe how a query would resolve, without contacting any peer.

        Returns the covering region's bounds, the cluster counts at each
        refinement level (the paper's query-tree width), the exact cluster
        count, and an estimate of the peers the optimized engine would touch
        — a developer tool for understanding query cost before running it.
        """
        from repro.sfc.clusters import count_clusters_per_level, resolve_clusters

        q = self.space.as_query(query)
        region = self.space.region(q)
        # Cap the per-level expansion at the depth where node arcs dominate:
        # beyond ~log2(N) index bits, clusters fit within single peers.
        n = max(len(self.overlay), 2)
        useful_level = min(
            self.curve.order,
            max(1, (n.bit_length() + self.curve.dims - 1) // self.curve.dims + 1),
        )
        level_counts = count_clusters_per_level(
            self.curve, region, max_level=useful_level
        )
        ranges = resolve_clusters(self.curve, region, max_level=useful_level)
        touched = set()
        for low, high in ranges:
            touched.add(self.overlay.owner(low))
            touched.add(self.overlay.owner(high))
        return {
            "query": str(q),
            "region_bounds": [
                (iv.low, iv.high) for iv in region.boxes[0].intervals
            ],
            "clusters_per_level": level_counts,
            "clusters_at_node_granularity": len(ranges),
            "estimated_peers_lower_bound": len(touched),
            "index_bits": self.curve.index_bits,
        }

    def brute_force_matches(self, query) -> list[StoredElement]:
        """Oracle: scan every store (used by tests and guarantees checks)."""
        q = self.space.as_query(query)
        out = []
        for store in self.stores.values():
            for element in store.all_elements():
                if self.space.matches(element.key, q):
                    out.append(element)
        return out

    # ------------------------------------------------------------------
    # Membership with key movement
    # ------------------------------------------------------------------
    def _owned_segments(self, node_id: int) -> list[tuple[int, int]]:
        """The inclusive index segments ``node_id`` owns: ``(pred, id]``."""
        pred = self.overlay.predecessor_id(node_id)
        if pred == node_id:  # sole node: owns the whole ring
            return [(0, self.overlay.space - 1)]
        if pred < node_id:
            return [(pred + 1, node_id)]
        return [(pred + 1, self.overlay.space - 1), (0, node_id)]

    def _invalidate_segments(self, segments: Iterable[tuple[int, int]]) -> None:
        """Conservatively drop cached results overlapping churned segments.

        Graceful membership changes preserve the global data set, so cached
        match tuples would in fact stay exact — but the ISSUE-level contract
        for the result cache is that *any* churn event touching a cached
        region's index ranges invalidates the overlapping entries, which
        also makes the crash path (where data really is lost) share one
        code path with graceful movement.
        """
        cache = self.result_cache
        if cache is None:
            return
        for low, high in segments:
            if low <= high:
                cache.invalidate_range(low, high)

    def add_node(self, node_id: int) -> int:
        """Join a node and hand it the keys it now owns; returns message cost."""
        if node_id in self.stores:
            raise DuplicateNodeError(f"node {node_id} already present")
        cost = self.overlay.join(node_id)
        store = self.store_spec.create(node_id=node_id)
        self.stores[node_id] = store
        successor = self.overlay.successor_id(node_id)
        moved = 0
        if successor != node_id:
            moved = self._transfer_range_from(successor, node_id)
            cost += 1 if moved else 0
        self._invalidate_segments(self._owned_segments(node_id))
        if self.tracer is not None:
            self.tracer.record(NodeJoined(node_id))
            if moved:
                self.tracer.record(KeyMoved(successor, node_id, moved))
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("system.nodes_joined").inc()
            reg.counter("system.keys_moved").inc(moved)
            reg.gauge("system.nodes").set(len(self.overlay))
        return cost

    def remove_node(self, node_id: int) -> int:
        """Gracefully remove a node, handing its keys to its successor."""
        departing_segments = self._owned_segments(node_id)
        successor = self.overlay.successor_id(node_id)
        cost = self.overlay.leave(node_id)
        departing = self.stores.pop(node_id)
        moved = 0
        target_id = node_id
        if self.overlay.node_ids():
            target_id = successor if successor != node_id else self.overlay.node_ids()[0]
            target = self.stores[target_id]
            for element in departing.all_elements():
                target.add(element)
                moved += 1
            cost += 1 if departing.element_count else 0
        departing.close()
        self._invalidate_segments(departing_segments)
        if self.tracer is not None:
            self.tracer.record(NodeLeft(node_id))
            if moved:
                self.tracer.record(KeyMoved(node_id, target_id, moved))
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("system.nodes_left").inc()
            reg.counter("system.keys_moved").inc(moved)
            reg.gauge("system.nodes").set(len(self.overlay))
        return cost

    def change_node_id(self, old_id: int, new_id: int) -> tuple[int, int]:
        """Shift a node's identifier (runtime load balancing, paper §3.5).

        Moving the identifier moves the ``(predecessor, id]`` boundary: keys
        between the old and new identifier change hands with the successor.
        Returns ``(keys_moved, message_cost)``.
        """
        succ = self.overlay.successor_id(old_id)
        cost = self.overlay.rename_node(old_id, new_id)
        store = self.stores.pop(old_id)
        self.stores[new_id] = store
        moved = 0
        if succ == old_id:
            return 0, cost
        if new_id < old_id:
            # Shrunk: hand (new_id, old_id] to the successor.
            for element in store.pop_range(new_id + 1, old_id):
                self.stores[succ].add(element)
                moved += 1
            src, dest = new_id, succ
        else:
            # Grew: absorb (old_id, new_id] from the successor.
            for element in self.stores[succ].pop_range(old_id + 1, new_id):
                store.add(element)
                moved += 1
            src, dest = succ, new_id
        self._invalidate_segments(
            [(new_id + 1, old_id)] if new_id < old_id else [(old_id + 1, new_id)]
        )
        if moved:
            if self.tracer is not None:
                self.tracer.record(KeyMoved(src, dest, moved))
            reg = obs_metrics.active()
            if reg is not None:
                reg.counter("system.keys_moved").inc(moved)
        return moved, cost + (1 if moved else 0)

    def fail_node(self, node_id: int) -> None:
        """Crash a node: its identifier leaves the ring and its keys are lost.

        Unlike :meth:`remove_node` nothing is handed over — this is the
        lossy failure the fault plane and churn simulator inject when no
        replication is attached.  The crashed node's owned index segments
        are computed *before* the ring splices them away and any cached
        results overlapping them are invalidated (their stored matches may
        contain elements that no longer exist anywhere).
        """
        lost_segments = self._owned_segments(node_id)
        self.overlay.fail(node_id)
        self.stores.pop(node_id, None)
        self._invalidate_segments(lost_segments)
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter("system.nodes_crashed").inc()
            reg.gauge("system.nodes").set(len(self.overlay))

    def _transfer_range_from(self, source_id: int, new_node_id: int) -> int:
        """Move the keys that ``new_node_id`` now owns out of ``source_id``."""
        pred = self.overlay.predecessor_id(new_node_id)
        source = self.stores[source_id]
        moved = 0
        if pred == new_node_id:  # single node: nothing to move
            return 0
        # The new node owns (pred, new_node]; that range may wrap.
        segments: list[tuple[int, int]]
        if pred < new_node_id:
            segments = [(pred + 1, new_node_id)]
        else:
            segments = [(pred + 1, self.overlay.space - 1), (0, new_node_id)]
        target = self.stores[new_node_id]
        for low, high in segments:
            if low > high:
                continue
            for element in source.pop_range(low, high):
                target.add(element)
                moved += 1
        return moved

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node_loads(self) -> dict[int, int]:
        """Keys per node (the paper's load measure, Figure 19)."""
        return {node_id: store.key_count for node_id, store in self.stores.items()}

    def total_keys(self) -> int:
        """Distinct keyword combinations stored across all peers."""
        return sum(store.key_count for store in self.stores.values())

    def total_elements(self) -> int:
        """Data elements stored across all peers."""
        return sum(store.element_count for store in self.stores.values())

    def key_index_distribution(self, intervals: int = 500) -> np.ndarray:
        """Keys per equal-width index-space interval (paper Figure 18)."""
        counts = np.zeros(intervals, dtype=np.int64)
        width = self.curve.size / intervals
        for store in self.stores.values():
            for index in store.indices():
                bucket = min(int(index / width), intervals - 1)
                counts[bucket] += store.key_count_at(index)
        return counts

    def check_placement_invariant(self) -> bool:
        """Every stored element lives at the owner of its index."""
        for node_id, store in self.stores.items():
            node = self.overlay.nodes[node_id]
            for element in store.all_elements():
                if not ring_contains_open_closed(
                    element.index, node.predecessor, node_id, self.overlay.space
                ):
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SquidSystem(nodes={len(self.overlay)}, keys={self.total_keys()}, "
            f"space={self.space!r}, curve={self.curve!r})"
        )
