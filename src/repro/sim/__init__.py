"""Discrete-event simulation: event core and churn/maintenance processes."""

from repro.sim.churn import (
    ChurnConfig,
    ChurnProcess,
    LoadBalanceProcess,
    StabilizationProcess,
)
from repro.sim.events import Event, Simulator

__all__ = [
    "Event",
    "Simulator",
    "ChurnConfig",
    "ChurnProcess",
    "StabilizationProcess",
    "LoadBalanceProcess",
]
