"""Churn and maintenance processes over a live Squid system.

Drives membership dynamics on the discrete-event core: Poisson node
arrivals/departures/crashes and the paper's periodic stabilization ("each
node periodically runs a stabilization algorithm where it chooses a random
entry in its finger table, checks for its state, and updates it if
required", §3.2).  Used by the fault-tolerance tests and the churn example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.system import SquidSystem
from repro.sim.events import Simulator
from repro.util.rng import RandomLike, as_generator

__all__ = ["ChurnConfig", "ChurnProcess", "StabilizationProcess", "LoadBalanceProcess"]


@dataclass
class ChurnConfig:
    """Rates are events per time unit across the whole system."""

    join_rate: float = 0.0
    leave_rate: float = 0.0
    crash_rate: float = 0.0
    min_nodes: int = 2


@dataclass
class ChurnStats:
    joins: int = 0
    leaves: int = 0
    crashes: int = 0
    messages: int = 0


class ChurnProcess:
    """Poisson membership churn driving a SquidSystem on a Simulator.

    Graceful leaves move keys to the successor; crashes *lose* the crashed
    node's keys (as in a real deployment without replication) and leave
    stale routing state behind for stabilization to repair.
    """

    def __init__(
        self,
        sim: Simulator,
        system: SquidSystem,
        config: ChurnConfig,
        rng: RandomLike = None,
        crash_hook=None,
    ) -> None:
        self.sim = sim
        self.system = system
        self.config = config
        self.rng = as_generator(rng)
        self.stats = ChurnStats()
        #: Optional callable invoked with the victim's id instead of the
        #: default lossy crash — wire :meth:`FaultPlane.crash_node` (crashes
        #: coordinated with in-flight queries, replication-aware recovery)
        #: or :meth:`ReplicationManager.crash` here.  It should return a
        #: falsy value when the crash was vetoed (e.g. the plane's
        #: ``min_live`` floor); vetoed crashes are not counted.
        self.crash_hook = crash_hook
        self._arm("join", config.join_rate)
        self._arm("leave", config.leave_rate)
        self._arm("crash", config.crash_rate)

    def _arm(self, kind: str, rate: float) -> None:
        if rate <= 0:
            return
        delay = float(self.rng.exponential(1.0 / rate))

        def fire() -> None:
            self._do(kind)
            self._arm(kind, rate)

        self.sim.schedule(delay, fire)

    def _do(self, kind: str) -> None:
        overlay = self.system.overlay
        ids = overlay.node_ids()
        if kind == "join":
            node_id = int(self.rng.integers(0, overlay.space))
            if node_id in overlay.nodes:
                return
            self.stats.messages += self.system.add_node(node_id)
            self.stats.joins += 1
        elif len(ids) > self.config.min_nodes:
            victim = ids[int(self.rng.integers(0, len(ids)))]
            if kind == "leave":
                self.stats.messages += self.system.remove_node(victim)
                self.stats.leaves += 1
            elif self.crash_hook is not None:
                outcome = self.crash_hook(victim)
                if outcome is None or outcome:
                    self.stats.crashes += 1
            else:
                # Crash: keys on the victim are lost; no notifications.
                # fail_node also invalidates result-cache entries covering
                # the victim's owned index segments.
                self.system.fail_node(victim)
                self.stats.crashes += 1


class LoadBalanceProcess:
    """Periodic runtime load balancing (paper §3.5).

    "The runtime load-balancing step consists of periodically running a
    local load-balancing algorithm between few neighboring nodes" — and,
    because each round costs O(log N) per node, "this load-balancing
    algorithm cannot be run very often": the interval should be long
    relative to stabilization.
    """

    def __init__(
        self,
        sim: Simulator,
        system: SquidSystem,
        interval: float,
        threshold: float = 1.5,
        rng: RandomLike = None,
    ) -> None:
        from repro.core.loadbalance import neighbor_balance_round

        self.sim = sim
        self.system = system
        self.threshold = threshold
        self.rng = as_generator(rng)
        self.rounds = 0
        self.shifts = 0
        self.messages = 0
        self._balance = neighbor_balance_round
        jitter = lambda: float(self.rng.uniform(0, interval * 0.1))
        self._stop = sim.schedule_periodic(interval, self._round, jitter=jitter)

    def _round(self) -> None:
        shifts, cost = self._balance(self.system, threshold=self.threshold)
        self.rounds += 1
        self.shifts += shifts
        self.messages += cost

    def stop(self) -> None:
        self._stop()


class StabilizationProcess:
    """Periodic per-node stabilization (successor/predecessor/finger repair)."""

    def __init__(
        self,
        sim: Simulator,
        system: SquidSystem,
        interval: float,
        rng: RandomLike = None,
    ) -> None:
        self.sim = sim
        self.system = system
        self.rng = as_generator(rng)
        self.messages = 0
        jitter = lambda: float(self.rng.uniform(0, interval * 0.1))
        self._stop = sim.schedule_periodic(interval, self._round, jitter=jitter)

    def _round(self) -> None:
        overlay = self.system.overlay
        for node_id in overlay.node_ids():
            self.messages += overlay.stabilize_node(node_id, self.rng)

    def stop(self) -> None:
        self._stop()
