"""Minimal discrete-event simulation core.

The paper's query metrics are deterministic counts, but its *dynamic*
behaviour — node joins/departures/failures, the periodic stabilization
protocol, runtime load balancing — unfolds over time.  This module provides
the event queue those processes run on: a classic calendar with
``schedule(delay, fn)`` / ``run_until(t)`` semantics and deterministic
tie-breaking (FIFO among simultaneous events).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError

__all__ = ["Event", "Simulator"]


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback; ordering is (time, sequence number)."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False, hash=False)


class Simulator:
    """Deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()
        self.events_executed = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(time=self.now + delay, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        return self.schedule(time - self.now, action)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (lazy deletion)."""
        self._cancelled.add(event.seq)

    def schedule_periodic(
        self,
        interval: float,
        action: Callable[[], None],
        *,
        start: float | None = None,
        jitter: Callable[[], float] | None = None,
    ) -> Callable[[], None]:
        """Run ``action`` every ``interval`` units; returns a stop function.

        ``jitter`` (a zero-arg callable) is added to each period to model
        desynchronized timers across peers.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        stopped = False

        def tick() -> None:
            if stopped:
                return
            action()
            delay = interval + (jitter() if jitter else 0.0)
            self.schedule(max(delay, 1e-9), tick)

        first = interval if start is None else start
        self.schedule(max(first, 0.0), tick)

        def stop() -> None:
            nonlocal stopped
            stopped = True

        return stop

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.seq in self._cancelled:
                self._cancelled.discard(event.seq)
                continue
            self.now = event.time
            event.action()
            self.events_executed += 1
            return True
        return False

    def run_until(self, time: float) -> int:
        """Run all events up to and including ``time``; returns count run."""
        if time < self.now:
            raise SimulationError("cannot run backwards in time")
        executed = 0
        while self._queue:
            head = self._queue[0]
            if head.seq in self._cancelled:
                heapq.heappop(self._queue)
                self._cancelled.discard(head.seq)
                continue
            if head.time > time:
                break
            self.step()
            executed += 1
        self.now = max(self.now, time)
        return executed

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue (bounded by ``max_events`` as a runaway guard)."""
        executed = 0
        while executed < max_events and self.step():
            executed += 1
        if self._queue and executed >= max_events:
            raise SimulationError(f"exceeded {max_events} events; runaway process?")
        return executed

    @property
    def pending(self) -> int:
        """Number of events still queued (including lazily cancelled ones)."""
        return len(self._queue)
