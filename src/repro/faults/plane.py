"""The fault-injection plane: seeded, deterministic message-level faults.

A :class:`FaultPlane` sits between engine dispatch and overlay routing and
decides, per *physical* message, whether the transmission is dropped,
delayed, duplicated, or whether it kills its destination outright
(crash-during-query).  It also models persistently slow peers and —
for the adversarial threat model of :mod:`repro.core.adversary` — a fixed
set of *dropper* nodes that discard every message addressed to them.

Determinism is the design center: every decision comes from one seeded
:class:`numpy.random.Generator` owned by the plane, so a (system seed,
plane seed, query sequence) triple replays the exact same fault schedule.
An **inert** plane (all rates zero, no droppers) consumes no randomness and
the engines bypass it entirely, which is what makes the zero-fault
bit-identity guarantee against the plain :class:`~repro.core.engine.OptimizedEngine`
testable (see ``tests/faults/``).

Crashes need to mutate the live system, which the plane does not own; wire
it with :meth:`FaultPlane.attach_system` before enabling ``crash_rate``.
With a :class:`~repro.core.replication.ReplicationManager` attached the
crash promotes the victim's replicas (data survives); without one it uses
the simulator's lossy crash (keys gone), matching
:class:`~repro.sim.churn.ChurnProcess`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.errors import FaultError
from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replication import ReplicationManager
    from repro.core.system import SquidSystem

__all__ = ["FaultConfig", "FaultOutcome", "FaultStats", "FaultPlane"]


@dataclass(frozen=True)
class FaultConfig:
    """Fault probabilities and shape parameters, all per physical message.

    All rates are probabilities in ``[0, 1]``.  ``slow_fraction`` selects a
    deterministic subset of nodes (a per-node hash of ``seed``) whose local
    processing takes ``slow_factor`` times longer; it affects timing only,
    never correctness.
    """

    drop_rate: float = 0.0
    crash_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    #: Mean of the exponential delay added when a message is delayed.
    delay_mean: float = 1.0
    slow_fraction: float = 0.0
    slow_factor: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "crash_rate", "duplicate_rate", "delay_rate",
                     "slow_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {value}")
        if self.delay_mean <= 0:
            raise FaultError(f"delay_mean must be > 0, got {self.delay_mean}")
        if self.slow_factor < 1.0:
            raise FaultError(f"slow_factor must be >= 1, got {self.slow_factor}")

    @property
    def active(self) -> bool:
        """True when any fault can actually fire under this configuration."""
        return (
            self.drop_rate > 0
            or self.crash_rate > 0
            or self.duplicate_rate > 0
            or self.delay_rate > 0
            or self.slow_fraction > 0
        )


@dataclass(frozen=True)
class FaultOutcome:
    """What happened to one transmission through the plane."""

    #: The message never arrived (random drop, or the destination is a dropper).
    dropped: bool = False
    #: The destination node crashed while handling the message; the message
    #: died with it and the node is no longer in the overlay.
    crashed: bool = False
    #: The message arrived twice (the duplicate costs one extra direct send).
    duplicated: bool = False
    #: Extra in-flight latency charged to the delivery (latency-model units).
    delay: float = 0.0


@dataclass
class FaultStats:
    """Running totals of what the plane actually did."""

    messages: int = 0
    dropped: int = 0
    crashed: int = 0
    duplicated: int = 0
    delayed: int = 0
    #: Node identifiers the plane crashed, in crash order.
    crashed_nodes: list[int] = field(default_factory=list)


class FaultPlane:
    """Deterministic, seeded fault injector for engine-to-overlay messages.

    ``droppers`` are nodes that *always* discard messages addressed to them
    (the adversarial threat model); the probabilistic faults come from
    ``config``.  Both may be combined.  The plane is shared state: one
    instance injected into an engine applies to every query that engine
    runs, and its RNG stream advances across queries.
    """

    def __init__(
        self,
        config: FaultConfig | None = None,
        droppers: Iterable[int] = (),
    ) -> None:
        self.config = config if config is not None else FaultConfig()
        self.droppers = frozenset(int(d) for d in droppers)
        self.rng = np.random.default_rng(self.config.seed)
        self.stats = FaultStats()
        self._crash_executor: Callable[[int], None] | None = None
        self._system: "SquidSystem | None" = None
        self._min_live = 2
        self._protected: int | None = None
        self._slow_cache: dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when this plane can affect execution at all.

        Engines consult this once per query and take the unmodified fast
        path when it is False, so an inert plane is bit-identical (results,
        stats, metrics, RNG consumption) to having no plane.
        """
        return bool(self.droppers) or self.config.active

    def always_drops(self, node_id: int) -> bool:
        """True when ``node_id`` discards every message (retrying is futile)."""
        return node_id in self.droppers

    def attach_system(
        self,
        system: "SquidSystem",
        replication: "ReplicationManager | None" = None,
        min_live: int = 2,
    ) -> "FaultPlane":
        """Wire crash execution to a live system; returns ``self``.

        With ``replication`` the crash runs the manager's promote-and-repair
        protocol (the victim's data survives on its successors); without it
        the crash is lossy, exactly like
        :class:`~repro.sim.churn.ChurnProcess`.  ``min_live`` bounds the
        destruction: the plane never crashes below that many live nodes.
        """
        self._system = system
        self._min_live = max(1, min_live)
        if replication is not None:
            def executor(node_id: int) -> None:
                successor = system.overlay.successor_id(node_id)
                replication.crash(node_id)
                if successor != node_id and successor in system.overlay.nodes:
                    replication.repair_around(successor)
        else:
            def executor(node_id: int) -> None:
                system.fail_node(node_id)
        self._crash_executor = executor
        return self

    def begin_query(self, origin_id: int) -> None:
        """Mark the query origin as protected (the plane never crashes it)."""
        self._protected = origin_id

    # ------------------------------------------------------------------
    # The fault decision
    # ------------------------------------------------------------------
    def transmit(self, sender_id: int, dest_id: int) -> FaultOutcome:
        """Decide the fate of one physical message ``sender -> dest``.

        Consumes randomness only for fault families whose rate is non-zero,
        so e.g. a droppers-only plane is fully deterministic and two planes
        with the same seed and config replay identical schedules regardless
        of which other fault families exist in the code.
        """
        cfg = self.config
        rng = self.rng
        self.stats.messages += 1
        if dest_id in self.droppers:
            self._count("dropped")
            return FaultOutcome(dropped=True)
        if cfg.crash_rate > 0 and rng.random() < cfg.crash_rate:
            if self._try_crash(dest_id):
                return FaultOutcome(crashed=True)
        if cfg.drop_rate > 0 and rng.random() < cfg.drop_rate:
            self._count("dropped")
            return FaultOutcome(dropped=True)
        delay = 0.0
        if cfg.delay_rate > 0 and rng.random() < cfg.delay_rate:
            delay = float(rng.exponential(cfg.delay_mean))
            self._count("delayed")
        duplicated = False
        if cfg.duplicate_rate > 0 and rng.random() < cfg.duplicate_rate:
            duplicated = True
            self._count("duplicated")
        return FaultOutcome(duplicated=duplicated, delay=delay)

    def crash_node(self, node_id: int) -> bool:
        """Crash ``node_id`` through the attached executor (public hook).

        Used by :class:`~repro.sim.churn.ChurnProcess` to crash nodes while
        queries are in flight.  Respects the ``min_live`` floor and origin
        protection; returns True when the crash actually happened.
        """
        return self._try_crash(node_id)

    def slow_factor(self, node_id: int) -> float:
        """Processing-time multiplier for ``node_id`` (1.0 for normal peers).

        Slow-node membership is a deterministic per-node hash of the plane
        seed — independent of query order, so timing experiments replay.
        """
        cfg = self.config
        if cfg.slow_fraction <= 0:
            return 1.0
        slow = self._slow_cache.get(node_id)
        if slow is None:
            draw = np.random.default_rng((cfg.seed, 0x51, node_id)).random()
            slow = bool(draw < cfg.slow_fraction)
            self._slow_cache[node_id] = slow
        return cfg.slow_factor if slow else 1.0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _try_crash(self, node_id: int) -> bool:
        if self._crash_executor is None or self._system is None:
            raise FaultError(
                "crash faults require a wired system; call "
                "FaultPlane.attach_system(system, replication=...) first"
            )
        overlay = self._system.overlay
        if (
            node_id == self._protected
            or node_id not in overlay.nodes
            or len(overlay) <= self._min_live
        ):
            return False
        self._crash_executor(node_id)
        self.stats.crashed_nodes.append(node_id)
        self._count("crashed")
        return True

    def _count(self, kind: str) -> None:
        setattr(self.stats, kind, getattr(self.stats, kind) + 1)
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter(f"faults.{kind}").inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlane(config={self.config!r}, droppers={len(self.droppers)}, "
            f"stats={self.stats!r})"
        )
