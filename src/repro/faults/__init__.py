"""Fault injection and resilience policy for query execution.

This package holds the two pieces the resilient query path is built from:

* :class:`~repro.faults.plane.FaultPlane` — a deterministic, seeded
  injector of message drops, delays, duplication, slow nodes, and
  crash-during-query, sitting between engine dispatch and overlay routing;
* :class:`~repro.faults.retry.RetryPolicy` — per-hop timeouts, retry with
  exponential backoff and seeded jitter, successor failover, and a bounded
  retry budget.

Wire both into :class:`~repro.core.engine.OptimizedEngine` (its
``fault_plane``/``retry``/``replication`` parameters) to get graceful
degradation with partial-result accounting; see ``docs/resilience.md`` and
the ``python -m repro chaos`` subcommand for end-to-end usage.

This package deliberately does not import :mod:`repro.core` at runtime —
the dependency points the other way (engines consume planes/policies).
"""

from repro.faults.plane import FaultConfig, FaultOutcome, FaultPlane, FaultStats
from repro.faults.retry import RetryPolicy

__all__ = [
    "FaultConfig",
    "FaultOutcome",
    "FaultPlane",
    "FaultStats",
    "RetryPolicy",
]
