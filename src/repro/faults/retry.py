"""Retry, backoff, and failover policy for resilient query execution.

A :class:`RetryPolicy` tells the resilient
:class:`~repro.core.engine.OptimizedEngine` how hard to fight the
:class:`~repro.faults.plane.FaultPlane` for each physical message:

* up to ``max_attempts`` transmissions to the *same* destination, separated
  by per-hop timeouts growing exponentially (``timeout * backoff**n``) with
  seeded jitter drawn from the plane's RNG;
* after exhausting a destination (or immediately, for a known
  always-dropper), **failover** to the destination's ring successor, whose
  replica store can serve the unresponsive peer's share of the data;
* a hard ``budget`` on total transmissions per message, bounding worst-case
  cost on a badly broken network — when it runs out the branch is recorded
  as lost (``QueryResult.unresolved_ranges``) instead of retrying forever.

The policy object is immutable and engine-independent; the same instance
can be shared by many engines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a sender handles an unacknowledged transmission.

    ``max_attempts`` counts transmissions per destination *including* the
    first; ``budget`` bounds transmissions per logical message across all
    destinations tried (failover chains included).
    """

    max_attempts: int = 4
    budget: int = 12
    #: Base per-hop timeout charged (in latency-model units) before the
    #: first retransmission.
    timeout: float = 1.0
    #: Exponential backoff multiplier applied per additional attempt.
    backoff: float = 2.0
    #: Uniform jitter fraction added to each wait (0 disables jitter and
    #: keeps the policy from consuming plane randomness).
    max_jitter: float = 0.25
    #: Whether to fail over to the ring successor once a destination is
    #: exhausted (serving its range from replicas when available).
    failover: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.budget < self.max_attempts:
            raise FaultError(
                f"budget ({self.budget}) must be >= max_attempts "
                f"({self.max_attempts})"
            )
        if self.timeout < 0 or self.backoff < 1.0 or self.max_jitter < 0:
            raise FaultError(
                "timeout must be >= 0, backoff >= 1, max_jitter >= 0"
            )

    def wait_for(self, attempt: int, rng: np.random.Generator) -> float:
        """Timeout charged after the ``attempt``-th failed transmission.

        Exponential backoff with seeded jitter: ``timeout * backoff**(a-1)``
        scaled by ``1 + U(0, max_jitter)`` drawn from ``rng`` (the fault
        plane's generator, keeping the whole schedule replayable).
        """
        base = self.timeout * self.backoff ** max(0, attempt - 1)
        if self.max_jitter > 0:
            base *= 1.0 + float(rng.uniform(0.0, self.max_jitter))
        return base
