"""Gray-coded curve — the middle ground between Z-order and Hilbert.

The classic comparison set for locality-preserving mappings (Faloutsos;
Moon, Jagadish, Faloutsos & Saltz — the paper's reference [12]) is Z-order <
Gray-coded < Hilbert.  The Gray-coded curve visits each subcube's children
in binary-reflected Gray-code order, so *sibling* cells adjacent on the
curve share a face, but unlike Hilbert the orientation is never rotated, so
adjacency breaks at subcube boundaries.

Including it makes the curve ablation three-way: the paper's choice of
Hilbert is justified not merely against naive bit interleaving but against
the stronger Gray-coded alternative.
"""

from __future__ import annotations

from typing import Sequence

from repro.sfc.base import CurveState, SpaceFillingCurve
from repro.util.bits import bit_mask, gray_decode, gray_encode

__all__ = ["GrayCurve"]

_STATE = ("gray",)  # Stateless: every subcube is traversed identically.


class GrayCurve(SpaceFillingCurve):
    """Discrete Gray-coded curve over ``[0, 2**order)**dims``."""

    name = "gray"

    def __init__(self, dims: int, order: int) -> None:
        super().__init__(dims, order)
        self._dim_mask = bit_mask(dims)
        # Children in curve order: rank r maps to coordinate label gc(r).
        self._children = tuple(
            (gray_encode(rank), _STATE) for rank in range(1 << dims)
        )

    def encode(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        dims, order = self.dims, self.order
        index = 0
        for level in range(order - 1, -1, -1):
            label = 0
            for j in range(dims):
                label |= ((pt[j] >> level) & 1) << j
            index = (index << dims) | gray_decode(label)
        return index

    def decode(self, index: int) -> tuple[int, ...]:
        index = self._check_index(index)
        dims, order = self.dims, self.order
        coords = [0] * dims
        for level in range(order - 1, -1, -1):
            rank = (index >> (level * dims)) & self._dim_mask
            label = gray_encode(rank)
            for j in range(dims):
                coords[j] |= ((label >> j) & 1) << level
        return tuple(coords)

    def root_state(self) -> CurveState:
        return _STATE

    def children(self, state: CurveState) -> tuple[tuple[int, CurveState], ...]:
        return self._children
