"""Onion curve (hierarchical adaptation) — the fourth curve family.

Xu, Nguyen & Tirthapura's onion curve ("Onion Curve: A Space Filling Curve
with Near-Optimal Clustering", PAPERS.md) traverses the universe in
concentric shells, peeling the boundary loop of the cube before recursing
inward, and achieves near-optimal clustering for cube queries.  The true
onion curve cannot be used by Squid directly: concentric shells cut across
subcube boundaries, so indices inside a level-ℓ subcube do **not** share
their first ``ℓ·dims`` bits — and that *digital causality* property is
exactly what the prefix-routed overlay and the recursive cluster refinement
of the paper (Figures 6-7) require of a mapping.

This module therefore implements a *hierarchical* adaptation that keeps the
onion idea — every subcube is traversed as a closed peel loop around its
shell — while staying a recursive, prefix-causal curve behind the
:class:`~repro.sfc.base.SpaceFillingCurve` ABC:

* Within a subcube in state ``(anchor, axis)`` the ``2**dims`` children are
  visited along the binary-reflected Gray cycle (a Hamiltonian *loop* on the
  corner hypercube — the shell of the subcube), started at the ``anchor``
  corner and rotated by ``axis``: ``label(r) = anchor ^ rol(gray(r), axis)``.
* Each child's own loop is anchored at the corner *facing the predecessor
  child* (``anchor(r) = label(r-1)``, the onion analogue of peeling toward
  where the previous peel ended), and its cut axis advances by
  ``1 + trailing_set_bits(r)`` so successive peels rotate through all axes.

The state space is finite (at most ``2**dims · dims`` reachable states), so
the generic transition-table machinery (``refine_vec.CurveTable``) and both
query engines work unchanged.  Measured with ``sfc/analysis.py``, the
adaptation's mean cluster count sits strictly between Hilbert and Gray in
2-D and beats Gray in 3-D — the ablation ordering asserted by the tests is
``hilbert <= onion <= zorder``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.sfc.base import CurveState, SpaceFillingCurve
from repro.util.bits import bit_mask, gray_encode, rotate_left, trailing_set_bits

__all__ = ["OnionCurve", "OnionState"]


class OnionState(tuple):
    """Immutable ``(anchor, axis)`` pair describing a subcube's peel frame."""

    __slots__ = ()

    def __new__(cls, anchor: int, axis: int) -> "OnionState":
        return super().__new__(cls, (anchor, axis))

    @property
    def anchor(self) -> int:
        return self[0]

    @property
    def axis(self) -> int:
        return self[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OnionState(anchor={self[0]:#b}, axis={self[1]})"


def _peel(anchor: int, axis: int, dims: int) -> tuple[tuple[int, OnionState], ...]:
    """Children of a subcube with state ``(anchor, axis)``, in curve order."""
    n_children = 1 << dims
    labels = [
        anchor ^ rotate_left(gray_encode(rank), axis, dims)
        for rank in range(n_children)
    ]
    rows = []
    for rank in range(n_children):
        child_anchor = anchor if rank == 0 else labels[rank - 1]
        child_axis = (axis + 1 + trailing_set_bits(rank)) % dims
        rows.append((labels[rank], OnionState(child_anchor, child_axis)))
    return tuple(rows)


@lru_cache(maxsize=16)
def _transition_table(
    dims: int,
) -> dict[tuple[int, int], tuple[tuple[int, OnionState], ...]]:
    """Child enumerations for every reachable ``(anchor, axis)`` state (BFS)."""
    table: dict[tuple[int, int], tuple[tuple[int, OnionState], ...]] = {}
    pending: list[tuple[int, int]] = [(0, 0)]
    while pending:
        state = pending.pop()
        if state in table:
            continue
        rows = _peel(state[0], state[1], dims)
        table[state] = rows
        for _, child in rows:
            if tuple(child) not in table:
                pending.append(tuple(child))
    return table


@lru_cache(maxsize=16)
def _dense_tables(dims: int) -> tuple[dict, np.ndarray, np.ndarray, np.ndarray]:
    """Integer-indexed transition tables for the NumPy bulk kernels.

    Returns ``(state_ids, label_of, rank_of, next_of)`` where for state id
    ``s``: ``label_of[s, rank]`` is the child's coordinate label,
    ``rank_of[s, label]`` the inverse mapping, and ``next_of[s, rank]`` the
    child's state id.
    """
    table = _transition_table(dims)
    state_ids = {state: i for i, state in enumerate(sorted(table))}
    n_states, n_children = len(state_ids), 1 << dims
    label_of = np.zeros((n_states, n_children), dtype=np.int64)
    rank_of = np.zeros((n_states, n_children), dtype=np.int64)
    next_of = np.zeros((n_states, n_children), dtype=np.int64)
    for state, rows in table.items():
        s = state_ids[state]
        for rank, (label, child) in enumerate(rows):
            label_of[s, rank] = label
            rank_of[s, label] = rank
            next_of[s, rank] = state_ids[tuple(child)]
    return state_ids, label_of, rank_of, next_of


class OnionCurve(SpaceFillingCurve):
    """Hierarchical onion (peel-loop) curve over ``[0, 2**order)**dims``."""

    name = "onion"

    def __init__(self, dims: int, order: int) -> None:
        super().__init__(dims, order)
        self._dim_mask = bit_mask(dims)
        self._table = _transition_table(dims)
        # Per-state inverse mapping label -> rank for scalar encode.
        self._rank_of = {
            state: {label: rank for rank, (label, _) in enumerate(rows)}
            for state, rows in self._table.items()
        }

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------
    def encode(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        dims, order = self.dims, self.order
        state = (0, 0)
        index = 0
        for level in range(order - 1, -1, -1):
            label = 0
            for j in range(dims):
                label |= ((pt[j] >> level) & 1) << j
            rank = self._rank_of[state][label]
            index = (index << dims) | rank
            state = tuple(self._table[state][rank][1])
        return index

    def decode(self, index: int) -> tuple[int, ...]:
        index = self._check_index(index)
        dims, order = self.dims, self.order
        state = (0, 0)
        coords = [0] * dims
        for level in range(order - 1, -1, -1):
            rank = (index >> (level * dims)) & self._dim_mask
            label, child = self._table[state][rank]
            for j in range(dims):
                coords[j] |= ((label >> j) & 1) << level
            state = tuple(child)
        return tuple(coords)

    def encode_many(self, points: np.ndarray) -> np.ndarray:  # type: ignore[override]
        """Vectorized table-walk encode for indices that fit in 63 bits."""
        if not self.fits_int64:
            return super().encode_many(points)
        points = np.asarray(points, dtype=np.int64)
        if points.ndim != 2 or points.shape[1] != self.dims:
            return super().encode_many(points)
        _, _, rank_of, next_of = _dense_tables(self.dims)
        states = np.zeros(points.shape[0], dtype=np.int64)
        index = np.zeros(points.shape[0], dtype=np.int64)
        for level in range(self.order - 1, -1, -1):
            label = np.zeros(points.shape[0], dtype=np.int64)
            for j in range(self.dims):
                label |= ((points[:, j] >> level) & 1) << j
            rank = rank_of[states, label]
            index = (index << self.dims) | rank
            states = next_of[states, rank]
        return index

    def decode_many(self, indices: np.ndarray) -> np.ndarray:  # type: ignore[override]
        """Vectorized table-walk decode for indices that fit in 63 bits."""
        if not self.fits_int64:
            return super().decode_many(indices)
        indices = np.asarray(indices, dtype=np.int64).ravel()
        _, label_of, _, next_of = _dense_tables(self.dims)
        states = np.zeros(indices.shape[0], dtype=np.int64)
        coords = np.zeros((indices.shape[0], self.dims), dtype=np.int64)
        for level in range(self.order - 1, -1, -1):
            rank = (indices >> (level * self.dims)) & self._dim_mask
            label = label_of[states, rank]
            for j in range(self.dims):
                coords[:, j] |= ((label >> j) & 1) << level
            states = next_of[states, rank]
        return coords

    # ------------------------------------------------------------------
    # Recursive structure
    # ------------------------------------------------------------------
    def root_state(self) -> CurveState:
        return OnionState(0, 0)

    def children(self, state: CurveState) -> tuple[tuple[int, CurveState], ...]:
        anchor, axis = state  # type: ignore[misc]
        return self._table[(anchor, axis)]
