"""Query regions in the discrete d-dimensional keyword space.

A flexible query (keywords, partial keywords, wildcards, ranges — paper §3.3)
maps to an axis-aligned box: each dimension contributes one inclusive integer
interval of coordinates.  Disjunctive queries map to a union of boxes, so the
general :class:`Region` is a box union.  The cluster machinery only needs one
predicate from a region: how a subcube *cell* of the curve relates to it
(disjoint / partially intersecting / fully contained).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import DimensionMismatchError

__all__ = ["Containment", "Interval", "Box", "Region", "full_region"]


class Containment(enum.Enum):
    """Relation of a cell to a region."""

    DISJOINT = 0
    PARTIAL = 1
    FULL = 2


@dataclass(frozen=True)
class Interval:
    """Inclusive integer interval ``[low, high]`` on one dimension."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"empty interval [{self.low}, {self.high}]")

    def contains(self, value: int) -> bool:
        return self.low <= value <= self.high

    def contains_interval(self, low: int, high: int) -> bool:
        """True if ``[low, high]`` lies entirely inside this interval."""
        return self.low <= low and high <= self.high

    def overlaps(self, low: int, high: int) -> bool:
        """True if ``[low, high]`` intersects this interval."""
        return not (high < self.low or self.high < low)

    @property
    def width(self) -> int:
        return self.high - self.low + 1


@dataclass(frozen=True)
class Box:
    """Axis-aligned box: one :class:`Interval` per dimension."""

    intervals: tuple[Interval, ...]

    @classmethod
    def from_bounds(cls, bounds: Iterable[tuple[int, int]]) -> "Box":
        return cls(tuple(Interval(lo, hi) for lo, hi in bounds))

    @property
    def dims(self) -> int:
        return len(self.intervals)

    def contains_point(self, point: Sequence[int]) -> bool:
        if len(point) != self.dims:
            raise DimensionMismatchError(self.dims, len(point))
        return all(iv.contains(int(c)) for iv, c in zip(self.intervals, point))

    def classify_cell(
        self, cell_lows: Sequence[int], cell_highs: Sequence[int]
    ) -> Containment:
        """Relation of the cell ``[cell_lows, cell_highs]`` to this box."""
        full = True
        for iv, lo, hi in zip(self.intervals, cell_lows, cell_highs):
            if not iv.overlaps(lo, hi):
                return Containment.DISJOINT
            if not iv.contains_interval(lo, hi):
                full = False
        return Containment.FULL if full else Containment.PARTIAL

    def classify_cells(self, cell_lows: np.ndarray, cell_highs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`classify_cell` over ``(N, dims)`` bound arrays.

        Returns an ``(N,)`` ``int8`` array of :class:`Containment` values.
        """
        lo = np.fromiter((iv.low for iv in self.intervals), dtype=np.int64, count=self.dims)
        hi = np.fromiter((iv.high for iv in self.intervals), dtype=np.int64, count=self.dims)
        overlap = np.logical_and(cell_highs >= lo, cell_lows <= hi).all(axis=1)
        full = np.logical_and(cell_lows >= lo, cell_highs <= hi).all(axis=1)
        codes = overlap.astype(np.int8)
        codes[full] = Containment.FULL.value
        return codes

    @property
    def volume(self) -> int:
        """Number of lattice points inside the box."""
        vol = 1
        for iv in self.intervals:
            vol *= iv.width
        return vol


@dataclass(frozen=True)
class Region:
    """Union of axis-aligned boxes, all with the same dimensionality."""

    boxes: tuple[Box, ...]

    def __post_init__(self) -> None:
        if not self.boxes:
            raise ValueError("a region needs at least one box")
        dims = self.boxes[0].dims
        for box in self.boxes:
            if box.dims != dims:
                raise DimensionMismatchError(dims, box.dims)

    @classmethod
    def from_box(cls, box: Box) -> "Region":
        return cls((box,))

    @classmethod
    def from_bounds(cls, bounds: Iterable[tuple[int, int]]) -> "Region":
        return cls((Box.from_bounds(bounds),))

    @property
    def dims(self) -> int:
        return self.boxes[0].dims

    def contains_point(self, point: Sequence[int]) -> bool:
        return any(box.contains_point(point) for box in self.boxes)

    def classify_cell(
        self, cell_lows: Sequence[int], cell_highs: Sequence[int]
    ) -> Containment:
        """Relation of a cell to the box union.

        A cell fully inside *any one* box is FULL; note this is conservative
        for unions (a cell covered only by several boxes jointly is reported
        PARTIAL), which is safe: PARTIAL cells are refined further, never
        dropped, so query results stay exact.
        """
        saw_overlap = False
        for box in self.boxes:
            relation = box.classify_cell(cell_lows, cell_highs)
            if relation is Containment.FULL:
                return Containment.FULL
            if relation is Containment.PARTIAL:
                saw_overlap = True
        return Containment.PARTIAL if saw_overlap else Containment.DISJOINT

    def classify_cells(self, cell_lows: np.ndarray, cell_highs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`classify_cell`: one ``int8`` code per cell row.

        Mirrors the scalar trichotomy exactly, including the conservative
        union semantics (FULL only when a *single* box contains the cell).
        This is the classification kernel of the vectorized refinement path
        (:mod:`repro.sfc.refine_vec`).
        """
        codes = self.boxes[0].classify_cells(cell_lows, cell_highs)
        for box in self.boxes[1:]:
            np.maximum(codes, box.classify_cells(cell_lows, cell_highs), out=codes)
        return codes

    def canonical_key(self) -> tuple:
        """Hashable, order-insensitive identity of the region's geometry.

        Two regions with the same box set (in any order) share a key; used
        by the query-plan cache (:mod:`repro.core.plancache`) to recognize
        repeated queries that cover the same coordinate region.
        """
        return tuple(
            sorted(
                tuple((iv.low, iv.high) for iv in box.intervals)
                for box in self.boxes
            )
        )

    @property
    def volume_upper_bound(self) -> int:
        """Sum of box volumes (exact when boxes are disjoint)."""
        return sum(box.volume for box in self.boxes)


def full_region(dims: int, order: int) -> Region:
    """The region covering the entire ``[0, 2**order)**dims`` space."""
    side = 1 << order
    return Region.from_bounds([(0, side - 1)] * dims)
