"""Clustering analytics for space-filling curves.

The paper's central argument is that the Hilbert mapping keeps queries
*clustered*: a query region maps to few curve segments, hence few peers.
This module quantifies that claim — cluster counts per query (the metric of
Moon, Jagadish, Faloutsos & Saltz's Hilbert clustering analysis, cited as
[12]) and locality statistics — and backs the Hilbert-vs-Z-order ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import DimensionMismatchError
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.clusters import resolve_clusters
from repro.sfc.regions import Region
from repro.util.rng import RandomLike, as_generator

__all__ = [
    "ClusterStats",
    "cluster_stats",
    "random_box_region",
    "average_cluster_count",
    "locality_ratio",
    "curve_comparison",
    "region_class_comparison",
]


@dataclass(frozen=True)
class ClusterStats:
    """Cluster decomposition statistics for one query region."""

    cluster_count: int
    covered_indices: int
    largest_cluster: int
    smallest_cluster: int

    @property
    def mean_cluster_length(self) -> float:
        if self.cluster_count == 0:
            return 0.0
        return self.covered_indices / self.cluster_count


def cluster_stats(curve: SpaceFillingCurve, region: Region) -> ClusterStats:
    """Exact cluster statistics of ``region`` on ``curve``.

    A region whose dimensionality disagrees with the curve's raises
    :class:`~repro.errors.DimensionMismatchError` up front — the cell
    classifier would otherwise silently truncate the comparison and emit
    garbage statistics (degenerate rows in the curve-comparison ablation).
    """
    if region.dims != curve.dims:
        raise DimensionMismatchError(curve.dims, region.dims)
    ranges = resolve_clusters(curve, region)
    if not ranges:
        return ClusterStats(0, 0, 0, 0)
    lengths = [high - low + 1 for low, high in ranges]
    return ClusterStats(
        cluster_count=len(ranges),
        covered_indices=sum(lengths),
        largest_cluster=max(lengths),
        smallest_cluster=min(lengths),
    )


def random_box_region(
    curve: SpaceFillingCurve, extent: int, rng: RandomLike = None
) -> Region:
    """A random axis-aligned cube region with side ``extent``.

    ``extent`` must be an integer in ``[1, curve.side]``: 1 yields a point
    region, ``curve.side`` the full space.  Anything outside (zero-width,
    overhanging, fractional) raises ``ValueError`` instead of silently
    producing a degenerate region.
    """
    gen = as_generator(rng)
    if isinstance(extent, bool) or not isinstance(extent, (int, np.integer)):
        raise ValueError(f"extent must be an integer, got {extent!r}")
    extent = int(extent)
    if not 1 <= extent <= curve.side:
        raise ValueError(f"extent must be in [1, {curve.side}], got {extent}")
    bounds = []
    for _ in range(curve.dims):
        low = int(gen.integers(0, curve.side - extent + 1))
        bounds.append((low, low + extent - 1))
    return Region.from_bounds(bounds)


def average_cluster_count(
    curve: SpaceFillingCurve,
    extent: int,
    samples: int = 50,
    rng: RandomLike = None,
) -> float:
    """Mean cluster count over random cube queries of side ``extent``.

    For the Hilbert curve in 2-D, theory (Moon et al.) predicts the expected
    number of clusters for a region approaches ``perimeter / (2 * 2)``;
    Z-order yields asymptotically more.  The ablation bench compares both.
    """
    gen = as_generator(rng)
    total = 0
    for _ in range(samples):
        region = random_box_region(curve, extent, gen)
        total += cluster_stats(curve, region).cluster_count
    return total / samples


def curve_comparison(
    dims: int = 2,
    order: int = 6,
    extent: int = 8,
    samples: int = 40,
    rng: RandomLike = None,
) -> dict[str, dict[str, float]]:
    """Clustering/locality summary for every registered curve family.

    Returns ``{curve_name: {"mean_clusters": ..., "locality": ...}}`` over
    identical random box queries — the data behind the mapping ablation
    (Hilbert < Gray < Z-order per Moon et al., with the onion adaptation
    between Hilbert and Gray).  ``extent`` and the locality window are
    clamped to the curve geometry so tiny orders cannot raise mid-sweep or
    emit degenerate rows.
    """
    from repro.sfc import CURVES

    gen = as_generator(rng)
    seed = int(gen.integers(0, 2**31 - 1))
    out: dict[str, dict[str, float]] = {}
    for name, cls in sorted(CURVES.items()):
        curve = cls(dims, order)
        safe_extent = max(1, min(int(extent), curve.side))
        window = min(4, curve.size - 1)
        out[name] = {
            "mean_clusters": average_cluster_count(
                curve, extent=safe_extent, samples=samples, rng=seed
            ),
            "locality": (
                locality_ratio(curve, window=window, samples=200, rng=seed)
                if window >= 1
                else 0.0
            ),
        }
    return out


def region_class_comparison(
    dims: int,
    order: int,
    classes: Mapping[str, Sequence[Region]],
    curves: Sequence[str] | None = None,
) -> dict[str, dict[str, float]]:
    """Mean cluster count per query class, for every curve family.

    ``classes`` maps a class label (e.g. ``"Q1-prefix"``, ``"Q3-range"``)
    to the query regions in that class — typically built from real query
    strings via ``KeywordSpace.region``.  Returns
    ``{curve_name: {class_label: mean_clusters}}``; the cluster count is
    the per-query message-cost driver (one cluster → one routed curve
    segment), so this is the data behind the per-query-class ablation.
    """
    from repro.sfc import CURVES, make_curve

    names = list(curves) if curves is not None else sorted(CURVES)
    out: dict[str, dict[str, float]] = {}
    for name in names:
        curve = make_curve(name, dims, order)
        per_class: dict[str, float] = {}
        for label, regions in classes.items():
            if not regions:
                per_class[label] = 0.0
                continue
            total = sum(cluster_stats(curve, r).cluster_count for r in regions)
            per_class[label] = total / len(regions)
        out[name] = per_class
    return out


def locality_ratio(
    curve: SpaceFillingCurve,
    window: int = 16,
    samples: int = 200,
    rng: RandomLike = None,
) -> float:
    """Mean d-space L1 distance between indices ``window`` apart on the curve.

    Lower is better (locality preservation); random placement (consistent
    hashing) would give distances on the order of ``dims * side / 3``.
    """
    gen = as_generator(rng)
    if curve.size <= window:
        raise ValueError("curve too small for the requested window")
    starts = gen.integers(0, curve.size - window, size=samples)
    total = 0.0
    for start in starts:
        a = curve.decode(int(start))
        b = curve.decode(int(start) + window)
        total += sum(abs(x - y) for x, y in zip(a, b))
    return total / samples
