"""Hilbert space-filling curve for arbitrary dimension and order.

The implementation follows the entry-point/direction state-machine
formulation of the compact-Hilbert-index literature (Hamilton's technical
report CS-2006-07, building on Butz and Lawder): a subcube at refinement
level ℓ is characterised by a state ``(e, d)`` where ``e`` is the *entry
vertex* (a ``dims``-bit corner label) and ``d`` the *intra-subcube
direction*.  The transform

    T_{e,d}(b)      = ror(b ^ e, d + 1)
    T^{-1}_{e,d}(b) = rol(b, d + 1) ^ e

maps a child's coordinate label to its rank along the curve (via the Gray
code) and back.  The same machinery yields :meth:`HilbertCurve.children`,
the curve-ordered child enumeration used by the recursive cluster
refinement of the paper (its Figures 6-7).

The curve produced here satisfies the classical Hilbert properties, all of
which are property-tested in ``tests/sfc``:

* bijectivity between points and indices,
* *adjacency*: consecutive indices are unit L1 distance apart,
* *digital causality*: all indices in a level-ℓ subcube share their first
  ``ℓ·dims`` bits,
* locality (nearby indices → nearby points).
"""

from __future__ import annotations

from functools import lru_cache
from time import perf_counter
from typing import Sequence

from repro.obs import profile as obs_profile
from repro.sfc.base import CurveState, SpaceFillingCurve
from repro.util.bits import (
    bit_mask,
    gray_decode,
    gray_encode,
    rotate_left,
    rotate_right,
    trailing_set_bits,
)

__all__ = ["HilbertCurve", "HilbertState"]


class HilbertState(tuple):
    """Immutable ``(entry, direction)`` pair describing a subcube's frame."""

    __slots__ = ()

    def __new__(cls, entry: int, direction: int) -> "HilbertState":
        return super().__new__(cls, (entry, direction))

    @property
    def entry(self) -> int:
        return self[0]

    @property
    def direction(self) -> int:
        return self[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HilbertState(entry={self[0]:#b}, direction={self[1]})"


def _entry_point(rank: int) -> int:
    """Entry vertex ``e(rank)`` of the rank-th subcube along the curve."""
    if rank == 0:
        return 0
    return gray_encode(2 * ((rank - 1) // 2))


def _intra_direction(rank: int, dims: int) -> int:
    """Intra-subcube direction ``d(rank)`` of the rank-th subcube."""
    if rank == 0:
        return 0
    if rank % 2 == 0:
        return trailing_set_bits(rank - 1) % dims
    return trailing_set_bits(rank) % dims


class HilbertCurve(SpaceFillingCurve):
    """Discrete Hilbert curve over ``[0, 2**order)**dims``."""

    name = "hilbert"

    def __init__(self, dims: int, order: int) -> None:
        super().__init__(dims, order)
        self._dim_mask = bit_mask(dims)
        # The child transition table depends only on dims; share it across
        # instances of the same dimensionality.
        self._table = _transition_table(dims)

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------
    def encode(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        dims, order = self.dims, self.order
        entry, direction = 0, 0
        index = 0
        for level in range(order - 1, -1, -1):
            # Coordinate label of the subcube containing the point at this
            # refinement level: bit j = bit `level` of coordinate j.
            label = 0
            for j in range(dims):
                label |= ((pt[j] >> level) & 1) << j
            transformed = rotate_right(label ^ entry, direction + 1, dims)
            rank = gray_decode(transformed)
            index = (index << dims) | rank
            entry, direction = _next_state(entry, direction, rank, dims)
        return index

    def decode(self, index: int) -> tuple[int, ...]:
        index = self._check_index(index)
        dims, order = self.dims, self.order
        entry, direction = 0, 0
        coords = [0] * dims
        for level in range(order - 1, -1, -1):
            rank = (index >> (level * dims)) & self._dim_mask
            label = rotate_left(gray_encode(rank), direction + 1, dims) ^ entry
            for j in range(dims):
                coords[j] |= ((label >> j) & 1) << level
            entry, direction = _next_state(entry, direction, rank, dims)
        return tuple(coords)

    def _vectorized(self, kernel, data):
        """Run one NumPy bulk kernel, timed under ``sfc.encode_vec``.

        Shared gate-and-profile helper for :meth:`encode_many` and
        :meth:`decode_many`: callers check :attr:`fits_int64` first, and the
        fast path reports its own profile phase so ``--profile`` output
        separates vectorized from scalar encode time (``sfc.encode``).
        """
        prof = obs_profile._PROFILER
        if prof is None:
            return kernel(data, self.dims, self.order)
        start = perf_counter()
        try:
            return kernel(data, self.dims, self.order)
        finally:
            prof.record("sfc.encode_vec", perf_counter() - start)

    def encode_many(self, points):  # type: ignore[override]
        """NumPy fast path when the index fits into 63 bits."""
        if self.fits_int64:
            from repro.sfc.hilbert_vec import hilbert_encode_vec

            return self._vectorized(hilbert_encode_vec, points)
        return super().encode_many(points)

    def decode_many(self, indices):  # type: ignore[override]
        if self.fits_int64:
            from repro.sfc.hilbert_vec import hilbert_decode_vec

            return self._vectorized(hilbert_decode_vec, indices)
        return super().decode_many(indices)

    # ------------------------------------------------------------------
    # Recursive structure
    # ------------------------------------------------------------------
    def root_state(self) -> CurveState:
        return HilbertState(0, 0)

    def children(self, state: CurveState) -> tuple[tuple[int, CurveState], ...]:
        entry, direction = state  # type: ignore[misc]
        return self._table[(entry, direction)]


def _next_state(entry: int, direction: int, rank: int, dims: int) -> tuple[int, int]:
    """State of the ``rank``-th child of a subcube with state ``(entry, direction)``."""
    child_entry = entry ^ rotate_left(_entry_point(rank), direction + 1, dims)
    child_direction = (direction + _intra_direction(rank, dims) + 1) % dims
    return child_entry, child_direction


@lru_cache(maxsize=16)
def _transition_table(
    dims: int,
) -> dict[tuple[int, int], tuple[tuple[int, HilbertState], ...]]:
    """Precompute child enumerations for every reachable ``(e, d)`` state.

    For each state, children are listed in curve order; entry ``rank`` holds
    ``(label, child_state)`` where ``label`` is the child's coordinate label
    within the parent.  The table is built by BFS from the root state so only
    reachable states are materialised (there are at most ``2**dims * dims``).
    """
    table: dict[tuple[int, int], tuple[tuple[int, HilbertState], ...]] = {}
    pending = [(0, 0)]
    n_children = 1 << dims
    while pending:
        entry, direction = pending.pop()
        if (entry, direction) in table:
            continue
        rows = []
        for rank in range(n_children):
            label = rotate_left(gray_encode(rank), direction + 1, dims) ^ entry
            child = _next_state(entry, direction, rank, dims)
            rows.append((label, HilbertState(*child)))
            if child not in table:
                pending.append(child)
        table[(entry, direction)] = tuple(rows)
    return table
