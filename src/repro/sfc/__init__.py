"""Space-filling curves: the paper's dimension-reducing index machinery.

Public surface:

* :class:`~repro.sfc.base.SpaceFillingCurve` — curve interface (encode,
  decode, recursive child enumeration).
* :class:`~repro.sfc.hilbert.HilbertCurve` — the locality-preserving Hilbert
  curve used by Squid.
* :class:`~repro.sfc.zorder.MortonCurve` — Z-order comparison mapping.
* :class:`~repro.sfc.graycurve.GrayCurve` — Gray-coded comparison mapping.
* :class:`~repro.sfc.onioncurve.OnionCurve` — hierarchical onion (peel-loop)
  curve, the near-optimal-clustering fourth family.
* :mod:`~repro.sfc.regions` — query regions (boxes / unions of boxes).
* :mod:`~repro.sfc.clusters` — cluster generation and recursive refinement.
* :mod:`~repro.sfc.analysis` — clustering/locality analytics.
* :mod:`~repro.sfc.select` — adaptive curve/order selection from a workload
  sample (:func:`select_curve`).

Curve families are selected **by name**, mirroring the store backends: the
process default (what ``SquidSystem.create(...)`` uses when no ``curve=`` is
given) resolves as explicit :func:`set_default_curve` call > ``REPRO_CURVE``
environment variable > ``"hilbert"``.
"""

from __future__ import annotations

import os

from repro.errors import ConfigError
from repro.sfc.analysis import ClusterStats, cluster_stats, locality_ratio
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.clusters import (
    Cell,
    Cluster,
    FullRange,
    clusters_at_level,
    count_clusters_per_level,
    refine_cluster,
    refine_level,
    resolve_clusters,
    root_cluster,
    set_vectorized_refinement,
    vectorized_refinement,
)
from repro.sfc.graycurve import GrayCurve
from repro.sfc.hilbert import HilbertCurve
from repro.sfc.onioncurve import OnionCurve
from repro.sfc.regions import Box, Containment, Interval, Region, full_region
from repro.sfc.select import CurveChoice, sample_box_regions, select_curve
from repro.sfc.zorder import MortonCurve

__all__ = [
    "SpaceFillingCurve",
    "HilbertCurve",
    "MortonCurve",
    "GrayCurve",
    "OnionCurve",
    "Box",
    "Containment",
    "Interval",
    "Region",
    "full_region",
    "Cell",
    "Cluster",
    "FullRange",
    "root_cluster",
    "refine_cluster",
    "refine_level",
    "clusters_at_level",
    "resolve_clusters",
    "count_clusters_per_level",
    "set_vectorized_refinement",
    "vectorized_refinement",
    "ClusterStats",
    "cluster_stats",
    "locality_ratio",
    "CURVES",
    "make_curve",
    "get_default_curve",
    "set_default_curve",
    "CurveChoice",
    "select_curve",
    "sample_box_regions",
]

#: Registry of curve families by name (used by config-driven experiments).
#: Third parties may register additional families; anything registered here
#: is automatically covered by the shared invariant test suites.
CURVES: dict[str, type[SpaceFillingCurve]] = {
    "hilbert": HilbertCurve,
    "zorder": MortonCurve,
    "gray": GrayCurve,
    "onion": OnionCurve,
}

_DEFAULT_CURVE: str | None = None


def make_curve(name: str, dims: int, order: int) -> SpaceFillingCurve:
    """Instantiate a registered curve family by name.

    Unknown names raise a :class:`~repro.errors.ConfigError` listing the
    valid families (matching :func:`repro.store.get_store` behaviour).
    """
    try:
        cls = CURVES[name]
    except KeyError:
        raise ConfigError(
            f"unknown curve {name!r}; choose from {sorted(CURVES)}"
        ) from None
    return cls(dims, order)


def get_default_curve() -> str:
    """The process-default curve family (see module docstring for resolution)."""
    if _DEFAULT_CURVE is not None:
        return _DEFAULT_CURVE
    env = os.environ.get("REPRO_CURVE", "").strip()
    return env if env else "hilbert"


def set_default_curve(name: str | None) -> None:
    """Set (or with ``None`` reset) the process-default curve family.

    This is what the CLI ``--curve`` flag calls; it overrides the
    ``REPRO_CURVE`` environment variable.  ``"auto"`` is accepted and defers
    to workload-adaptive selection at system construction.
    """
    global _DEFAULT_CURVE
    if name is not None and name != "auto" and name not in CURVES:
        raise ConfigError(f"unknown curve {name!r}; choose from {sorted(CURVES)}")
    _DEFAULT_CURVE = name
