"""Space-filling curves: the paper's dimension-reducing index machinery.

Public surface:

* :class:`~repro.sfc.base.SpaceFillingCurve` — curve interface (encode,
  decode, recursive child enumeration).
* :class:`~repro.sfc.hilbert.HilbertCurve` — the locality-preserving Hilbert
  curve used by Squid.
* :class:`~repro.sfc.zorder.MortonCurve` — Z-order comparison mapping.
* :mod:`~repro.sfc.regions` — query regions (boxes / unions of boxes).
* :mod:`~repro.sfc.clusters` — cluster generation and recursive refinement.
* :mod:`~repro.sfc.analysis` — clustering/locality analytics.
"""

from repro.sfc.analysis import ClusterStats, cluster_stats, locality_ratio
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.clusters import (
    Cell,
    Cluster,
    FullRange,
    clusters_at_level,
    count_clusters_per_level,
    refine_cluster,
    refine_level,
    resolve_clusters,
    root_cluster,
    set_vectorized_refinement,
    vectorized_refinement,
)
from repro.sfc.graycurve import GrayCurve
from repro.sfc.hilbert import HilbertCurve
from repro.sfc.regions import Box, Containment, Interval, Region, full_region
from repro.sfc.zorder import MortonCurve

__all__ = [
    "SpaceFillingCurve",
    "HilbertCurve",
    "MortonCurve",
    "GrayCurve",
    "Box",
    "Containment",
    "Interval",
    "Region",
    "full_region",
    "Cell",
    "Cluster",
    "FullRange",
    "root_cluster",
    "refine_cluster",
    "refine_level",
    "clusters_at_level",
    "resolve_clusters",
    "count_clusters_per_level",
    "set_vectorized_refinement",
    "vectorized_refinement",
    "ClusterStats",
    "cluster_stats",
    "locality_ratio",
]

CURVES = {"hilbert": HilbertCurve, "zorder": MortonCurve, "gray": GrayCurve}
"""Registry of curve families by name (used by config-driven experiments)."""


def make_curve(name: str, dims: int, order: int) -> SpaceFillingCurve:
    """Instantiate a registered curve family by name."""
    try:
        cls = CURVES[name]
    except KeyError:
        raise ValueError(f"unknown curve {name!r}; choose from {sorted(CURVES)}") from None
    return cls(dims, order)
