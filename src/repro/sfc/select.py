"""Adaptive curve selection: pick curve family + order from a workload sample.

The paper fixes the Hilbert curve; the clustering analysis (Moon et al.,
reference [12]) shows the best mapping depends on the query mix — range
queries of different shapes cluster differently under Hilbert, Gray,
Z-order and onion.  :func:`select_curve` makes the choice empirical: given a
sample of query regions it scores every candidate ``(curve, order)`` pair by
the mean cluster count (the per-query message-cost driver in Squid: one
cluster → one routed curve segment) and returns the cheapest.

Order selection is constrained by *exactness*: a coarser order is only
admissible when every sampled region is block-aligned at that granularity —
otherwise the coarse index would alias neighbouring cells into the answer.
Among exact candidates, coarser orders are never worse (fewer cells, fewer
clusters, identical answers), so the selector considers all admissible
orders and lets the score decide.

``SquidSystem.create(curve="auto")`` exposes this: it samples (or accepts)
a workload and selects the family at the space's bit depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import ConfigError
from repro.sfc.regions import Box, Interval, Region
from repro.util.rng import RandomLike, as_generator

__all__ = ["CurveChoice", "select_curve", "sample_box_regions"]

#: Tie-break preference when two candidates score identically: the paper's
#: default first, then the near-optimal-clustering newcomer.
_PREFERENCE = ("hilbert", "onion", "gray", "zorder")


@dataclass(frozen=True)
class CurveChoice:
    """Outcome of :func:`select_curve`.

    ``scores`` maps ``(curve_name, order)`` to the mean cluster count over
    the workload sample, for every candidate evaluated — kept so callers
    (and the ablation experiment) can report *why* the winner won.
    """

    name: str
    order: int
    score: float
    scores: Mapping[tuple[str, int], float]

    def make(self, dims: int):
        """Instantiate the chosen curve for ``dims`` dimensions."""
        from repro.sfc import make_curve

        return make_curve(self.name, dims, self.order)


def _exactness_shift(region: Region, order: int) -> int:
    """Largest ``s`` such that ``region`` is block-aligned at ``order - s``.

    An interval ``[low, high]`` survives coarsening by ``s`` bits exactly
    when ``low`` and ``high + 1`` are multiples of ``2**s``; the region's
    limit is the minimum over its intervals.
    """
    shift = order
    for box in region.boxes:
        for iv in box.intervals:
            for edge in (iv.low, iv.high + 1):
                if edge == 0:
                    continue
                shift = min(shift, (edge & -edge).bit_length() - 1)
                if shift == 0:
                    return 0
    return shift


def _rescale_region(region: Region, shift: int) -> Region:
    """Rescale a region by ``shift`` bits (negative = coarsen, exact only)."""
    if shift == 0:
        return region
    boxes = []
    for box in region.boxes:
        intervals = []
        for iv in box.intervals:
            if shift > 0:
                intervals.append(
                    Interval(iv.low << shift, ((iv.high + 1) << shift) - 1)
                )
            else:
                intervals.append(Interval(iv.low >> -shift, ((iv.high + 1) >> -shift) - 1))
        boxes.append(Box(tuple(intervals)))
    return Region(tuple(boxes))


def sample_box_regions(
    dims: int,
    order: int,
    extents: Sequence[int] | None = None,
    samples: int = 8,
    rng: RandomLike = None,
) -> list[Region]:
    """A seeded default workload sample: random cube queries at mixed extents.

    Used by ``SquidSystem.create(curve="auto")`` when the caller provides no
    sample of their own.
    """
    gen = as_generator(rng)
    side = 1 << order
    if extents is None:
        extents = sorted({max(1, side // 8), max(1, side // 4), max(1, side // 2)})
    regions: list[Region] = []
    for extent in extents:
        for _ in range(samples):
            bounds = []
            for _ in range(dims):
                low = int(gen.integers(0, side - extent + 1))
                bounds.append((low, low + extent - 1))
            regions.append(Region.from_bounds(bounds))
    return regions


def select_curve(
    workload_sample: Iterable[Region],
    dims: int,
    order: int,
    *,
    curves: Sequence[str] | None = None,
    orders: Sequence[int] | None = None,
    rng: RandomLike = None,
) -> CurveChoice:
    """Pick the cheapest ``(curve, order)`` for a sampled workload.

    ``workload_sample`` is a sequence of :class:`~repro.sfc.regions.Region`
    at resolution ``order`` (e.g. from ``KeywordSpace.region(query)``).
    Candidate orders other than ``order`` are admitted only when every
    sampled region is block-aligned at that granularity, so the selected
    index answers the sampled queries exactly.  The score of a candidate is
    the mean cluster count over the sample — proportional to per-query
    message cost in the overlay.
    """
    from repro.sfc import CURVES, make_curve
    from repro.sfc.clusters import resolve_clusters

    regions = list(workload_sample)
    if not regions:
        regions = sample_box_regions(dims, order, rng=rng)
    for region in regions:
        if region.dims != dims:
            raise ConfigError(
                f"workload sample region has {region.dims} dimensions, "
                f"selector expects {dims}"
            )
    names = list(curves) if curves is not None else sorted(CURVES)
    for name in names:
        if name not in CURVES:
            raise ConfigError(
                f"unknown curve {name!r}; choose from {sorted(CURVES)}"
            )

    max_coarsen = min((_exactness_shift(r, order) for r in regions), default=0)
    if orders is None:
        candidate_orders = [order]
    else:
        candidate_orders = sorted(
            {o for o in orders if order - max_coarsen <= o and o >= 1}
        )
        if not candidate_orders:
            candidate_orders = [order]

    scores: dict[tuple[str, int], float] = {}
    for o in candidate_orders:
        rescaled = [_rescale_region(r, o - order) for r in regions]
        for name in names:
            curve = make_curve(name, dims, o)
            total = sum(len(resolve_clusters(curve, r)) for r in rescaled)
            scores[(name, o)] = total / len(rescaled)

    def sort_key(item: tuple[tuple[str, int], float]):
        (name, o), score = item
        pref = _PREFERENCE.index(name) if name in _PREFERENCE else len(_PREFERENCE)
        return (score, pref, name, o)

    (best_name, best_order), best_score = min(scores.items(), key=sort_key)
    return CurveChoice(
        name=best_name, order=best_order, score=best_score, scores=scores
    )
