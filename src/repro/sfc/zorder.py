"""Z-order (Morton) curve — the non-locality-preserving comparison mapping.

The Morton curve interleaves coordinate bits directly, so it is stateless:
every subcube is traversed in the same order.  It satisfies digital causality
(indices in a subcube share their prefix) but *not* adjacency — consecutive
indices can be far apart — which makes it the natural ablation partner for
the Hilbert curve: the paper's clustering argument predicts that Z-order
produces more clusters per query and therefore touches more peers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sfc.base import CurveState, SpaceFillingCurve
from repro.util.bits import bit_mask

__all__ = ["MortonCurve"]

_STATE = ("morton",)  # Single shared state: the curve is self-identical.


class MortonCurve(SpaceFillingCurve):
    """Discrete Z-order curve over ``[0, 2**order)**dims``."""

    name = "zorder"

    def __init__(self, dims: int, order: int) -> None:
        super().__init__(dims, order)
        self._dim_mask = bit_mask(dims)
        # Children in curve order: rank == label (identity traversal).
        self._children = tuple((rank, _STATE) for rank in range(1 << dims))

    def encode(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        dims, order = self.dims, self.order
        index = 0
        for level in range(order - 1, -1, -1):
            label = 0
            for j in range(dims):
                label |= ((pt[j] >> level) & 1) << j
            index = (index << dims) | label
        return index

    def decode(self, index: int) -> tuple[int, ...]:
        index = self._check_index(index)
        dims, order = self.dims, self.order
        coords = [0] * dims
        for level in range(order - 1, -1, -1):
            label = (index >> (level * dims)) & self._dim_mask
            for j in range(dims):
                coords[j] |= ((label >> j) & 1) << level
        return tuple(coords)

    def encode_many(self, points: np.ndarray) -> np.ndarray:  # type: ignore[override]
        """Vectorized bit interleave (NumPy) for indices that fit in 63 bits."""
        points = np.asarray(points, dtype=np.int64)
        if points.ndim != 2 or points.shape[1] != self.dims:
            return super().encode_many(points)
        if not self.fits_int64:
            return super().encode_many(points)
        # For each level group (MSB first), label bit j = coord-j bit at level.
        index = np.zeros(points.shape[0], dtype=np.int64)
        for level in range(self.order - 1, -1, -1):
            label = np.zeros(points.shape[0], dtype=np.int64)
            for j in range(self.dims):
                label |= ((points[:, j] >> level) & 1) << j
            index = (index << self.dims) | label
        return index

    def root_state(self) -> CurveState:
        return _STATE

    def children(self, state: CurveState) -> tuple[tuple[int, CurveState], ...]:
        return self._children
