"""Vectorized Hilbert encode/decode for curves whose index fits in 63 bits.

Bulk-indexing the paper's workloads (10^5 keys) with the scalar encoder costs
seconds; this NumPy formulation processes all points level-by-level with the
same entry/direction state machine as :mod:`repro.sfc.hilbert`, carrying one
``(entry, direction)`` pair per point in integer arrays.  Correctness is
cross-checked against the scalar implementation in ``tests/sfc``.

The per-level primitives (Gray code, masked rotations) mirror
:mod:`repro.util.bits` but operate elementwise on ``int64`` arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CoordinateRangeError, DimensionMismatchError, IndexRangeError

__all__ = ["hilbert_encode_vec", "hilbert_decode_vec"]


def _gray_encode(values: np.ndarray) -> np.ndarray:
    return values ^ (values >> 1)


def _gray_decode(codes: np.ndarray, width: int) -> np.ndarray:
    # Prefix XOR over at most `width` bits: out_i = xor of codes bits >= i.
    out = codes.copy()
    acc = codes.copy()
    for _ in range(width - 1):
        acc = acc >> 1
        out ^= acc
    return out


def _rotate_left(values: np.ndarray, counts: np.ndarray, width: int) -> np.ndarray:
    counts = counts % width
    mask = (1 << width) - 1
    return ((values << counts) | (values >> (width - counts))) & mask


def _rotate_right(values: np.ndarray, counts: np.ndarray, width: int) -> np.ndarray:
    return _rotate_left(values, width - (counts % width), width)


def _trailing_set_bits_table(width: int) -> np.ndarray:
    """Lookup table of trailing-set-bit counts for values in [0, 2**width)."""
    size = 1 << width
    table = np.zeros(size, dtype=np.int64)
    for value in range(size):
        count = 0
        v = value
        while v & 1:
            count += 1
            v >>= 1
        table[value] = count
    return table


def _entry_point_table(width: int) -> np.ndarray:
    """Lookup table of subcube entry vertices e(rank) for rank in [0, 2**width)."""
    size = 1 << width
    table = np.zeros(size, dtype=np.int64)
    for rank in range(1, size):
        base = 2 * ((rank - 1) // 2)
        table[rank] = base ^ (base >> 1)
    return table


def _intra_direction_table(width: int) -> np.ndarray:
    """Lookup table of intra-subcube directions d(rank)."""
    size = 1 << width
    table = np.zeros(size, dtype=np.int64)
    for rank in range(1, size):
        if rank % 2 == 0:
            table[rank] = _tsb_int(rank - 1) % width
        else:
            table[rank] = _tsb_int(rank) % width
    return table


def _tsb_int(value: int) -> int:
    count = 0
    while value & 1:
        count += 1
        value >>= 1
    return count


def hilbert_encode_vec(points: np.ndarray, dims: int, order: int) -> np.ndarray:
    """Encode an ``(N, dims)`` array of coordinates to Hilbert indices.

    Requires ``dims * order <= 63`` so indices fit into ``int64``.
    """
    if dims * order > 63:
        raise IndexRangeError("vectorized path requires dims*order <= 63")
    pts = np.ascontiguousarray(points, dtype=np.int64)
    if pts.ndim != 2 or pts.shape[1] != dims:
        raise DimensionMismatchError(dims, pts.shape[-1] if pts.ndim else 0)
    side = 1 << order
    if pts.size and (int(pts.min()) < 0 or int(pts.max()) >= side):
        raise CoordinateRangeError(f"coordinates outside [0, {side})")

    n = pts.shape[0]
    entry = np.zeros(n, dtype=np.int64)
    direction = np.zeros(n, dtype=np.int64)
    index = np.zeros(n, dtype=np.int64)
    e_table = _entry_point_table(dims)
    d_table = _intra_direction_table(dims)

    for level in range(order - 1, -1, -1):
        label = np.zeros(n, dtype=np.int64)
        for j in range(dims):
            label |= ((pts[:, j] >> level) & 1) << j
        transformed = _rotate_right(label ^ entry, direction + 1, dims)
        rank = _gray_decode(transformed, dims)
        index = (index << dims) | rank
        entry = entry ^ _rotate_left(e_table[rank], direction + 1, dims)
        direction = (direction + d_table[rank] + 1) % dims
    return index


def hilbert_decode_vec(indices: np.ndarray, dims: int, order: int) -> np.ndarray:
    """Decode an array of Hilbert indices to an ``(N, dims)`` coordinate array."""
    if dims * order > 63:
        raise IndexRangeError("vectorized path requires dims*order <= 63")
    idx = np.ascontiguousarray(np.asarray(indices).ravel(), dtype=np.int64)
    size = 1 << (dims * order)  # Python int: 2**63 would overflow int64.
    if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= size):
        raise IndexRangeError(f"indices outside [0, {size})")

    n = idx.shape[0]
    entry = np.zeros(n, dtype=np.int64)
    direction = np.zeros(n, dtype=np.int64)
    coords = np.zeros((n, dims), dtype=np.int64)
    e_table = _entry_point_table(dims)
    d_table = _intra_direction_table(dims)
    dim_mask = (1 << dims) - 1

    for level in range(order - 1, -1, -1):
        rank = (idx >> (level * dims)) & dim_mask
        label = _rotate_left(_gray_encode(rank), direction + 1, dims) ^ entry
        for j in range(dims):
            coords[:, j] |= ((label >> j) & 1) << level
        entry = entry ^ _rotate_left(e_table[rank], direction + 1, dims)
        direction = (direction + d_table[rank] + 1) % dims
    return coords
