"""Abstract interface for space-filling curves.

A curve maps points of the d-dimensional discrete cube ``[0, 2**order)**dims``
to 1-d indices in ``[0, 2**(dims*order))`` and back.  Beyond plain
encode/decode, curves expose their *recursive structure* through an opaque
per-subcube ``state`` and a :meth:`SpaceFillingCurve.children` enumeration:
given the state of a subcube at refinement level ℓ, ``children`` yields the
``2**dims`` child subcells *in curve order* together with their states.  The
cluster machinery (:mod:`repro.sfc.clusters`) and the distributed query engine
(:mod:`repro.core.engine`) are written against this interface only, so any
curve (Hilbert, Z-order, ...) plugs into the full system.

Conventions
-----------
* A *coordinate label* is a ``dims``-bit integer whose bit ``j`` is the next
  (more significant → less significant as refinement deepens) bit of
  dimension ``j``.
* Curve states must be hashable and immutable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Sequence

import numpy as np

from repro.errors import (
    CoordinateRangeError,
    DimensionMismatchError,
    IndexRangeError,
)

__all__ = ["SpaceFillingCurve", "CurveState"]

CurveState = Hashable


class SpaceFillingCurve(ABC):
    """A discrete space-filling curve over ``[0, 2**order)**dims``.

    Parameters
    ----------
    dims:
        Dimensionality ``d`` of the keyword space (≥ 1).
    order:
        Bits per dimension ``k``; the curve has ``2**(d*k)`` cells.
    """

    #: Short machine-readable curve family name (e.g. ``"hilbert"``).
    name: str = "abstract"

    def __init__(self, dims: int, order: int) -> None:
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.dims = dims
        self.order = order
        #: Total index bits ``d*k``; Chord identifiers share this width.
        self.index_bits = dims * order
        #: Number of cells on the curve, ``2**(d*k)``.
        self.size = 1 << self.index_bits
        #: Cells per side of the cube, ``2**k``.
        self.side = 1 << order

    @property
    def fits_int64(self) -> bool:
        """True when every curve index fits a NumPy ``int64``.

        This is the single gate shared by all vectorized fast paths
        (bulk encode/decode and the refinement kernel of
        :mod:`repro.sfc.refine_vec`); wider curves fall back to the exact
        scalar implementations on Python ints.
        """
        return self.index_bits <= 63

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_point(self, point: Sequence[int]) -> tuple[int, ...]:
        pt = tuple(int(c) for c in point)
        if len(pt) != self.dims:
            raise DimensionMismatchError(self.dims, len(pt))
        for coord in pt:
            if not 0 <= coord < self.side:
                raise CoordinateRangeError(
                    f"coordinate {coord} outside [0, {self.side}) for order {self.order}"
                )
        return pt

    def _check_index(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self.size:
            raise IndexRangeError(
                f"index {index} outside [0, {self.size}) for {self.dims}D order {self.order}"
            )
        return index

    # ------------------------------------------------------------------
    # Core mapping
    # ------------------------------------------------------------------
    @abstractmethod
    def encode(self, point: Sequence[int]) -> int:
        """Map a d-dimensional point to its 1-d curve index."""

    @abstractmethod
    def decode(self, index: int) -> tuple[int, ...]:
        """Map a 1-d curve index back to its d-dimensional point."""

    def encode_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`encode` over an ``(N, dims)`` integer array.

        The base implementation is a Python loop; subclasses override with a
        NumPy fast path where the index fits in 64 bits.
        """
        points = np.asarray(points)
        if points.ndim != 2 or points.shape[1] != self.dims:
            raise DimensionMismatchError(self.dims, points.shape[-1] if points.ndim else 0)
        out = np.empty(points.shape[0], dtype=object)
        for i, row in enumerate(points):
            out[i] = self.encode(row)
        if self.fits_int64:
            return out.astype(np.int64)
        return out

    def decode_many(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`decode`; returns an ``(N, dims)`` array.

        Coordinates fit ``int64`` whenever ``order <= 63`` (``side - 1 <
        2**63``) even if the *index* does not; a 1-D curve of order ≥ 64 is
        the one geometry whose coordinates overflow, so it falls back to an
        object array of Python ints.
        """
        indices = np.asarray(indices).ravel()
        dtype = np.int64 if self.order <= 63 else object
        out = np.empty((indices.shape[0], self.dims), dtype=dtype)
        for i, index in enumerate(indices):
            out[i] = self.decode(int(index))
        return out

    # ------------------------------------------------------------------
    # Recursive structure
    # ------------------------------------------------------------------
    @abstractmethod
    def root_state(self) -> CurveState:
        """State of the whole cube (refinement level 0)."""

    @abstractmethod
    def children(self, state: CurveState) -> tuple[tuple[int, CurveState], ...]:
        """Enumerate the ``2**dims`` children of a subcube in curve order.

        Returns a tuple of ``(label, child_state)`` pairs where ``label`` is
        the coordinate label of the child within its parent (bit ``j`` = the
        bit added to dimension ``j``) and ``child_state`` drives the next
        refinement level.  The position of a pair in the tuple is the child's
        rank along the curve, i.e. it contributes the next ``dims`` bits of
        the curve index.
        """

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def index_range_of_cell(self, level: int, h_prefix: int) -> tuple[int, int]:
        """Inclusive 1-d index range covered by a level-``level`` cell.

        ``h_prefix`` is the cell's curve-index prefix: the ``level * dims``
        high bits of every index inside the cell (the paper's *digital
        causality* property).
        """
        if not 0 <= level <= self.order:
            raise ValueError(f"level must be in [0, {self.order}], got {level}")
        span_bits = (self.order - level) * self.dims
        low = h_prefix << span_bits
        high = ((h_prefix + 1) << span_bits) - 1
        return low, high

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(dims={self.dims}, order={self.order})"
