"""Curve clusters and their recursive refinement (the paper's §3.3–3.4).

A *cluster* is a maximal run of consecutive curve cells that intersect a
query region — the curve "enters and exits the region" once per cluster
(paper Figure 5).  Clusters are generated recursively: refining every cell of
a level-ℓ cluster into its ``2**d`` children (in curve order) and keeping the
children that still intersect the region yields the level-(ℓ+1) clusters; the
paper visualises this process as a tree (Figures 6–7) whose nodes carry the
digital-causality *prefix* used as the routing identifier.

Representation
--------------
Naively a cluster is a list of cells, but that explodes for broad queries
(a wildcard-everything query is one cluster with ``2**(ℓ d)`` cells at level
ℓ).  We exploit the containment trichotomy instead: a cluster is an ordered,
index-contiguous sequence of *pieces*,

* :class:`FullRange` — an index interval fully inside the region.  Fully
  covered subtrees need no further geometry: refining them is the identity.
* :class:`Cell` — one subcube that only *partially* intersects the region;
  it carries its curve state so it can be refined exactly.

Only partial cells are ever expanded, so the work per refinement level is
proportional to the region's boundary rather than its volume, while the
cluster semantics (maximal contiguous intersecting runs) are unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from time import perf_counter

from repro.errors import SFCError
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.sfc.base import CurveState, SpaceFillingCurve
from repro.sfc.regions import Containment, Region

__all__ = [
    "Cell",
    "FullRange",
    "Piece",
    "Cluster",
    "root_cluster",
    "refine_cluster",
    "refine_level",
    "clusters_at_level",
    "resolve_clusters",
    "count_clusters_per_level",
    "set_vectorized_refinement",
    "vectorized_refinement",
]

#: Process-wide switch for the NumPy refinement kernel.  On by default;
#: the scalar path still applies per call whenever a curve's indices do
#: not fit ``int64`` or a batch is too small to amortize array overhead.
_VEC_ENABLED = True

#: Minimum partial cells in a batch before the vectorized kernel pays off
#: (below this, NumPy call overhead exceeds the per-child Python cost).
_VEC_MIN_CELLS = 8


def set_vectorized_refinement(enabled: bool) -> bool:
    """Enable/disable the vectorized refinement kernel; returns the old value.

    Used by the benchmark harness to measure the scalar baseline; normal
    callers never need this (the kernel is exact — property-tested
    equivalent to the scalar path — and falls back automatically).
    """
    global _VEC_ENABLED
    previous = _VEC_ENABLED
    _VEC_ENABLED = bool(enabled)
    return previous


@contextmanager
def vectorized_refinement(enabled: bool) -> Iterator[None]:
    """Scope with the vectorized kernel forced on/off; restores on exit."""
    previous = set_vectorized_refinement(enabled)
    try:
        yield
    finally:
        set_vectorized_refinement(previous)


@dataclass(frozen=True)
class Cell:
    """A level-``level`` subcube that partially intersects the query region.

    ``prefix`` holds the cell's ``level * dims`` leading index bits (the
    digital-causality prefix); ``coords`` the ``level`` leading bits of each
    coordinate; ``state`` the curve frame used to enumerate children.
    """

    level: int
    prefix: int
    coords: tuple[int, ...]
    state: CurveState

    def index_range(self, curve: SpaceFillingCurve) -> tuple[int, int]:
        return curve.index_range_of_cell(self.level, self.prefix)

    def bounds(self, curve: SpaceFillingCurve) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Per-dimension inclusive coordinate bounds of the subcube."""
        span = 1 << (curve.order - self.level)
        lows = tuple(c * span for c in self.coords)
        highs = tuple(c * span + span - 1 for c in self.coords)
        return lows, highs


@dataclass(frozen=True)
class FullRange:
    """An inclusive index interval fully contained in the query region."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"empty range [{self.low}, {self.high}]")


Piece = Union[Cell, FullRange]


@dataclass(frozen=True)
class Cluster:
    """A maximal contiguous curve segment intersecting the query region.

    ``pieces`` are ordered by curve index and gap-free: each piece starts at
    the previous piece's end + 1.  ``level`` is the refinement depth of the
    Cell pieces (FullRange pieces may originate from shallower levels).
    """

    level: int
    pieces: tuple[Piece, ...]

    @property
    def is_resolved(self) -> bool:
        """True when no partial cells remain (pure index intervals)."""
        return all(isinstance(p, FullRange) for p in self.pieces)

    def min_index(self, curve: SpaceFillingCurve) -> int:
        first = self.pieces[0]
        if isinstance(first, FullRange):
            return first.low
        return first.index_range(curve)[0]

    def max_index(self, curve: SpaceFillingCurve) -> int:
        last = self.pieces[-1]
        if isinstance(last, FullRange):
            return last.high
        return last.index_range(curve)[1]

    def identifier(self, curve: SpaceFillingCurve) -> int:
        """Routing identifier: the digital-causality prefix padded with zeros.

        All indices of the cluster share their leading bits down to the
        cluster's minimum index, so the padded prefix *is* the minimum index
        (paper §3.4.1).
        """
        return self.min_index(curve)

    def prefix(self, curve: SpaceFillingCurve) -> tuple[int, int]:
        """Common leading bits of all indices: returns ``(bits, value)``.

        ``bits`` is the length of the shared prefix; ``value`` its contents.
        This is the identifier the paper labels tree nodes with (Figure 7).
        """
        low = self.min_index(curve)
        high = self.max_index(curve)
        bits = curve.index_bits
        while bits > 0 and (low >> (curve.index_bits - bits)) != (
            high >> (curve.index_bits - bits)
        ):
            bits -= 1
        return bits, low >> (curve.index_bits - bits) if bits else 0

    def iter_index_ranges(self, curve: SpaceFillingCurve) -> Iterator[tuple[int, int]]:
        """Yield the inclusive index range of each piece, in order."""
        for piece in self.pieces:
            if isinstance(piece, FullRange):
                yield piece.low, piece.high
            else:
                yield piece.index_range(curve)

    def cell_count(self) -> int:
        """Number of partial cells still unresolved in this cluster."""
        return sum(1 for p in self.pieces if isinstance(p, Cell))


def root_cluster(curve: SpaceFillingCurve, region: Region) -> Cluster | None:
    """Level-0 cluster covering the whole curve, clipped to ``region``.

    Returns ``None`` when the region is empty with respect to the cube
    (cannot normally happen since regions are non-empty boxes in range).
    """
    lows = (0,) * curve.dims
    highs = (curve.side - 1,) * curve.dims
    relation = region.classify_cell(lows, highs)
    if relation is Containment.DISJOINT:  # pragma: no cover - defensive
        return None
    if relation is Containment.FULL:
        return Cluster(level=0, pieces=(FullRange(0, curve.size - 1),))
    cell = Cell(level=0, prefix=0, coords=(0,) * curve.dims, state=curve.root_state())
    return Cluster(level=0, pieces=(cell,))


def refine_cluster(
    curve: SpaceFillingCurve,
    cluster: Cluster,
    region: Region,
    min_index: int = 0,
) -> list[Cluster]:
    """One refinement step: expand partial cells, split runs on gaps.

    ``min_index`` restricts the result to curve indices ``>= min_index``
    (used by the distributed engine: a node refines only the part of a
    cluster beyond its own identifier).  FullRange pieces are passed through
    (clipped); Cell pieces are expanded into their children in curve order
    and classified against the region.  Maximal contiguous runs of surviving
    pieces form the output clusters.

    This is the hot refinement path; when a profiler is enabled
    (:func:`repro.obs.profile.enable_profiling`) each call is timed under
    the ``sfc.refine`` phase.  Clusters carrying enough partial cells are
    expanded by the NumPy kernel (:mod:`repro.sfc.refine_vec`) when the
    curve's indices fit ``int64``; the result is identical either way.
    """
    prof = obs_profile._PROFILER
    if prof is None:
        return _refine_dispatch(curve, cluster, region, min_index)
    start = perf_counter()
    try:
        return _refine_dispatch(curve, cluster, region, min_index)
    finally:
        prof.record("sfc.refine", perf_counter() - start)


def _refine_dispatch(
    curve: SpaceFillingCurve,
    cluster: Cluster,
    region: Region,
    min_index: int = 0,
) -> list[Cluster]:
    """Route one cluster to the vectorized or scalar refinement path."""
    if _VEC_ENABLED and curve.fits_int64:
        n_cells = cluster.cell_count()
        if n_cells >= _VEC_MIN_CELLS:
            from repro.sfc.refine_vec import refine_clusters_vec

            return refine_clusters_vec(curve, [cluster], region, min_index)[0]
    reg = obs_metrics.active()
    if reg is not None:
        reg.counter("sfc.refine.scalar_cells").inc(cluster.cell_count())
    return _refine_cluster(curve, cluster, region, min_index)


def _refine_cluster(
    curve: SpaceFillingCurve,
    cluster: Cluster,
    region: Region,
    min_index: int = 0,
) -> list[Cluster]:
    runs: list[Cluster] = []
    current: list[Piece] = []
    next_level = cluster.level + 1

    def append_piece(piece: Piece) -> None:
        # Coalesce adjacent FullRanges to keep piece lists short.
        if current and isinstance(piece, FullRange) and isinstance(current[-1], FullRange):
            last = current[-1]
            if last.high + 1 == piece.low:
                current[-1] = FullRange(last.low, piece.high)
                return
        current.append(piece)

    def flush() -> None:
        if current:
            runs.append(Cluster(level=next_level, pieces=tuple(current)))
            current.clear()

    for piece in cluster.pieces:
        if isinstance(piece, FullRange):
            if piece.high < min_index:
                flush()
                continue
            low = max(piece.low, min_index)
            append_piece(FullRange(low, piece.high))
            continue
        # Partial cell: expand children in curve order.
        if piece.level >= curve.order:
            raise SFCError("cannot refine a cell at maximum order")
        cell_range_span = curve.order - next_level
        for rank, (label, child_state) in enumerate(curve.children(piece.state)):
            child_coords = tuple(
                (piece.coords[j] << 1) | ((label >> j) & 1) for j in range(curve.dims)
            )
            child_prefix = (piece.prefix << curve.dims) | rank
            child_low, child_high = curve.index_range_of_cell(next_level, child_prefix)
            if child_high < min_index:
                flush()
                continue
            span = 1 << cell_range_span
            lows = tuple(c * span for c in child_coords)
            highs = tuple(c * span + span - 1 for c in child_coords)
            relation = region.classify_cell(lows, highs)
            if relation is Containment.DISJOINT:
                flush()
            elif relation is Containment.FULL:
                append_piece(FullRange(max(child_low, min_index), child_high))
            else:
                child = Cell(
                    level=next_level,
                    prefix=child_prefix,
                    coords=child_coords,
                    state=child_state,
                )
                append_piece(child)
    flush()
    return runs


def refine_level(
    curve: SpaceFillingCurve,
    clusters: list[Cluster],
    region: Region,
    min_index: int = 0,
    bump_resolved: bool = True,
) -> list[Cluster]:
    """One refinement step across a whole level's clusters at once.

    The batched entry point of the vectorized kernel: all partial cells of
    all ``clusters`` are expanded in a single set of array operations, so
    per-call NumPy overhead amortizes over the level instead of over one
    cluster.  Resolved clusters (pure index ranges) need no geometry; with
    ``bump_resolved`` they are carried to the next level unchanged (the
    identity refinement used by the level-by-level drivers), otherwise
    they pass through as-is (the engine's local expansion semantics).

    Equivalent to calling :func:`refine_cluster` per cluster, in order.
    """
    unresolved = [c for c in clusters if not c.is_resolved]
    use_vec = (
        _VEC_ENABLED
        and curve.fits_int64
        and unresolved
        and sum(c.cell_count() for c in unresolved) >= _VEC_MIN_CELLS
    )
    if use_vec:
        from repro.sfc.refine_vec import refine_clusters_vec

        prof = obs_profile._PROFILER
        if prof is None:
            refined = refine_clusters_vec(curve, unresolved, region, min_index)
        else:
            start = perf_counter()
            try:
                refined = refine_clusters_vec(curve, unresolved, region, min_index)
            finally:
                prof.record("sfc.refine", perf_counter() - start)
        refined_iter = iter(refined)
        out: list[Cluster] = []
        for cluster in clusters:
            if cluster.is_resolved:
                out.append(
                    Cluster(level=cluster.level + 1, pieces=cluster.pieces)
                    if bump_resolved
                    else cluster
                )
            else:
                out.extend(next(refined_iter))
        return out
    out = []
    for cluster in clusters:
        if cluster.is_resolved:
            out.append(
                Cluster(level=cluster.level + 1, pieces=cluster.pieces)
                if bump_resolved
                else cluster
            )
        else:
            out.extend(refine_cluster(curve, cluster, region, min_index=min_index))
    return out


def clusters_at_level(
    curve: SpaceFillingCurve, region: Region, level: int
) -> list[Cluster]:
    """All clusters of ``region`` at refinement level ``level``.

    FullRange pieces created at shallower levels are carried through, so the
    result's clusters are exactly the maximal contiguous intersecting runs of
    level-``level`` cells (what the paper counts as clusters at the k-th
    curve approximation).
    """
    if not 0 <= level <= curve.order:
        raise ValueError(f"level must be in [0, {curve.order}], got {level}")
    root = root_cluster(curve, region)
    if root is None:  # pragma: no cover - defensive
        return []
    clusters = [root]
    for _ in range(level):
        # Resolved clusters have no geometry left: refinement is the
        # identity (level bump); the rest expand, batched per level.
        clusters = refine_level(curve, clusters, region)
    return clusters


def resolve_clusters(
    curve: SpaceFillingCurve, region: Region, max_level: int | None = None
) -> list[tuple[int, int]]:
    """Exact inclusive index intervals of the region's clusters.

    Refines until every cluster is resolved (at worst at ``curve.order``,
    where a cell is a single point).  Returns the sorted list of disjoint
    index ranges whose union is precisely the set of curve indices of points
    inside the region.  ``max_level`` caps refinement for approximate use.

    When a profiler is enabled the full resolution is timed under the
    ``sfc.resolve`` phase (its inner refinements also count toward
    ``sfc.refine``).
    """
    prof = obs_profile._PROFILER
    if prof is not None:
        start = perf_counter()
        try:
            return _resolve_clusters(curve, region, max_level)
        finally:
            prof.record("sfc.resolve", perf_counter() - start)
    return _resolve_clusters(curve, region, max_level)


def _resolve_clusters(
    curve: SpaceFillingCurve, region: Region, max_level: int | None = None
) -> list[tuple[int, int]]:
    if _VEC_ENABLED and curve.fits_int64:
        # Only the final index ranges are needed, so the fully array-resident
        # resolver applies: no intermediate Cluster objects at all.
        from repro.sfc.refine_vec import resolve_ranges_vec

        return resolve_ranges_vec(curve, region, max_level)
    limit = curve.order if max_level is None else min(max_level, curve.order)
    root = root_cluster(curve, region)
    if root is None:  # pragma: no cover - defensive
        return []
    clusters = [root]
    for _ in range(limit):
        if all(c.is_resolved for c in clusters):
            break
        clusters = refine_level(curve, clusters, region)
    ranges: list[tuple[int, int]] = []
    for cluster in clusters:
        low = cluster.min_index(curve)
        high = cluster.max_index(curve)
        if ranges and ranges[-1][1] + 1 >= low:
            # Defensive merge; refinement should already keep runs maximal.
            ranges[-1] = (ranges[-1][0], max(ranges[-1][1], high))
        else:
            ranges.append((low, high))
    return ranges


def count_clusters_per_level(
    curve: SpaceFillingCurve, region: Region, max_level: int | None = None
) -> list[int]:
    """Number of clusters at each refinement level (paper Figure 6 counts).

    Entry ``i`` is the cluster count at level ``i``; refinement stops early
    once all clusters are resolved (counts stay constant afterwards).
    """
    limit = curve.order if max_level is None else min(max_level, curve.order)
    root = root_cluster(curve, region)
    if root is None:  # pragma: no cover - defensive
        return [0]
    clusters = [root]
    counts = [len(clusters)]
    for _ in range(limit):
        clusters = refine_level(curve, clusters, region)
        counts.append(len(clusters))
    return counts
