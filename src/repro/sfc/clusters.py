"""Curve clusters and their recursive refinement (the paper's §3.3–3.4).

A *cluster* is a maximal run of consecutive curve cells that intersect a
query region — the curve "enters and exits the region" once per cluster
(paper Figure 5).  Clusters are generated recursively: refining every cell of
a level-ℓ cluster into its ``2**d`` children (in curve order) and keeping the
children that still intersect the region yields the level-(ℓ+1) clusters; the
paper visualises this process as a tree (Figures 6–7) whose nodes carry the
digital-causality *prefix* used as the routing identifier.

Representation
--------------
Naively a cluster is a list of cells, but that explodes for broad queries
(a wildcard-everything query is one cluster with ``2**(ℓ d)`` cells at level
ℓ).  We exploit the containment trichotomy instead: a cluster is an ordered,
index-contiguous sequence of *pieces*,

* :class:`FullRange` — an index interval fully inside the region.  Fully
  covered subtrees need no further geometry: refining them is the identity.
* :class:`Cell` — one subcube that only *partially* intersects the region;
  it carries its curve state so it can be refined exactly.

Only partial cells are ever expanded, so the work per refinement level is
proportional to the region's boundary rather than its volume, while the
cluster semantics (maximal contiguous intersecting runs) are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from time import perf_counter

from repro.errors import SFCError
from repro.obs import profile as obs_profile
from repro.sfc.base import CurveState, SpaceFillingCurve
from repro.sfc.regions import Containment, Region

__all__ = [
    "Cell",
    "FullRange",
    "Piece",
    "Cluster",
    "root_cluster",
    "refine_cluster",
    "clusters_at_level",
    "resolve_clusters",
    "count_clusters_per_level",
]


@dataclass(frozen=True)
class Cell:
    """A level-``level`` subcube that partially intersects the query region.

    ``prefix`` holds the cell's ``level * dims`` leading index bits (the
    digital-causality prefix); ``coords`` the ``level`` leading bits of each
    coordinate; ``state`` the curve frame used to enumerate children.
    """

    level: int
    prefix: int
    coords: tuple[int, ...]
    state: CurveState

    def index_range(self, curve: SpaceFillingCurve) -> tuple[int, int]:
        return curve.index_range_of_cell(self.level, self.prefix)

    def bounds(self, curve: SpaceFillingCurve) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Per-dimension inclusive coordinate bounds of the subcube."""
        span = 1 << (curve.order - self.level)
        lows = tuple(c * span for c in self.coords)
        highs = tuple(c * span + span - 1 for c in self.coords)
        return lows, highs


@dataclass(frozen=True)
class FullRange:
    """An inclusive index interval fully contained in the query region."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"empty range [{self.low}, {self.high}]")


Piece = Union[Cell, FullRange]


@dataclass(frozen=True)
class Cluster:
    """A maximal contiguous curve segment intersecting the query region.

    ``pieces`` are ordered by curve index and gap-free: each piece starts at
    the previous piece's end + 1.  ``level`` is the refinement depth of the
    Cell pieces (FullRange pieces may originate from shallower levels).
    """

    level: int
    pieces: tuple[Piece, ...]

    @property
    def is_resolved(self) -> bool:
        """True when no partial cells remain (pure index intervals)."""
        return all(isinstance(p, FullRange) for p in self.pieces)

    def min_index(self, curve: SpaceFillingCurve) -> int:
        first = self.pieces[0]
        if isinstance(first, FullRange):
            return first.low
        return first.index_range(curve)[0]

    def max_index(self, curve: SpaceFillingCurve) -> int:
        last = self.pieces[-1]
        if isinstance(last, FullRange):
            return last.high
        return last.index_range(curve)[1]

    def identifier(self, curve: SpaceFillingCurve) -> int:
        """Routing identifier: the digital-causality prefix padded with zeros.

        All indices of the cluster share their leading bits down to the
        cluster's minimum index, so the padded prefix *is* the minimum index
        (paper §3.4.1).
        """
        return self.min_index(curve)

    def prefix(self, curve: SpaceFillingCurve) -> tuple[int, int]:
        """Common leading bits of all indices: returns ``(bits, value)``.

        ``bits`` is the length of the shared prefix; ``value`` its contents.
        This is the identifier the paper labels tree nodes with (Figure 7).
        """
        low = self.min_index(curve)
        high = self.max_index(curve)
        bits = curve.index_bits
        while bits > 0 and (low >> (curve.index_bits - bits)) != (
            high >> (curve.index_bits - bits)
        ):
            bits -= 1
        return bits, low >> (curve.index_bits - bits) if bits else 0

    def iter_index_ranges(self, curve: SpaceFillingCurve) -> Iterator[tuple[int, int]]:
        """Yield the inclusive index range of each piece, in order."""
        for piece in self.pieces:
            if isinstance(piece, FullRange):
                yield piece.low, piece.high
            else:
                yield piece.index_range(curve)

    def cell_count(self) -> int:
        """Number of partial cells still unresolved in this cluster."""
        return sum(1 for p in self.pieces if isinstance(p, Cell))


def root_cluster(curve: SpaceFillingCurve, region: Region) -> Cluster | None:
    """Level-0 cluster covering the whole curve, clipped to ``region``.

    Returns ``None`` when the region is empty with respect to the cube
    (cannot normally happen since regions are non-empty boxes in range).
    """
    lows = (0,) * curve.dims
    highs = (curve.side - 1,) * curve.dims
    relation = region.classify_cell(lows, highs)
    if relation is Containment.DISJOINT:  # pragma: no cover - defensive
        return None
    if relation is Containment.FULL:
        return Cluster(level=0, pieces=(FullRange(0, curve.size - 1),))
    cell = Cell(level=0, prefix=0, coords=(0,) * curve.dims, state=curve.root_state())
    return Cluster(level=0, pieces=(cell,))


def refine_cluster(
    curve: SpaceFillingCurve,
    cluster: Cluster,
    region: Region,
    min_index: int = 0,
) -> list[Cluster]:
    """One refinement step: expand partial cells, split runs on gaps.

    ``min_index`` restricts the result to curve indices ``>= min_index``
    (used by the distributed engine: a node refines only the part of a
    cluster beyond its own identifier).  FullRange pieces are passed through
    (clipped); Cell pieces are expanded into their children in curve order
    and classified against the region.  Maximal contiguous runs of surviving
    pieces form the output clusters.

    This is the hot refinement path; when a profiler is enabled
    (:func:`repro.obs.profile.enable_profiling`) each call is timed under
    the ``sfc.refine`` phase.
    """
    prof = obs_profile._PROFILER
    if prof is None:
        return _refine_cluster(curve, cluster, region, min_index)
    start = perf_counter()
    try:
        return _refine_cluster(curve, cluster, region, min_index)
    finally:
        prof.record("sfc.refine", perf_counter() - start)


def _refine_cluster(
    curve: SpaceFillingCurve,
    cluster: Cluster,
    region: Region,
    min_index: int = 0,
) -> list[Cluster]:
    runs: list[Cluster] = []
    current: list[Piece] = []
    next_level = cluster.level + 1

    def append_piece(piece: Piece) -> None:
        # Coalesce adjacent FullRanges to keep piece lists short.
        if current and isinstance(piece, FullRange) and isinstance(current[-1], FullRange):
            last = current[-1]
            if last.high + 1 == piece.low:
                current[-1] = FullRange(last.low, piece.high)
                return
        current.append(piece)

    def flush() -> None:
        if current:
            runs.append(Cluster(level=next_level, pieces=tuple(current)))
            current.clear()

    for piece in cluster.pieces:
        if isinstance(piece, FullRange):
            if piece.high < min_index:
                flush()
                continue
            low = max(piece.low, min_index)
            append_piece(FullRange(low, piece.high))
            continue
        # Partial cell: expand children in curve order.
        if piece.level >= curve.order:
            raise SFCError("cannot refine a cell at maximum order")
        cell_range_span = curve.order - next_level
        for rank, (label, child_state) in enumerate(curve.children(piece.state)):
            child_coords = tuple(
                (piece.coords[j] << 1) | ((label >> j) & 1) for j in range(curve.dims)
            )
            child_prefix = (piece.prefix << curve.dims) | rank
            child_low, child_high = curve.index_range_of_cell(next_level, child_prefix)
            if child_high < min_index:
                flush()
                continue
            span = 1 << cell_range_span
            lows = tuple(c * span for c in child_coords)
            highs = tuple(c * span + span - 1 for c in child_coords)
            relation = region.classify_cell(lows, highs)
            if relation is Containment.DISJOINT:
                flush()
            elif relation is Containment.FULL:
                append_piece(FullRange(max(child_low, min_index), child_high))
            else:
                child = Cell(
                    level=next_level,
                    prefix=child_prefix,
                    coords=child_coords,
                    state=child_state,
                )
                append_piece(child)
    flush()
    return runs


def clusters_at_level(
    curve: SpaceFillingCurve, region: Region, level: int
) -> list[Cluster]:
    """All clusters of ``region`` at refinement level ``level``.

    FullRange pieces created at shallower levels are carried through, so the
    result's clusters are exactly the maximal contiguous intersecting runs of
    level-``level`` cells (what the paper counts as clusters at the k-th
    curve approximation).
    """
    if not 0 <= level <= curve.order:
        raise ValueError(f"level must be in [0, {curve.order}], got {level}")
    root = root_cluster(curve, region)
    if root is None:  # pragma: no cover - defensive
        return []
    clusters = [root]
    for _ in range(level):
        nxt: list[Cluster] = []
        for cluster in clusters:
            if cluster.is_resolved:
                # No geometry left: refinement is the identity (level bump).
                nxt.append(Cluster(level=cluster.level + 1, pieces=cluster.pieces))
            else:
                nxt.extend(refine_cluster(curve, cluster, region))
        clusters = nxt
    return clusters


def resolve_clusters(
    curve: SpaceFillingCurve, region: Region, max_level: int | None = None
) -> list[tuple[int, int]]:
    """Exact inclusive index intervals of the region's clusters.

    Refines until every cluster is resolved (at worst at ``curve.order``,
    where a cell is a single point).  Returns the sorted list of disjoint
    index ranges whose union is precisely the set of curve indices of points
    inside the region.  ``max_level`` caps refinement for approximate use.

    When a profiler is enabled the full resolution is timed under the
    ``sfc.resolve`` phase (its inner refinements also count toward
    ``sfc.refine``).
    """
    prof = obs_profile._PROFILER
    if prof is not None:
        start = perf_counter()
        try:
            return _resolve_clusters(curve, region, max_level)
        finally:
            prof.record("sfc.resolve", perf_counter() - start)
    return _resolve_clusters(curve, region, max_level)


def _resolve_clusters(
    curve: SpaceFillingCurve, region: Region, max_level: int | None = None
) -> list[tuple[int, int]]:
    limit = curve.order if max_level is None else min(max_level, curve.order)
    root = root_cluster(curve, region)
    if root is None:  # pragma: no cover - defensive
        return []
    clusters = [root]
    for _ in range(limit):
        if all(c.is_resolved for c in clusters):
            break
        nxt: list[Cluster] = []
        for cluster in clusters:
            if cluster.is_resolved:
                nxt.append(Cluster(level=cluster.level + 1, pieces=cluster.pieces))
            else:
                nxt.extend(refine_cluster(curve, cluster, region))
        clusters = nxt
    ranges: list[tuple[int, int]] = []
    for cluster in clusters:
        low = cluster.min_index(curve)
        high = cluster.max_index(curve)
        if ranges and ranges[-1][1] + 1 >= low:
            # Defensive merge; refinement should already keep runs maximal.
            ranges[-1] = (ranges[-1][0], max(ranges[-1][1], high))
        else:
            ranges.append((low, high))
    return ranges


def count_clusters_per_level(
    curve: SpaceFillingCurve, region: Region, max_level: int | None = None
) -> list[int]:
    """Number of clusters at each refinement level (paper Figure 6 counts).

    Entry ``i`` is the cluster count at level ``i``; refinement stops early
    once all clusters are resolved (counts stay constant afterwards).
    """
    limit = curve.order if max_level is None else min(max_level, curve.order)
    root = root_cluster(curve, region)
    if root is None:  # pragma: no cover - defensive
        return [0]
    clusters = [root]
    counts = [len(clusters)]
    for _ in range(limit):
        nxt: list[Cluster] = []
        for cluster in clusters:
            if cluster.is_resolved:
                nxt.append(Cluster(level=cluster.level + 1, pieces=cluster.pieces))
            else:
                nxt.extend(refine_cluster(curve, cluster, region))
        clusters = nxt
        counts.append(len(clusters))
    return counts
