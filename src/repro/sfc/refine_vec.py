"""NumPy-vectorized cluster refinement — the query hot path, batched.

The scalar refinement (:func:`repro.sfc.clusters.refine_cluster`) visits
each partial cell's ``2**d`` children one at a time: a transition-table
lookup, a coordinate assembly, and a region classification per child, all
in pure Python.  For broad queries (wildcards, ranges) a refinement level
carries hundreds to thousands of boundary cells, so the per-child Python
overhead dominates query cost — exactly the term the paper's analysis says
should be bounded by the region's *boundary*, not by interpreter overhead.

This module expands **all partial cells of a refinement level at once**:

* child labels and successor states for the whole batch come from an
  integer-indexed transition table (:class:`CurveTable`) built once per
  curve by BFS over :meth:`~repro.sfc.base.SpaceFillingCurve.children`
  (for the Hilbert curve this is the ``(entry, direction)`` state machine;
  stateless curves collapse to a single row);
* child coordinates, prefixes, and index ranges are computed by array
  arithmetic;
* region containment is classified for every child in one call
  (:meth:`~repro.sfc.regions.Region.classify_cells`);
* consecutive fully-contained children are run-length compressed in
  NumPy, so the Python reassembly creates one :class:`FullRange` per
  *run* instead of one per child (interior-heavy queries see most of
  their children collapse this way).

The final reassembly replays the scalar control flow event-by-event, so
the result is **identical** to the scalar path — the same run splitting,
``min_index`` clipping, and FullRange coalescing, property-tested in
``tests/sfc/test_refine_vec.py``.  The kernel requires curve indices that
fit in ``int64`` (``index_bits <= 63``); callers fall back to the scalar
path otherwise (see :func:`repro.sfc.clusters.refine_level`).
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from weakref import WeakKeyDictionary

import numpy as np

from repro.errors import SFCError
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.sfc.base import CurveState, SpaceFillingCurve
from repro.sfc.clusters import Cell, Cluster, FullRange, Piece
from repro.sfc.regions import Region

__all__ = [
    "CurveTable",
    "curve_table",
    "refine_clusters_vec",
    "resolve_ranges_vec",
    "supports_vectorized",
]

# Per-child event kinds produced by the compression stage (rank order):
_SKIP = 0  # covered by a preceding run (full) or flush (disjoint) event
_PARTIAL = 1  # child partially intersects: emit a Cell piece
_FULL_RUN = 2  # first child of a maximal fully-contained run: emit one FullRange
_FLUSH = 3  # first child of a disjoint/clipped run: split the cluster here


class CurveTable:
    """Integer-indexed child transition table of one curve's state machine.

    ``states[i]`` is the i-th reachable :data:`~repro.sfc.base.CurveState`
    (BFS order from the root, so the root is state 0); ``labels[i, r]`` is
    the coordinate label of the rank-``r`` child of a subcube in state
    ``i``; ``next_ids[i, r]`` the child's state id.  Both arrays are
    ``int64`` and shaped ``(n_states, 2**dims)``.
    """

    __slots__ = ("states", "ids", "labels", "next_ids")

    def __init__(self, curve: SpaceFillingCurve) -> None:
        root = curve.root_state()
        states: list[CurveState] = [root]
        ids: dict[CurveState, int] = {root: 0}
        label_rows: list[list[int]] = []
        next_rows: list[list[int]] = []
        queue: deque[CurveState] = deque([root])
        while queue:
            state = queue.popleft()
            label_row: list[int] = []
            next_row: list[int] = []
            for label, child in curve.children(state):
                child_id = ids.get(child)
                if child_id is None:
                    child_id = ids[child] = len(states)
                    states.append(child)
                    queue.append(child)
                label_row.append(label)
                next_row.append(child_id)
            label_rows.append(label_row)
            next_rows.append(next_row)
        self.states = tuple(states)
        self.ids = ids
        self.labels = np.asarray(label_rows, dtype=np.int64)
        self.next_ids = np.asarray(next_rows, dtype=np.int64)


_TABLES: "WeakKeyDictionary[SpaceFillingCurve, CurveTable]" = WeakKeyDictionary()


def curve_table(curve: SpaceFillingCurve) -> CurveTable:
    """The (cached) transition table of ``curve``; built on first use."""
    table = _TABLES.get(curve)
    if table is None:
        table = _TABLES[curve] = CurveTable(curve)
    return table


def supports_vectorized(curve: SpaceFillingCurve) -> bool:
    """True when the vectorized kernel applies (indices fit in ``int64``)."""
    return curve.fits_int64


def refine_clusters_vec(
    curve: SpaceFillingCurve,
    clusters: list[Cluster],
    region: Region,
    min_index: int = 0,
) -> list[list[Cluster]]:
    """One refinement step for a batch of clusters, vectorized.

    All partial cells across all ``clusters`` are expanded in one set of
    array operations; the per-cluster outputs (list of refined clusters,
    exactly what :func:`~repro.sfc.clusters.refine_cluster` returns) come
    back positionally.  Clusters may sit at different levels; cells are
    batched per level internally.  Requires ``curve.fits_int64``.

    When a profiler is active the array stage is timed under the
    ``sfc.refine_vec`` phase (the surrounding ``sfc.refine`` phase, if
    any, is recorded by the caller).
    """
    if not supports_vectorized(curve):
        raise SFCError("vectorized refinement requires index_bits <= 63")
    # Gather every partial cell, remembering its position in the batch.
    cells: list[Cell] = []
    levels: set[int] = set()
    for cluster in clusters:
        for piece in cluster.pieces:
            if isinstance(piece, Cell):
                if piece.level >= curve.order:
                    raise SFCError("cannot refine a cell at maximum order")
                cells.append(piece)
                levels.add(piece.level)
    if not cells:
        # Pure-FullRange clusters: only clipping/splitting work remains.
        return [_rebuild(curve, cluster, min_index, {}) for cluster in clusters]

    prof = obs_profile._PROFILER
    start = perf_counter() if prof is not None else 0.0
    per_cell: dict[int, _CellEvents] = {}
    for level in levels:
        batch = [c for c in cells if c.level == level]
        _expand_level(curve, batch, region, level, min_index, per_cell)
    if prof is not None:
        prof.record("sfc.refine_vec", perf_counter() - start)
    reg = obs_metrics.active()
    if reg is not None:
        reg.counter("sfc.refine.vec_calls").inc()
        reg.counter("sfc.refine.vec_cells").inc(len(cells))

    return [_rebuild(curve, cluster, min_index, per_cell) for cluster in clusters]


def resolve_ranges_vec(
    curve: SpaceFillingCurve,
    region: Region,
    max_level: int | None = None,
) -> list[tuple[int, int]]:
    """Exact cluster index ranges of a region, resolved entirely in NumPy.

    The array-resident counterpart of
    :func:`repro.sfc.clusters.resolve_clusters`: the frontier of partial
    cells lives in ``(coords, prefix, state_id)`` arrays, each level is one
    batch of array ops, fully-contained children accumulate as raw index
    intervals, and only the final sorted/merged range list surfaces as
    Python objects.  Produces byte-identical output to the scalar resolver
    (the maximal disjoint decomposition of the region's curve image is
    unique); ``max_level`` caps refinement the same way, counting the
    still-partial frontier cells at their full index spans.
    """
    if not supports_vectorized(curve):
        raise SFCError("vectorized resolution requires index_bits <= 63")
    dims = curve.dims
    order = curve.order
    limit = order if max_level is None else min(max_level, order)
    table = curve_table(curve)

    root_relation = region.classify_cell((0,) * dims, (curve.side - 1,) * dims)
    if root_relation.value == 0:  # pragma: no cover - regions are in-range
        return []
    if root_relation.value == 2:
        return [(0, curve.size - 1)]

    # The frontier: all partial cells of the current level.
    coords = np.zeros((1, dims), dtype=np.int64)
    prefixes = np.zeros(1, dtype=np.int64)
    state_ids = np.zeros(1, dtype=np.int64)
    level = 0
    acc_lows: list[np.ndarray] = []
    acc_highs: list[np.ndarray] = []
    n_expanded = 0

    ranks = np.arange(1 << dims, dtype=np.int64)
    dim_shifts = np.arange(dims, dtype=np.int64)
    prof = obs_profile._PROFILER
    start = perf_counter() if prof is not None else 0.0
    while level < limit and prefixes.size:
        next_level = level + 1
        shift = order - next_level
        span_bits = shift * dims
        labels = table.labels[state_ids]
        next_ids = table.next_ids[state_ids]
        bits = (labels[:, :, None] >> dim_shifts) & 1
        child_coords = ((coords[:, None, :] << 1) | bits).reshape(-1, dims)
        child_lows = ((prefixes[:, None] << dims | ranks) << span_bits).ravel()

        cell_lows = child_coords << shift
        cell_highs = cell_lows + ((1 << shift) - 1)
        codes = region.classify_cells(cell_lows, cell_highs)

        full = codes == 2
        if full.any():
            lows_full = child_lows[full]
            acc_lows.append(lows_full)
            acc_highs.append(lows_full + ((1 << span_bits) - 1))
        partial = codes == 1
        n_expanded += prefixes.size
        coords = child_coords[partial]
        prefixes = ((prefixes[:, None] << dims) | ranks).ravel()[partial]
        state_ids = next_ids.ravel()[partial]
        level = next_level
    if prof is not None:
        prof.record("sfc.refine_vec", perf_counter() - start)

    if prefixes.size:
        # Refinement cap reached: still-partial cells count whole.
        span_bits = (order - level) * dims
        lows_left = prefixes << span_bits
        acc_lows.append(lows_left)
        acc_highs.append(lows_left + ((1 << span_bits) - 1))

    reg = obs_metrics.active()
    if reg is not None:
        reg.counter("sfc.refine.vec_calls").inc()
        reg.counter("sfc.refine.vec_cells").inc(n_expanded)

    if not acc_lows:  # pragma: no cover - a partial root always yields cells
        return []
    lows = np.concatenate(acc_lows)
    highs = np.concatenate(acc_highs)
    order_ix = np.argsort(lows)
    lows = lows[order_ix]
    highs = highs[order_ix]
    # Cells are disjoint, so only adjacency merges: a new run starts where
    # the previous range's high + 1 < the next low.
    starts = np.empty(lows.size, dtype=bool)
    starts[0] = True
    np.greater(lows[1:], highs[:-1] + 1, out=starts[1:])
    start_pos = np.flatnonzero(starts)
    end_pos = np.append(start_pos[1:] - 1, lows.size - 1)
    return list(zip(lows[start_pos].tolist(), highs[end_pos].tolist()))


class _CellEvents:
    """Compressed per-cell expansion: one entry per event, not per child."""

    __slots__ = ("kinds", "lows", "run_highs", "row", "coords", "next_ids", "table")

    def __init__(self, kinds, lows, run_highs, row, coords, next_ids, table):
        self.kinds = kinds  # (C,) event-kind list
        self.lows = lows  # (C,) child low-index list
        self.run_highs = run_highs  # (C,) high of the run starting here
        self.row = row  # row index into the level's coordinate arrays
        self.coords = coords  # (n, C, d) child coordinates (lazy reads)
        self.next_ids = next_ids  # (n, C) child state ids (lazy reads)
        self.table = table


def _expand_level(
    curve: SpaceFillingCurve,
    batch: list[Cell],
    region: Region,
    level: int,
    min_index: int,
    per_cell: dict[int, "_CellEvents"],
) -> None:
    """Expand all level-``level`` cells of the batch with array arithmetic."""
    table = curve_table(curve)
    dims = curve.dims
    n_children = 1 << dims
    next_level = level + 1
    shift = curve.order - next_level  # coordinate bits below the child level
    span_bits = shift * dims

    n = len(batch)
    state_ids = np.fromiter(
        (table.ids[c.state] for c in batch), dtype=np.int64, count=n
    )
    coords = np.asarray([c.coords for c in batch], dtype=np.int64)  # (n, d)
    prefixes = np.fromiter((c.prefix for c in batch), dtype=np.int64, count=n)

    labels = table.labels[state_ids]  # (n, C)
    next_ids = table.next_ids[state_ids]  # (n, C)
    # bit j of each child label, broadcast per dimension -> (n, C, d)
    bits = (labels[:, :, None] >> np.arange(dims, dtype=np.int64)) & 1
    child_coords = (coords[:, None, :] << 1) | bits  # (n, C, d)
    ranks = np.arange(n_children, dtype=np.int64)
    child_lows = (prefixes[:, None] << dims | ranks) << span_bits  # (n, C)
    child_highs = child_lows + ((1 << span_bits) - 1)

    cell_lows = child_coords << shift
    cell_highs = cell_lows + ((1 << shift) - 1)
    codes = region.classify_cells(
        cell_lows.reshape(-1, dims), cell_highs.reshape(-1, dims)
    ).reshape(n, n_children)
    if min_index > 0:
        # A child entirely below the window flushes, exactly like DISJOINT.
        codes[child_highs < min_index] = 0

    # Run-length compress: consecutive FULL children collapse to one
    # FullRange event; consecutive flushes to one split event (flushing an
    # empty run is a no-op, so only the first of a run matters).
    full = codes == 2
    zero = codes == 0
    kinds = (codes == 1).astype(np.int8)  # PARTIAL events stay per child
    kinds[full] = _SKIP
    kinds[zero] = _SKIP
    run_start = full.copy()
    run_start[:, 1:] &= ~full[:, :-1]
    kinds[run_start] = _FULL_RUN
    flush_start = zero.copy()
    flush_start[:, 1:] &= ~zero[:, :-1]
    kinds[flush_start] = _FLUSH
    run_end = full.copy()
    run_end[:, :-1] &= ~full[:, 1:]
    # Pair each run's start with its end (runs never span rows, so the
    # flattened nonzero positions line up 1:1 in order).
    run_highs = np.zeros_like(child_highs)
    starts_flat = np.flatnonzero(run_start.ravel())
    ends_flat = np.flatnonzero(run_end.ravel())
    run_highs.ravel()[starts_flat] = child_highs.ravel()[ends_flat]

    kinds_l = kinds.tolist()
    lows_l = child_lows.tolist()
    highs_l = run_highs.tolist()
    for i, cell in enumerate(batch):
        per_cell[id(cell)] = _CellEvents(
            kinds=kinds_l[i],
            lows=lows_l[i],
            run_highs=highs_l[i],
            row=i,
            coords=child_coords,
            next_ids=next_ids,
            table=table,
        )


def _rebuild(
    curve: SpaceFillingCurve,
    cluster: Cluster,
    min_index: int,
    per_cell: dict[int, _CellEvents],
) -> list[Cluster]:
    """Reassemble one cluster's refinement from the compressed events.

    This pass replays the exact control flow of the scalar
    ``_refine_cluster``: runs split on disjoint children and on pieces
    clipped away by ``min_index``; adjacent FullRanges coalesce.
    """
    runs: list[Cluster] = []
    current: list[Piece] = []
    next_level = cluster.level + 1
    dims = curve.dims

    def append_full(low: int, high: int) -> None:
        if current:
            last = current[-1]
            if isinstance(last, FullRange) and last.high + 1 == low:
                current[-1] = FullRange(last.low, high)
                return
        current.append(FullRange(low, high))

    def flush() -> None:
        if current:
            runs.append(Cluster(level=next_level, pieces=tuple(current)))
            current.clear()

    for piece in cluster.pieces:
        if isinstance(piece, FullRange):
            if piece.high < min_index:
                flush()
                continue
            append_full(max(piece.low, min_index), piece.high)
            continue
        events = per_cell[id(piece)]
        kinds = events.kinds
        lows = events.lows
        base_prefix = piece.prefix << dims
        for rank, kind in enumerate(kinds):
            if kind == _SKIP:
                continue
            if kind == _FULL_RUN:
                append_full(max(lows[rank], min_index), events.run_highs[rank])
            elif kind == _FLUSH:
                flush()
            else:  # _PARTIAL
                current.append(
                    Cell(
                        level=next_level,
                        prefix=base_prefix | rank,
                        coords=tuple(
                            int(c) for c in events.coords[events.row, rank]
                        ),
                        state=events.table.states[
                            int(events.next_ids[events.row, rank])
                        ],
                    )
                )
    flush()
    return runs
