"""Parallel query execution: worker pools, batch results, system specs.

Public surface for running large query batches against one system with
results that are bit-identical for any worker count.  See
:mod:`repro.exec.pool` for the execution model and
:mod:`repro.exec.spec` for the spawn-mode rebuild path.
"""

from repro.exec.pool import (
    DEFAULT_CHUNK_SIZE,
    BatchResult,
    QueryPool,
    get_default_workers,
    set_default_workers,
)
from repro.exec.spec import SystemSpec

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "BatchResult",
    "QueryPool",
    "SystemSpec",
    "get_default_workers",
    "set_default_workers",
]
