"""Deterministic system specifications for worker-side rebuilds.

The parallel query pool prefers ``fork``-started workers, which inherit the
parent's :class:`~repro.core.system.SquidSystem` as copy-on-write memory and
need nothing pickled.  Platforms without ``fork`` (or pools explicitly
started with ``spawn``/``forkserver``) instead ship a :class:`SystemSpec` —
a compact, picklable description from which every worker rebuilds an
equivalent system:

* the keyword space and curve name (geometry),
* the overlay's node identifiers (membership),
* every stored element (data),
* the default query engine (strategy object).

The rebuild uses :meth:`ChordRing.build`, i.e. *converged* routing state.
For a stabilized system the rebuilt ring routes identically to the
original; a system carrying deliberately stale state (mid-churn, before
stabilization) is only reproduced exactly by fork-shared workers, which is
why the pool treats the spec as the fallback path and documents the
difference rather than hiding it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.keywords.space import KeywordSpace
from repro.overlay.chord import ChordRing
from repro.sfc import make_curve
from repro.store import StoredElement, StoreSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import SquidSystem

__all__ = ["SystemSpec"]


@dataclass
class SystemSpec:
    """Everything needed to rebuild an equivalent, queryable system."""

    space: KeywordSpace
    curve_name: str
    node_ids: list[int]
    elements: list[StoredElement]
    default_engine: Any = None
    #: Store backend recipe; workers rebuild per-node stores from it, so a
    #: columnar/SQLite parent gets columnar/SQLite workers.
    store: StoreSpec = field(default_factory=StoreSpec)
    #: Result-cache configuration as ``(capacity, ttl, invalidation_level)``,
    #: or None when the parent system has no result cache.  Only the config
    #: crosses the process boundary (a custom ``clock`` does not pickle and
    #: cached entries are per-chunk state anyway — the pool re-spawns an
    #: empty cache for every chunk regardless of start method).
    result_cache: tuple | None = None

    @classmethod
    def from_system(cls, system: "SquidSystem") -> "SystemSpec":
        """Capture a system's geometry, membership, data, engine, and store."""
        elements: list[StoredElement] = []
        for node_id in sorted(system.stores):
            elements.extend(system.stores[node_id].all_elements())
        cache = system.result_cache
        return cls(
            space=system.space,
            curve_name=system.curve.name,
            node_ids=system.overlay.node_ids(),
            elements=elements,
            default_engine=system.default_engine,
            store=system.store_spec,
            result_cache=(
                (cache.capacity, cache.ttl, cache.invalidation_level)
                if cache is not None
                else None
            ),
        )

    def build(self) -> "SquidSystem":
        """Rebuild the system: same owners, same data, converged fingers."""
        from repro.core.system import SquidSystem

        from repro.core.resultcache import ResultCache

        curve = make_curve(self.curve_name, self.space.dims, self.space.bits)
        ring = ChordRing.build(curve.index_bits, self.node_ids)
        if self.result_cache is not None:
            capacity, ttl, invalidation_level = self.result_cache
            cache: "ResultCache | bool" = ResultCache(
                capacity=capacity, ttl=ttl, invalidation_level=invalidation_level
            )
        else:
            cache = False
        system = SquidSystem(
            self.space,
            ring,
            curve=curve,
            default_engine=self.default_engine,
            rng=0,
            store=self.store,
            result_cache=cache,
        )
        if self.elements:
            owners = ring.owner_many([e.index for e in self.elements])
            per_node: dict[int, list[StoredElement]] = {}
            for element, owner in zip(self.elements, owners):
                per_node.setdefault(int(owner), []).append(element)
            for owner, elems in per_node.items():
                system.stores[owner].add_sorted_bulk(elems)
        return system
