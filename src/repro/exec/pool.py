"""Parallel batch query execution: shard a query list over worker processes.

The paper's evaluation — and any realistic deployment study — runs
thousands of *independent* queries against one fixed system.  This module
turns that embarrassingly parallel shape into throughput:

* the query list is cut into fixed-size **chunks** (the unit of
  distribution); chunking depends only on the list and ``chunk_size``,
  never on the worker count;
* each chunk gets its **own seeded RNG** derived from the root seed via
  ``numpy`` ``SeedSequence(root, spawn_key=(chunk_index,))``, its own
  fresh plan/route/result caches (the result cache is re-spawned with the
  same configuration via
  :meth:`~repro.core.resultcache.ResultCache.spawn_empty`), and its own
  metrics registry — so a chunk's results are a pure function of
  (system state, chunk queries, root seed);
* workers execute chunks and the parent **merges** per-chunk outputs in
  chunk order: per-query :class:`~repro.core.metrics.QueryStats` reduce via
  :meth:`QueryStats.merge`, registries via
  :meth:`~repro.obs.metrics.RegistrySnapshot.merge`.

Together these make a batch **bit-identical for any worker count**: with 1
worker or 16, the same chunks run with the same RNGs against the same
state, and the merge order is fixed.  ``pytest`` asserts this property in
``tests/exec/``.

Process model
-------------
Where the platform supports it the pool uses ``fork``-started workers: the
parent's system is inherited as copy-on-write memory, so nothing is
serialized no matter how large the deployment.  Otherwise (``spawn``-only
platforms, or an explicit ``start_method``) each worker rebuilds an
equivalent system from a pickled :class:`~repro.exec.spec.SystemSpec`.
Workers are forked per :meth:`QueryPool.run` call, so they always observe
the system's current state.  With ``workers <= 1`` (the default) no
processes are created at all — chunks run in-process through the *same*
code path, preserving the determinism contract.

Tracing is per-process state that cannot be merged across workers, so an
attached :class:`~repro.obs.trace.Tracer` is detached for the duration of a
batch (results carry ``trace=None``).

An engine carrying an *active* :class:`~repro.faults.FaultPlane` is likewise
per-process state: the plane's RNG advances with every transmission and its
crash executor mutates the shared system, so draw order — and therefore which
messages fail — depends on how chunks interleave across processes.  Batches
stay deterministic for a *fixed* worker count, but the bit-identical-across-
worker-counts contract above holds only for fault-free engines; run
fault-injection studies with ``workers=1`` (as ``extF`` and the ``chaos``
CLI do).
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np

from repro.core.metrics import QueryResult, QueryStats
from repro.errors import EngineError
from repro.exec.spec import SystemSpec
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import RegistrySnapshot, merge_snapshots
from repro.util.rng import RandomLike, as_generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import SquidSystem

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "BatchResult",
    "QueryPool",
    "get_default_workers",
    "set_default_workers",
]

#: Queries per chunk (the distribution unit).  Fixed — independent of the
#: worker count — so results are reproducible across pool sizes; large
#: enough that per-chunk cache warm-up is amortized over the chunk.
DEFAULT_CHUNK_SIZE = 32

#: Process-wide default worker count, set by the CLI ``--workers`` flag so
#: experiment sweeps pick it up without threading a parameter through every
#: figure module.
_DEFAULT_WORKERS = 1


def set_default_workers(workers: int) -> int:
    """Set the process-wide default worker count; returns the previous."""
    global _DEFAULT_WORKERS
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    previous = _DEFAULT_WORKERS
    _DEFAULT_WORKERS = workers
    return previous


def get_default_workers() -> int:
    """The process-wide default worker count (1 unless configured)."""
    return _DEFAULT_WORKERS


@dataclass(frozen=True)
class _ChunkTask:
    """One unit of work shipped to a worker (picklable)."""

    chunk_index: int
    queries: tuple
    root_seed: int
    engine: Any = None
    origin: int | None = None
    limit: int | None = None
    priority: Any = None


@dataclass
class BatchResult:
    """Outcome of one batch: per-query results plus merged accounting.

    ``results`` is in input-query order.  ``stats`` is the
    :meth:`QueryStats.merge` reduction of every per-query stats object;
    ``metrics`` is the chunk-ordered merge of the per-chunk registry
    snapshots (``overlay.route_cache.*``, ``plan_cache.*``,
    ``query.messages`` ... everything the instrumented stack reported while
    the batch ran).  All three are bit-identical for any worker count;
    ``elapsed_s`` and ``workers`` describe this particular run.
    """

    results: list[QueryResult]
    stats: QueryStats
    metrics: RegistrySnapshot
    workers: int
    chunk_size: int
    chunk_count: int
    elapsed_s: float = 0.0
    start_method: str = "in-process"
    query_count: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.query_count = len(self.results)

    def match_counts(self) -> list[int]:
        """Match count per query, in input order."""
        return [r.match_count for r in self.results]

    def total_matches(self) -> int:
        return sum(r.match_count for r in self.results)

    def incomplete_count(self) -> int:
        """Queries that returned ``complete=False`` (unresolved index ranges).

        Always 0 on a fault-free system; under an injected fault plane it
        counts the queries whose results are honest partial answers.
        """
        return sum(1 for r in self.results if not r.complete)


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
#: The system a worker queries: inherited through fork, or rebuilt from a
#: SystemSpec by the spawn initializer.  In the parent process it is bound
#: only for the duration of a fork-pool launch.
_WORKER_SYSTEM: "SquidSystem | None" = None


def _init_spec_worker(spec: SystemSpec) -> None:
    """Spawn-mode initializer: rebuild the system once per worker."""
    global _WORKER_SYSTEM
    _WORKER_SYSTEM = spec.build()


def _chunk_rng(root_seed: int, chunk_index: int) -> np.random.Generator:
    """The chunk's private generator, derived deterministically from the root."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=root_seed, spawn_key=(chunk_index,))
    )


def _execute_chunk(
    system: "SquidSystem", task: _ChunkTask
) -> tuple[int, list[QueryResult], RegistrySnapshot]:
    """Run one chunk in isolation: fresh caches, fresh registry, own RNG.

    Isolation is what makes chunk output independent of *which process*
    (and in what order) executed it: the plan cache and overlay route cache
    are swapped for empty ones so hit patterns restart at the chunk
    boundary, and metrics go to a private registry whose snapshot travels
    back with the results.  The system's own caches/tracer/registry are
    restored afterwards (relevant for the in-process path).
    """
    rng = _chunk_rng(task.root_seed, task.chunk_index)
    saved_plan = system.plan_cache
    saved_result = getattr(system, "result_cache", None)
    saved_tracer = system.tracer
    overlay = system.overlay
    saved_route = getattr(overlay, "route_cache", None)
    if saved_plan is not None:
        system.plan_cache = type(saved_plan)()
    if saved_result is not None:
        system.result_cache = saved_result.spawn_empty()
    system.tracer = None
    if saved_route is not None:
        overlay.route_cache = type(saved_route)(maxsize=saved_route.maxsize)
    try:
        with obs_metrics.collecting() as registry:
            results = [
                system.query(
                    query,
                    engine=task.engine,
                    origin=task.origin,
                    rng=rng,
                    limit=task.limit,
                    priority=task.priority,
                )
                for query in task.queries
            ]
        return task.chunk_index, results, registry.snapshot()
    finally:
        system.plan_cache = saved_plan
        if saved_result is not None:
            system.result_cache = saved_result
        system.tracer = saved_tracer
        if saved_route is not None:
            overlay.route_cache = saved_route


def _run_chunk(task: _ChunkTask) -> tuple[int, list[QueryResult], RegistrySnapshot]:
    """Pool entry point: execute one chunk against the worker's system."""
    assert _WORKER_SYSTEM is not None, "worker started without a system"
    return _execute_chunk(_WORKER_SYSTEM, task)


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class QueryPool:
    """Shard batches of queries across worker processes (or in-process).

    Parameters
    ----------
    system:
        The deployment to query.  Not copied at construction; each
        :meth:`run` observes its current state.
    workers:
        Worker processes per run.  ``None`` uses the process-wide default
        (see :func:`set_default_workers`); ``1`` executes in-process with
        no ``multiprocessing`` at all.  Results are identical either way.
    chunk_size:
        Queries per distribution unit (default
        :data:`DEFAULT_CHUNK_SIZE`).  Must stay fixed for results to be
        comparable byte-for-byte between runs.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"`` override; default picks
        ``fork`` where available (workers share the system copy-on-write)
        and falls back to ``spawn`` with a :class:`SystemSpec` rebuild.
    """

    def __init__(
        self,
        system: "SquidSystem",
        workers: int | None = None,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self.system = system
        self.workers = workers if workers is not None else get_default_workers()
        if self.workers < 1:
            raise EngineError(f"workers must be >= 1, got {self.workers}")
        self.chunk_size = chunk_size if chunk_size is not None else DEFAULT_CHUNK_SIZE
        if self.chunk_size < 1:
            raise EngineError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if start_method is not None and start_method not in mp.get_all_start_methods():
            raise EngineError(
                f"start method {start_method!r} unavailable; "
                f"choose from {mp.get_all_start_methods()}"
            )
        self.start_method = start_method

    # -- internals -------------------------------------------------------
    @staticmethod
    def _root_seed(seed: RandomLike) -> int:
        """Coerce ``seed`` to one integer root for chunk-RNG derivation."""
        if isinstance(seed, (int, np.integer)):
            return int(seed)
        return int(as_generator(seed).integers(0, 2**63 - 1))

    def _make_tasks(
        self,
        queries: Sequence,
        root_seed: int,
        engine: Any,
        origin: int | None,
        limit: int | None,
        priority: Any = None,
    ) -> list[_ChunkTask]:
        return [
            _ChunkTask(
                chunk_index=start // self.chunk_size,
                queries=tuple(queries[start : start + self.chunk_size]),
                root_seed=root_seed,
                engine=engine,
                origin=origin,
                limit=limit,
                priority=priority,
            )
            for start in range(0, len(queries), self.chunk_size)
        ]

    # -- execution -------------------------------------------------------
    def run(
        self,
        queries: Iterable,
        seed: RandomLike = 0,
        engine: Any = None,
        origin: int | None = None,
        limit: int | None = None,
        priority: Any = None,
    ) -> BatchResult:
        """Execute every query; return merged, order-preserving results.

        ``engine``/``origin``/``limit``/``priority`` have
        :meth:`SquidSystem.query` semantics and apply to every query of the
        batch.  Like the fault plane, an *armed*
        :class:`~repro.guard.GuardPlane` is per-process state (backlog
        gauges and token buckets fork with the workers), so guard studies
        should run with ``workers=1``.  If a metrics
        registry is active in the calling process, the batch's merged
        totals are folded into it (:meth:`MetricsRegistry.merge_snapshot`),
        so ``with collecting():`` around a batch reports the same counters
        it would around a serial loop.
        """
        query_list = list(queries)
        root_seed = self._root_seed(seed)
        started = perf_counter()
        if not query_list:
            return BatchResult(
                results=[],
                stats=QueryStats(),
                metrics=RegistrySnapshot(
                    {"counters": {}, "gauges": {}, "histograms": {}}
                ),
                workers=self.workers,
                chunk_size=self.chunk_size,
                chunk_count=0,
                elapsed_s=perf_counter() - started,
            )
        tasks = self._make_tasks(query_list, root_seed, engine, origin, limit, priority)
        n_workers = min(self.workers, len(tasks))
        if n_workers <= 1:
            chunk_outputs = [_execute_chunk(self.system, task) for task in tasks]
            method = "in-process"
        else:
            method = self.start_method or (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
            chunk_outputs = self._run_pooled(tasks, n_workers, method)
        chunk_outputs.sort(key=lambda out: out[0])
        results = [result for _, chunk_results, _ in chunk_outputs for result in chunk_results]
        stats = QueryStats.reduce(r.stats for r in results)
        metrics = merge_snapshots(snap for _, _, snap in chunk_outputs)
        active = obs_metrics.get_registry()
        if active is not None:
            active.merge_snapshot(metrics)
        return BatchResult(
            results=results,
            stats=stats,
            metrics=metrics,
            workers=n_workers,
            chunk_size=self.chunk_size,
            chunk_count=len(tasks),
            elapsed_s=perf_counter() - started,
            start_method=method,
        )

    def _run_pooled(
        self, tasks: list[_ChunkTask], n_workers: int, method: str
    ) -> list[tuple[int, list[QueryResult], RegistrySnapshot]]:
        ctx = mp.get_context(method)
        if method == "fork":
            global _WORKER_SYSTEM
            previous = _WORKER_SYSTEM
            _WORKER_SYSTEM = self.system
            try:
                with ctx.Pool(processes=n_workers) as pool:
                    return pool.map(_run_chunk, tasks, chunksize=1)
            finally:
                _WORKER_SYSTEM = previous
        spec = SystemSpec.from_system(self.system)
        with ctx.Pool(
            processes=n_workers, initializer=_init_spec_worker, initargs=(spec,)
        ) as pool:
            return pool.map(_run_chunk, tasks, chunksize=1)
